"""Ablation — simulation engines: dense state vector vs tensor network.

Times one full max-cut energy evaluation (all edges) at p=1 on 3-regular
graphs of growing size with (a) the dense state-vector engine, (b) the
tensor-network engine with lightcone pruning on the NumPy backend, and
(c) the simulated-GPU backend's *modelled* device time.

The expected shape: dense wins at small n (tiny state, one pass), the
tensor network overtakes as n grows because each edge term only touches a
constant-size lightcone while the dense state doubles per qubit — the
scaling argument for QTensor as the search's backend.
"""

from __future__ import annotations

import time

from repro.experiments.figures import render_table
from repro.experiments.records import ExperimentRecord
from repro.graphs.generators import random_regular_graph
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qtensor.simulator import QTensorSimulator
from repro.simulators.expectation import maxcut_expectation
from repro.simulators.statevector import simulate, zero_state

SIZES = (10, 14, 18, 20)


def bench_ablation_backends(once):
    def run():
        rows = []
        crossover_seen = False
        for n in SIZES:
            graph = random_regular_graph(n, 3, seed=3)
            bound = build_qaoa_ansatz(graph, 1).bind([0.4, 0.7])

            start = time.perf_counter()
            dense_energy = maxcut_expectation(simulate(bound, zero_state(n)), graph)
            dense_time = time.perf_counter() - start

            tn = QTensorSimulator()
            start = time.perf_counter()
            tn_energy = tn.maxcut_energy(bound, graph, initial_state="0")
            tn_time = time.perf_counter() - start

            gpu = QTensorSimulator(backend="gpu")
            gpu_energy = gpu.maxcut_energy(bound, graph, initial_state="0")
            gpu_device_time = gpu.backend.stats()["device_seconds"]

            assert abs(dense_energy - tn_energy) < 1e-8
            assert abs(dense_energy - gpu_energy) < 1e-8
            if tn_time < dense_time:
                crossover_seen = True
            rows.append([n, dense_time, tn_time, gpu_device_time, max(tn.last_widths)])
        return rows, crossover_seen

    rows, crossover_seen = once(run)

    print("\n=== Ablation: engine timing per full energy evaluation (s) ===")
    print(
        render_table(
            ["n", "dense", "tensor_net", "gpu(model)", "max width"],
            rows,
            float_format="{:.4f}",
        )
    )

    # Shape assertions: dense cost explodes with n while TN widths stay
    # flat; by the largest size the TN engine must have overtaken dense.
    dense_times = [r[1] for r in rows]
    widths = [r[4] for r in rows]
    assert dense_times[-1] > dense_times[0] * 4, "dense cost must grow steeply"
    assert max(widths) <= 10, "lightcone widths must stay graph-local"
    assert rows[-1][2] < rows[-1][1], "tensor network must win at the largest size"

    ExperimentRecord(
        experiment="ablation_backends",
        paper_claim="tensor-network simulation scales past dense statevector for local observables",
        parameters={"sizes": list(SIZES), "p": 1, "degree": 3},
        measured={"rows": [[float(x) for x in r] for r in rows]},
        verdict=f"TN overtakes dense by n={SIZES[-1]}; crossover observed: {crossover_seen}",
    ).save()
