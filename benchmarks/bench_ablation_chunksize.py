"""Ablation — process-pool dispatch granularity (starmap_async chunksize).

The paper's parallel loop hands one gate combination per task to
``starmap_async``. Chunking trades per-task dispatch overhead against load
balance: big chunks amortize pickling but let one slow chunk straggle.
This bench runs the same candidate bag at several chunk sizes on the real
pool, then replays the measured durations through the scheduling simulator
to show the same trade-off analytically.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.alphabet import GateAlphabet
from repro.core.evaluator import EvaluationConfig, evaluate_candidate
from repro.experiments.figures import render_table
from repro.experiments.profiling import candidate_bag, measure_candidate_durations
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import get_scale
from repro.graphs.datasets import profiling_graph
from repro.parallel.executor import MultiprocessingExecutor
from repro.parallel.scheduler import OverheadModel, simulate_makespan

CHUNK_SIZES = (1, 2, 5)


def bench_ablation_chunksize(once):
    scale = get_scale()
    graph = profiling_graph()
    candidates = candidate_bag(GateAlphabet(), 2, scale.num_candidates)
    config = EvaluationConfig(max_steps=scale.max_steps, seed=0)
    jobs = [([graph], tokens, 1, config) for tokens in candidates]

    def run():
        rows = []
        reference = None
        for chunk in CHUNK_SIZES:
            with MultiprocessingExecutor(2, chunksize=chunk) as pool:
                start = time.perf_counter()
                results = pool.starmap(evaluate_candidate, jobs)
                elapsed = time.perf_counter() - start
            energies = [r.energy for r in results]
            if reference is None:
                reference = energies
            else:
                np.testing.assert_allclose(energies, reference, atol=1e-12)
            rows.append([chunk, elapsed])
        # analytic replay: chunked list scheduling of measured durations
        durations = measure_candidate_durations(graph, 1, candidates, config)
        for chunk in CHUNK_SIZES:
            merged = [
                sum(durations[i : i + chunk]) for i in range(0, len(durations), chunk)
            ]
            sim = simulate_makespan(
                merged, 2, overhead=OverheadModel(dispatch_per_task=0.002)
            )
            rows.append([f"sim@{chunk}", sim.makespan])
        return rows

    rows = once(run)

    print("\n=== Ablation: starmap_async chunksize (2 workers, seconds) ===")
    print(render_table(["chunksize", "wall time"], rows))

    measured = [r[1] for r in rows if isinstance(r[0], int)]
    # results must exist for every chunk size and stay in the same regime
    # (no pathological blow-up from chunking on a uniform bag)
    assert len(measured) == len(CHUNK_SIZES)
    assert max(measured) < min(measured) * 3

    ExperimentRecord(
        experiment="ablation_chunksize",
        paper_claim="per-combination dispatch (chunksize 1) is the paper's configuration",
        parameters={"chunks": list(CHUNK_SIZES), "tasks": len(jobs)},
        measured={"rows": [[str(r[0]), float(r[1])] for r in rows]},
        verdict="identical results at all chunk sizes; timings in one regime",
    ).save()
