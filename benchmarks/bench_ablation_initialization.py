"""Ablation — QAOA parameter initialization at depth.

The paper trains from random starts. As p grows, random COBYLA starts fall
into local optima and the depth sweep stops paying off; the ramp (annealing
schedule) start and INTERP warm-started sweeps are the standard remedies.
This bench trains the baseline mixer on ER graphs at p = 1..3 under all
three protocols with the same optimizer budget per depth.
"""

from __future__ import annotations

import numpy as np

from repro.core.depth_sweep import warm_started_sweep
from repro.core.evaluator import EvaluationConfig, Evaluator
from repro.experiments.figures import render_series
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import get_scale
from repro.graphs.datasets import paper_er_dataset
from repro.qaoa.maxcut import brute_force_maxcut

P_VALUES = (1, 2, 3)


def bench_ablation_initialization(once):
    scale = get_scale()
    graphs = paper_er_dataset(min(scale.num_graphs, 3))
    steps = scale.max_steps

    def run():
        series = {}
        for strategy in ("uniform", "ramp"):
            config = EvaluationConfig(
                max_steps=steps, restarts=1, seed=0, init_strategy=strategy
            )
            evaluator = Evaluator(graphs, config)
            series[strategy] = [
                evaluator.evaluate(("rx",), p).ratio for p in P_VALUES
            ]
        interp_rows = []
        for graph in graphs:
            optimum = brute_force_maxcut(graph).value
            points = warm_started_sweep(graph, ("rx",), max(P_VALUES), max_steps=steps)
            interp_rows.append([pt.energy / optimum for pt in points])
        series["interp"] = list(np.mean(interp_rows, axis=0))
        return series

    series = once(run)

    print("\n=== Ablation: init strategy -> mean energy ratio vs p ===")
    print(render_series("p", list(P_VALUES), series))

    # Shape assertions: INTERP sweeps are monotone in p by construction;
    # ramp/interp must be at least competitive with random starts at the
    # deepest point.
    interp = series["interp"]
    assert all(b >= a - 1e-9 for a, b in zip(interp, interp[1:]))
    best_informed = max(series["ramp"][-1], series["interp"][-1])
    assert best_informed >= series["uniform"][-1] - 0.02

    ExperimentRecord(
        experiment="ablation_initialization",
        paper_claim="random-start COBYLA (paper) vs annealing-ramp and INTERP warm starts",
        parameters={"p_values": list(P_VALUES), "max_steps": steps,
                    "graphs": len(graphs)},
        measured={k: [float(x) for x in v] for k, v in series.items()},
        verdict=(
            f"at p={P_VALUES[-1]}: uniform {series['uniform'][-1]:.4f}, "
            f"ramp {series['ramp'][-1]:.4f}, interp {series['interp'][-1]:.4f}"
        ),
    ).save()
