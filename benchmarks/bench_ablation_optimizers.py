"""Ablation — the Evaluator's classical optimizer.

The paper trains every candidate with COBYLA (200 steps). This bench gives
each optimizer the same evaluation budget on the same p=1 training problem
and reports the trained approximation ratio and wall time — quantifying how
much the search's ranking signal depends on the optimizer choice, and what
gradient-based training (parameter-shift Adam) buys.
"""

from __future__ import annotations

import time

from repro.core.evaluator import EvaluationConfig, Evaluator
from repro.experiments.figures import render_table
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import get_scale
from repro.graphs.datasets import paper_er_dataset

OPTIMIZERS = ("cobyla", "nelder_mead", "spsa", "adam")


def bench_ablation_optimizers(once):
    scale = get_scale()
    graphs = paper_er_dataset(min(scale.num_graphs, 3))
    budget = scale.max_steps

    def run():
        rows = []
        for name in OPTIMIZERS:
            # Adam's budget is iterations of full parameter-shift gradients;
            # give it the equivalent in *iterations* scaled down by the
            # per-iteration evaluation count so total sims stay comparable.
            steps = max(3, budget // 10) if name == "adam" else budget
            config = EvaluationConfig(
                optimizer=name, max_steps=steps, restarts=1, seed=0
            )
            start = time.perf_counter()
            result = Evaluator(graphs, config).evaluate(("rx",), 1)
            elapsed = time.perf_counter() - start
            rows.append([name, result.ratio, result.nfev, elapsed])
        return rows

    rows = once(run)

    print("\n=== Ablation: optimizer -> trained p=1 ratio (same budget) ===")
    print(render_table(["optimizer", "ratio", "nfev", "seconds"], rows))

    ratios = {row[0]: row[1] for row in rows}
    # every optimizer must clear the untrained baseline (ratio of |+>^n,
    # which yields half the edges); the strong ones should be near-optimal
    for name, ratio in ratios.items():
        assert ratio > 0.55, f"{name} failed to train at all"
    assert max(ratios.values()) > 0.75

    ExperimentRecord(
        experiment="ablation_optimizers",
        paper_claim="COBYLA/200 is the training procedure; alternatives trade robustness vs cost",
        parameters={"budget": budget, "graphs": len(graphs)},
        measured={"rows": [[r[0], float(r[1]), int(r[2]), float(r[3])] for r in rows]},
        verdict=f"best optimizer this run: {max(ratios, key=ratios.get)}",
    ).save()
