"""Ablation — contraction-order heuristics (QTensor's core design choice).

Measures the contraction width and estimated cost that min-fill, min-degree,
randomized-greedy-restarts, and random orders achieve on QAOA energy
networks of growing size. The claim being exercised: heuristic PEO search
"substantially reduces the simulation cost by minimizing the contraction
width" (§2.2) — widths should be far below qubit count and below random
orders.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import render_table
from repro.experiments.records import ExperimentRecord
from repro.graphs.generators import random_regular_graph
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qtensor.network import TensorNetwork, interaction_graph
from repro.qtensor.ordering import (
    greedy_random_restarts,
    min_degree_order,
    min_fill_order,
    random_order,
)

CASES = [(12, 1), (16, 1), (16, 2), (20, 2)]  # (nodes, p)


def _energy_network(n, p, *, lightcone=True):
    from repro.qtensor.lightcone import lightcone_circuit

    graph = random_regular_graph(n, 3, seed=7)
    bound = build_qaoa_ansatz(graph, p).bind([0.1 * (i + 1) for i in range(2 * p)])
    u, v = graph.edges[0]
    circuit = lightcone_circuit(bound, [u, v]) if lightcone else bound
    return TensorNetwork.expectation(
        circuit, [((u, v), np.array([0, 1, 1, 0], dtype=complex))], initial_state="0"
    )


def bench_ablation_ordering(once):
    def run():
        rows = []
        for n, p in CASES:
            net = _energy_network(n, p)  # lightcone-pruned: what we contract
            g = interaction_graph(net.tensors)
            fill = min_fill_order(g)
            degree = min_degree_order(g)
            restarts = greedy_random_restarts(g, n_restarts=8, seed=0)
            rand = min(
                (random_order(g, seed=s) for s in range(5)),
                key=lambda o: o.width,
            )
            # unpruned width, for contrast: the cost the lightcone avoids
            full = min_fill_order(
                interaction_graph(_energy_network(n, p, lightcone=False).tensors)
            )
            rows.append(
                [f"n={n},p={p}", fill.width, degree.width, restarts.width,
                 rand.width, full.width, f"{fill.log2_cost:.1f}"]
            )
        return rows

    rows = once(run)

    print("\n=== Ablation: PEO heuristic -> contraction width (lightcone networks) ===")
    print(
        render_table(
            ["case", "min_fill", "min_degree", "restarts", "best_random",
             "no-lightcone", "fill log2cost"],
            rows,
        )
    )

    for row in rows:
        case, fill_w, degree_w, restarts_w, random_w, full_w = row[:6]
        n = int(case.split(",")[0][2:])
        assert fill_w <= random_w, f"min-fill must beat random on {case}"
        assert restarts_w <= fill_w, "restarts never worse than plain greedy"
        assert fill_w < n, "pruned width must stay below the qubit count"
        assert fill_w <= full_w, "lightcone pruning must not increase width"

    ExperimentRecord(
        experiment="ablation_ordering",
        paper_claim=(
            "heuristic contraction orders substantially reduce contraction "
            "width vs naive orders"
        ),
        parameters={"cases": [f"n={n},p={p}" for n, p in CASES]},
        measured={"rows": rows},
        verdict="min-fill <= best-of-5 random on every case; restarts <= greedy",
    ).save()
