"""Ablation — predictor strategies under an equal evaluation budget.

The released paper uses random search and cites Li & Talwalkar (2020) for
its strength; the architecture diagram promises a DNN predictor. This bench
gives random search, the epsilon-greedy bandit, and the LSTM/REINFORCE
controller the same number of candidate evaluations on the same workload
and compares the best reward each finds — the experiment that justifies (or
indicts) learning-based proposal at this search-space size.
"""

from __future__ import annotations

from repro.core.alphabet import GateAlphabet
from repro.core.controller import ControllerPredictor, PolicyController
from repro.core.evaluator import EvaluationConfig, Evaluator
from repro.core.predictor import EpsilonGreedyPredictor, RandomPredictor
from repro.experiments.figures import render_table
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import get_scale
from repro.graphs.datasets import paper_er_dataset

BUDGET_BATCHES = 8
BATCH = 8


def _drive(predictor, evaluator, p=1):
    """Closed Fig.-1 loop for a fixed budget; returns best-so-far curve."""
    best = 0.0
    curve = []
    for _ in range(BUDGET_BATCHES):
        proposals = predictor.propose(BATCH)
        for tokens in proposals:
            reward = evaluator.reward(tokens, p)
            predictor.update(tuple(tokens), reward)
            best = max(best, reward)
        curve.append(best)
    return curve


def bench_ablation_predictors(once):
    scale = get_scale()
    graphs = paper_er_dataset(2)
    alphabet = GateAlphabet()
    config = EvaluationConfig(
        max_steps=min(scale.max_steps, 40), seed=0,
        metric="best_sampled", shots=64,
    )

    def run():
        results = {}
        evaluator = Evaluator(graphs, config)  # shared cache across arms
        results["random"] = _drive(RandomPredictor(alphabet, 3, seed=1), evaluator)
        results["epsilon_greedy"] = _drive(
            EpsilonGreedyPredictor(alphabet, 3, epsilon=0.4, seed=1), evaluator
        )
        controller = PolicyController(alphabet, max_gates=3, seed=1, learning_rate=0.05)
        results["controller"] = _drive(
            ControllerPredictor(controller, batch_size=BATCH, seed=1), evaluator
        )
        return results, evaluator.cache_hits

    results, cache_hits = once(run)

    print("\n=== Ablation: predictor -> best reward vs evaluation budget ===")
    rows = [
        [name, curve[0], curve[len(curve) // 2], curve[-1]]
        for name, curve in results.items()
    ]
    print(render_table(["predictor", f"after {BATCH}", "mid", "final"], rows))
    print(f"(budget={BUDGET_BATCHES * BATCH} proposals/arm, cache hits={cache_hits})")

    # Shape assertions: all arms find a strong mixer with this budget on a
    # 3-token space, and no learner collapses below random's floor.
    final = {name: curve[-1] for name, curve in results.items()}
    for name, value in final.items():
        assert value > 0.9, f"{name} failed to find a strong mixer"
    assert final["epsilon_greedy"] >= final["random"] - 0.05
    assert final["controller"] >= final["random"] - 0.05

    ExperimentRecord(
        experiment="ablation_predictors",
        paper_claim="random search is a strong baseline; DNN predictor is the roadmap",
        parameters={"budget": BUDGET_BATCHES * BATCH, "k_max": 3,
                    "metric": "best_sampled(64)"},
        measured={name: [float(v) for v in curve] for name, curve in results.items()},
        verdict=(
            "final best rewards: "
            + ", ".join(f"{k}={v:.4f}" for k, v in final.items())
        ),
    ).save()
