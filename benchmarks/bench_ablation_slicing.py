"""Ablation — variable slicing (QTensor's second parallelism level).

Fixing s "slice" variables splits one contraction into 2^s independent
smaller contractions — the intra-simulation parallelism of the paper's
two-level scheme (Fig. 2's GPU/node level). This bench verifies the value
is invariant, measures how slice count trades single-slice memory against
total work, and demonstrates the slices running through a thread pool.
"""

from __future__ import annotations

import time

from repro.experiments.figures import render_table
from repro.experiments.records import ExperimentRecord
from repro.graphs.generators import random_regular_graph
from repro.parallel.executor import ThreadExecutor
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qtensor.contraction import choose_slice_vars, contract_network, contract_sliced
from repro.qtensor.network import TensorNetwork

SLICE_COUNTS = (0, 1, 2, 3)


def _closed_network():
    graph = random_regular_graph(12, 3, seed=5)
    bound = build_qaoa_ansatz(graph, 2).bind([0.1, 0.4, -0.3, 0.2])
    return TensorNetwork.from_circuit(bound, output_bitstring=0)


def bench_ablation_slicing(once):
    net = _closed_network()

    def run():
        reference = complex(contract_network(net))
        rows = []
        for s in SLICE_COUNTS:
            slice_vars = choose_slice_vars(net.tensors, s)
            start = time.perf_counter()
            if s == 0:
                value = complex(contract_network(net))
            else:
                value = contract_sliced(net, slice_vars)
            elapsed = time.perf_counter() - start
            assert abs(value - reference) < 1e-9
            rows.append([s, 2**s, elapsed])
        # parallel slices through a thread pool (level-2 parallelism)
        slice_vars = choose_slice_vars(net.tensors, 2)
        with ThreadExecutor(2) as pool:
            start = time.perf_counter()
            value = contract_sliced(net, slice_vars, map_fn=pool.map)
            threaded = time.perf_counter() - start
        assert abs(value - reference) < 1e-9
        rows.append(["2 (threads)", 4, threaded])
        return rows

    rows = once(run)

    print("\n=== Ablation: slice variables -> contraction behaviour ===")
    print(render_table(["slices", "independent pieces", "seconds"], rows))

    ExperimentRecord(
        experiment="ablation_slicing",
        paper_claim="slicing exposes intra-simulation parallelism (two-level scheme, level 2)",
        parameters={"slice_counts": list(SLICE_COUNTS), "n": 12, "p": 2},
        measured={"rows": [[str(r[0]), int(r[1]), float(r[2])] for r in rows]},
        verdict="value invariant under slicing; slices run through a thread pool",
    ).save()
