"""Batched multi-restart training vs the per-point loop it replaces.

Not a paper figure: this bench guards the tentpole perf claim of the
batch-native optimizer stack. The workload is the acceptance scenario — a
10-qubit ER graph with the winning ``('rx', 'ry')`` mixer at depth p=4
(the same probe every engine bench uses) — trained by multi-restart SPSA
with K=8 seeds. The batched path pushes each iteration's 2K ± probes
through one :meth:`CompiledProgram.energies` call; the serial path is the
historical loop of K independent trainings, one scalar energy call per
point. Identical trajectories (the batched lockstep replays the serial
perturbation streams), so the wall-clock ratio is pure batching win. The
claim: >=3x.

Runs standalone (``python benchmarks/bench_batched_optimizers.py``) or
under pytest-benchmark via the shared ``once`` fixture. The workload is
pinned at paper scale regardless of ``QARCH_BENCH_SCALE`` — a single
candidate, cheap enough for CI — so the committed numbers stay comparable
across machines.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import paper_probe_workload
from repro.optimizers import SPSA, MultiRestart, NelderMead
from repro.qaoa.energy import AnsatzEnergy

RESTARTS = 8
SPSA_ITERS = 100
NM_ITERS = 120
#: best-of repetitions per path, serial/batched interleaved so a load
#: spike on a shared CI core hits both sides instead of skewing the ratio
TIMING_REPEATS = 5
MIN_SPEEDUP = 3.0
#: Nelder–Mead's batch is narrower (one reflection per restart vs SPSA's
#: 2K block) and its lockstep pays per-restart bookkeeping, so its gate is
#: informational-loose; SPSA carries the acceptance claim
MIN_NM_SPEEDUP = 1.2


def _population(num_parameters: int) -> np.ndarray:
    return np.random.default_rng(11).uniform(
        -0.5, 0.5, (RESTARTS, num_parameters)
    )


def time_multi_restart(
    base, negated, X0: np.ndarray, *, batch_mode: str, repeats: int = 1
) -> dict:
    """Best-of-``repeats`` wall-clock of one multi-restart training run.

    Shared harness: this bench's serial-vs-batched gate and
    ``scripts/bench_report.py``'s committed throughput report both time
    through here, so the two can never measure differently.
    """
    meta = MultiRestart(base, batch_mode=batch_mode)
    best_seconds = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = meta.minimize_population(negated, X0, batch_fn=negated.values)
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return {
        "seconds": best_seconds,
        "nfev": result.nfev,
        "points_per_sec": result.nfev / best_seconds,
        "best_energy": -result.fun,
    }


def _best_of(previous: dict | None, fresh: dict) -> dict:
    return fresh if previous is None or fresh["seconds"] < previous["seconds"] else previous


def run_bench() -> dict:
    graph, ansatz, _ = paper_probe_workload()
    energy = AnsatzEnergy(ansatz, engine="compiled")
    negated = energy.negative_objective()
    X0 = _population(ansatz.num_parameters)

    # Warm both evaluation paths (compile, lazy diag lookups) off-clock.
    negated(X0[0])
    negated.values(X0)

    measured: dict = {}
    for label, base, gate in (
        ("spsa", SPSA(maxiter=SPSA_ITERS, seed=0), MIN_SPEEDUP),
        ("nelder_mead", NelderMead(maxiter=NM_ITERS), MIN_NM_SPEEDUP),
    ):
        serial = batched = None
        for _ in range(TIMING_REPEATS):
            serial = _best_of(
                serial, time_multi_restart(base, negated, X0, batch_mode="serial")
            )
            batched = _best_of(
                batched, time_multi_restart(base, negated, X0, batch_mode="batched")
            )
        speedup = serial["seconds"] / batched["seconds"]
        # SPSA's point budget is fixed (2 evals/iteration regardless of
        # values), so serial and batched must train identical counts.
        # Nelder-Mead's branch predicates compare energies computed by
        # different kernels on the two paths (scalar state() vs the
        # batch-major kernels, equal only to ~1e-15); a 1-ulp tie can
        # legitimately flip a branch and change the eval count, so its
        # budgets are not asserted — only the minima, within tolerance.
        if label == "spsa":
            assert serial["nfev"] == batched["nfev"], (
                f"{label}: serial trained {serial['nfev']} points but "
                f"batched trained {batched['nfev']} — the paths diverged"
            )
        drift = abs(serial["best_energy"] - batched["best_energy"])
        assert drift < 1e-6, (
            f"{label}: batched best energy drifted {drift:.3g} from serial"
        )
        measured[label] = {
            "serial": serial,
            "batched": batched,
            "speedup": speedup,
            "min_speedup": gate,
        }

    print(
        f"\n=== Batched multi-restart training (10 qubits, p=4, rx-ry, "
        f"K={RESTARTS}) ==="
    )
    for label, row in measured.items():
        print(
            f"{label:>12}: serial {row['serial']['seconds']:6.2f}s  "
            f"batched {row['batched']['seconds']:6.2f}s  "
            f"({row['batched']['points_per_sec']:8.0f} points/s batched)  "
            f"speedup {row['speedup']:.1f}x"
        )

    for label, row in measured.items():
        assert row["speedup"] >= row["min_speedup"], (
            f"batched {label} multi-restart only {row['speedup']:.1f}x "
            f"faster than {RESTARTS} serial runs "
            f"(required: {row['min_speedup']:.1f}x)"
        )

    ExperimentRecord(
        experiment="batched_optimizers",
        paper_claim=(
            "per-candidate training dominates search wall-clock; batching "
            "a restart population's probes into single vectorized energy "
            "calls makes multi-restart SPSA >=3x faster"
        ),
        parameters={
            "num_nodes": graph.num_nodes,
            "p": ansatz.p,
            "tokens": list(ansatz.mixer_tokens),
            "restarts": RESTARTS,
            "spsa_iters": SPSA_ITERS,
            "nelder_mead_iters": NM_ITERS,
        },
        measured=measured,
        verdict=(
            f"batched multi-restart SPSA is "
            f"{measured['spsa']['speedup']:.1f}x faster than {RESTARTS} "
            f"serial runs (nelder_mead: "
            f"{measured['nelder_mead']['speedup']:.1f}x)"
        ),
    ).save()
    return {label: row["speedup"] for label, row in measured.items()}


def bench_batched_optimizers(once):
    once(run_bench)


if __name__ == "__main__":
    run_bench()
