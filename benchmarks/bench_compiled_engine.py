"""Compiled engine vs dense statevector on the paper's training workload.

Not a paper figure: this bench guards the tentpole perf claim of the
compiled evaluation engine. The workload is the acceptance scenario — a
10-qubit ER graph, the winning ``('rx', 'ry')`` mixer at depth p=4, and a
200-step COBYLA training run (the Evaluator's §2.1 inner loop) — timed
per energy call and end-to-end per training, once per engine. The claim:
``engine="compiled"`` evaluates the identical objective (equivalence is
pinned to 1e-10 by tests/simulators/test_compiled.py) at least 5x faster
than ``engine="statevector"``.

The compiled engine is additionally timed **per array backend** (every
name in :func:`repro.simulators.backends.available_array_backends`):
``numpy`` is the gated default, ``mock_gpu`` pins the dispatch seam's
equivalence and overhead on CPU-only CI, and when a ``cupy`` install
registers itself its row appears with no bench change — the per-backend
axis ``BENCH_evaluator.json`` tracks GPU trajectories on. Only the
default numpy backend is speed-gated; the mock backend *models* device
cost, so its wall-clock is meaningless by design.

Runs standalone (``python benchmarks/bench_compiled_engine.py``) or under
pytest-benchmark via the shared ``once`` fixture. The workload is pinned
at paper scale regardless of ``QARCH_BENCH_SCALE`` — it is a single
candidate, cheap enough for CI — so the committed numbers stay comparable
across machines.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.evaluator import EvaluationConfig, Evaluator
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import (
    measure_array_backends,
    paper_probe_workload,
    seconds_per_eval,
)
from repro.qaoa.energy import AnsatzEnergy

MAX_STEPS = 200
TIMED_EVALS = 200
MIN_SPEEDUP = 5.0
#: end-to-end floor: a 200-step training also pays COBYLA's own
#: trust-region linear algebra (~1ms/step, engine-independent), which
#: bounds the best possible end-to-end ratio well below the per-eval one
#: — and on a throttled shared CI runner that fixed share grows, so the
#: gate is deliberately loose (measured ~5.5x on an idle box)
MIN_TRAIN_SPEEDUP = 2.0


def _per_eval_seconds(energy: AnsatzEnergy, x: np.ndarray) -> float:
    return seconds_per_eval(energy, x, TIMED_EVALS)


def run_bench() -> dict:
    graph, ansatz, x = paper_probe_workload()

    # Fixed-x equivalence gate: identical objective or the timing is moot.
    # (Trained *endpoints* may drift ~1e-2 between engines — COBYLA's
    # accept/reject path amplifies last-bit differences — so the pin
    # belongs here, not on the training result.)
    reference = {
        engine: AnsatzEnergy(ansatz, engine=engine).value(x)
        for engine in ("statevector", "compiled")
    }
    drift = abs(reference["compiled"] - reference["statevector"])
    assert drift < 1e-10, (
        f"engines disagree at fixed parameters (|delta|={drift:.3g}) — "
        "equivalence broken, timing is meaningless"
    )

    measured: dict = {}
    for engine in ("statevector", "compiled"):
        eval_seconds = _per_eval_seconds(AnsatzEnergy(ansatz, engine=engine), x)
        config = EvaluationConfig(max_steps=MAX_STEPS, seed=0, engine=engine)
        start = time.perf_counter()
        evaluation = Evaluator([graph], config).evaluate(ansatz.mixer_tokens, ansatz.p)
        train_seconds = time.perf_counter() - start
        measured[engine] = {
            "seconds_per_eval": eval_seconds,
            "evals_per_sec": 1.0 / eval_seconds,
            "train_seconds": train_seconds,
            "train_nfev": evaluation.nfev,
            "energy": evaluation.energy,
        }

    eval_speedup = (
        measured["statevector"]["seconds_per_eval"]
        / measured["compiled"]["seconds_per_eval"]
    )
    train_speedup = (
        measured["statevector"]["train_seconds"]
        / measured["compiled"]["train_seconds"]
    )

    # Per-array-backend axis (the GPU trajectory): shared harness asserts
    # every registered backend reproduces the probe energy to 1e-10.
    array_backends = measure_array_backends(ansatz, x, TIMED_EVALS)

    print("\n=== Compiled engine vs statevector (10 qubits, p=4, rx-ry) ===")
    for engine, row in measured.items():
        print(
            f"{engine:>12}: {row['seconds_per_eval'] * 1e6:8.0f} us/eval "
            f"({row['evals_per_sec']:8.0f} evals/s)  "
            f"200-step COBYLA train: {row['train_seconds']:6.2f}s"
        )
    print(f"per-eval speedup: {eval_speedup:.1f}x   train speedup: {train_speedup:.1f}x")
    for name, row in array_backends.items():
        extra = ""
        device_seconds = row["stats"].get("device_seconds")
        if device_seconds:
            extra = f"  (modeled device: {device_seconds * 1e3:.1f} ms total)"
        print(
            f"  compiled[{name}]: {row['seconds_per_eval'] * 1e6:8.0f} us/eval"
            f"{extra}"
        )

    assert eval_speedup >= MIN_SPEEDUP, (
        f"compiled engine only {eval_speedup:.1f}x faster per evaluation "
        f"(required: {MIN_SPEEDUP:.0f}x)"
    )
    assert train_speedup >= MIN_TRAIN_SPEEDUP, (
        f"compiled engine only {train_speedup:.1f}x faster per training "
        f"(required: {MIN_TRAIN_SPEEDUP:.0f}x)"
    )

    ExperimentRecord(
        experiment="compiled_engine",
        paper_claim=(
            "the Evaluator inner loop dominates search cost; compiling the "
            "candidate once makes every COBYLA step >=5x cheaper"
        ),
        parameters={
            "num_nodes": graph.num_nodes,
            "p": ansatz.p,
            "tokens": list(ansatz.mixer_tokens),
            "max_steps": MAX_STEPS,
            "timed_evals": TIMED_EVALS,
        },
        measured={
            "engines": measured,
            "array_backends": array_backends,
            "eval_speedup": eval_speedup,
            "train_speedup": train_speedup,
        },
        verdict=(
            f"compiled engine is {eval_speedup:.1f}x faster per evaluation "
            f"and {train_speedup:.1f}x per 200-step training"
        ),
    ).save()
    return {"eval_speedup": eval_speedup, "train_speedup": train_speedup}


def bench_compiled_engine(once):
    once(run_bench)


if __name__ == "__main__":
    run_bench()
