"""Fig. 4 — serial vs parallel search time vs QAOA depth.

Paper protocol (§3.1): the NAS inner loop over rotation-gate combinations,
run serially and with multiprocessing ``starmap_async``, for p = 1..4,
averaged over five runs on different 10-node ER graphs. Claim: "in the case
of parallel the run time is improved by over 50%" (on a 32+-core Polaris
node; on a 2-core box the ideal bound is 50%, so the CI assertion is that
parallel wins at every depth and by a margin consistent with the core
count).
"""

from __future__ import annotations

from repro.core.alphabet import GateAlphabet
from repro.core.evaluator import EvaluationConfig
from repro.experiments.figures import render_series
from repro.experiments.profiling import candidate_bag, run_fig4
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import get_scale
from repro.graphs.datasets import paper_er_dataset
from repro.parallel.executor import available_cores


def bench_fig4_serial_vs_parallel(once):
    scale = get_scale()
    run_graphs = paper_er_dataset(scale.num_runs)
    candidates = candidate_bag(GateAlphabet(), 4, scale.num_candidates)
    config = EvaluationConfig(max_steps=scale.max_steps, seed=0)
    p_values = list(range(1, scale.p_max + 1))

    result = once(
        lambda: run_fig4(
            run_graphs, p_values=p_values, candidates=candidates, config=config
        )
    )

    print("\n=== Fig. 4: time to simulate vs depth (seconds) ===")
    print(
        render_series(
            "p",
            result.p_values,
            {
                "serial": result.serial_seconds,
                "parallel": result.parallel_seconds,
                "improvement": result.improvement,
            },
        )
    )
    print(
        f"(workers={result.num_workers}, runs={len(run_graphs)}, "
        f"candidates/depth={len(candidates)}, scale={scale.name})"
    )

    # Shape assertions: parallel wins at every depth; time grows with p.
    for serial, parallel in zip(result.serial_seconds, result.parallel_seconds):
        assert parallel < serial, "parallel search must beat serial"
    assert result.serial_seconds[-1] > result.serial_seconds[0], (
        "search time must grow with depth"
    )
    # Improvement should approach the machine's parallel bound at the
    # deepest (most work-rich) depth. The paper's >50% holds on many-core
    # nodes; a 2-core box caps the ideal at 50% and the harness process
    # itself competes for a core, so expect a modest-but-real win there.
    min_expected = 0.15 if available_cores() <= 2 else 0.5
    assert result.improvement[-1] >= min_expected

    ExperimentRecord(
        experiment="fig4",
        paper_claim="parallel search >50% faster than serial, both growing with p",
        parameters={
            "scale": scale.name,
            "p_values": result.p_values,
            "num_candidates": len(candidates),
            "num_runs": len(run_graphs),
            "max_steps": config.max_steps,
            "workers": result.num_workers,
        },
        measured={
            "serial_seconds": result.serial_seconds,
            "parallel_seconds": result.parallel_seconds,
            "improvement": result.improvement,
        },
        verdict=(
            f"parallel wins at every p; improvement at p={result.p_values[-1]} "
            f"is {result.improvement[-1]:.0%} on {result.num_workers} cores"
        ),
    ).save()
