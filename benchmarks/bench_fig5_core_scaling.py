"""Fig. 5 — time to search one graph at p=2 vs core count (8..64).

Paper protocol (§3.1): one 10-node ER graph, p = 2, cores swept 8..64 in
steps of 8, against a dashed serial-time line; the parallel version is
quoted as "0.76 times faster" than serial.

Substitution (DESIGN.md): per-candidate durations are *measured* by really
training each candidate serially; placement on 8..64 workers is replayed
through the list-scheduling simulator, and the simulator is validated
against a real process pool at the core counts this machine has.
"""

from __future__ import annotations

from repro.core.alphabet import GateAlphabet
from repro.core.evaluator import EvaluationConfig
from repro.experiments.figures import render_series, render_table
from repro.experiments.profiling import candidate_bag, run_fig5
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import get_scale
from repro.graphs.datasets import profiling_graph

PAPER_CORE_COUNTS = (8, 16, 24, 32, 40, 48, 56, 64)


def bench_fig5_core_scaling(once):
    scale = get_scale()
    graph = profiling_graph()
    candidates = candidate_bag(GateAlphabet(), 4, scale.num_candidates)
    config = EvaluationConfig(max_steps=scale.max_steps, seed=0)

    result = once(
        lambda: run_fig5(
            graph,
            p=2,
            candidates=candidates,
            config=config,
            core_counts=PAPER_CORE_COUNTS,
        )
    )

    print("\n=== Fig. 5: time to simulate at p=2 vs cores (seconds) ===")
    print(
        render_series(
            "cores",
            result.core_counts,
            {"simulated": result.simulated_seconds},
        )
    )
    print(f"serial reference (dashed line): {result.serial_seconds:.3f}s")
    print(f"best parallel / serial: {result.best_fraction_of_serial:.2f}")
    if result.validation:
        rows = [
            [w, measured, predicted, abs(measured - predicted) / measured]
            for w, (measured, predicted) in sorted(result.validation.items())
        ]
        print("\nsimulator validation against a real pool:")
        print(render_table(["workers", "measured", "predicted", "rel_err"], rows))

    # Shape assertions: monotone non-increasing with cores; all parallel
    # points beat serial; significant reduction at 64 cores.
    times = result.simulated_seconds
    assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))
    assert max(times) < result.serial_seconds
    assert result.best_fraction_of_serial < 0.5
    # validation: simulated W-worker time in the same regime as a real pool
    # run (15% in isolation; the bound is loose because back-to-back bench
    # runs contend for this box's two cores and inflate the measured side)
    for workers, (measured, predicted) in result.validation.items():
        assert abs(measured - predicted) / measured < 0.75, (
            f"simulator off by >75% at {workers} workers"
        )

    ExperimentRecord(
        experiment="fig5",
        paper_claim="near-monotone speedup from 8 to 64 cores; parallel ~0.76x reduction vs serial",
        parameters={
            "scale": scale.name,
            "p": 2,
            "num_candidates": len(candidates),
            "core_counts": list(PAPER_CORE_COUNTS),
        },
        measured={
            "serial_seconds": result.serial_seconds,
            "simulated_seconds": result.simulated_seconds,
            "best_fraction_of_serial": result.best_fraction_of_serial,
            "validation": {str(k): v for k, v in result.validation.items()},
        },
        verdict=(
            f"monotone scaling; best parallel time is "
            f"{result.best_fraction_of_serial:.2f}x of serial"
        ),
    ).save()
