"""Fig. 6 — the best searched mixer circuit.

Paper result (§3.2): the search returns the mixer applying ``RX(2 beta)``
then ``RY(2 beta)`` to every qubit — the ``('rx', 'ry')`` combination —
drawn as a 10-qubit circuit. The candidate space matching the paper's
Figs. 6-7 panel is the two-gate combinations of A_R.

Degeneracy note surfaced by this reproduction: pairs whose *second* gate is
Z-diagonal (``('rx','rz')``, ``('rx','p')``) are exactly equivalent to the
plain RX mixer at p=1 — a trailing diagonal commutes with the cost
observable — so they score as the baseline in disguise. The paper's winner
``('rx','ry')`` is asserted to be the best *non-degenerate* pair; the raw
ranking (including the disguised-baseline pairs) is printed and recorded.
"""

from __future__ import annotations

from repro.core.evaluator import EvaluationConfig
from repro.core.search import SearchConfig
from repro.experiments.discovery import draw_mixer, run_fig6
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import get_scale
from repro.graphs.datasets import paper_er_dataset
from repro.parallel.executor import MultiprocessingExecutor

#: pairs equivalent to the baseline RX mixer at p=1 (trailing Z-diagonal)
DEGENERATE_PAIRS = {("rx", "rz"), ("rx", "p")}


def bench_fig6_best_mixer(once):
    scale = get_scale()
    train_graphs = paper_er_dataset(scale.num_graphs)
    config = SearchConfig(
        p_max=min(scale.p_max, 2),
        k_min=2,
        k_max=2,
        mode="combinations",  # the Figs. 6-7 candidate convention
        evaluation=EvaluationConfig(
            max_steps=scale.max_steps, restarts=2, seed=0,
            metric="best_sampled", shots=64,
        ),
    )

    def run():
        with MultiprocessingExecutor() as executor:
            return run_fig6(train_graphs, config=config, executor=executor)

    result = once(run)

    print("\n=== Fig. 6: best searched mixer ===")
    print(
        f"winner: {result.best_tokens} at p={result.search.best_p} "
        f"(mean ratio {result.search.best_ratio:.4f} on {len(train_graphs)} ER graphs)"
    )
    ranked_p1 = result.search.depth_results[0].ranked()
    print("\nfull p=1 ranking (two-gate pairs):")
    for e in ranked_p1:
        note = "  [= baseline RX at p=1]" if e.tokens in DEGENERATE_PAIRS else ""
        print(f"  {e.tokens}: ratio={e.ratio:.4f}{note}")
    print("\npaper's winning circuit, ('rx', 'ry') on 10 qubits:")
    print(draw_mixer(("rx", "ry"), 10))

    # Shape assertions: the winner leads with the transverse-field rotation,
    # and ('rx','ry') is the best pair that is not baseline-in-disguise.
    assert result.best_tokens[0] == "rx"
    non_degenerate = [e for e in ranked_p1 if e.tokens not in DEGENERATE_PAIRS]
    assert non_degenerate[0].tokens == ("rx", "ry"), (
        f"best genuine two-gate mixer should be ('rx','ry'), "
        f"got {non_degenerate[0].tokens}"
    )

    ExperimentRecord(
        experiment="fig6",
        paper_claim="search returns the ('rx','ry') mixer: RX(2b) RY(2b) on every qubit",
        parameters={
            "scale": scale.name,
            "num_graphs": len(train_graphs),
            "space": "two-gate combinations of A_R",
            "max_steps": config.evaluation.max_steps,
            "metric": "best_sampled(64)",
        },
        measured={
            "winner": list(result.best_tokens),
            "best_p": result.search.best_p,
            "best_ratio": result.search.best_ratio,
            "p1_ranking": [
                {"tokens": list(e.tokens), "ratio": e.ratio,
                 "degenerate_baseline": e.tokens in DEGENERATE_PAIRS}
                for e in ranked_p1
            ],
        },
        verdict=(
            f"best non-degenerate pair: {non_degenerate[0].tokens} "
            f"(paper: ('rx','ry')); raw winner {result.best_tokens}"
        ),
    ).save()
