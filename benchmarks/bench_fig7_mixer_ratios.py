"""Fig. 7 — approximation ratios of four candidate mixers at p=1.

Paper result (§3.2): on 20 ten-node random 4-regular graphs, the mixers
('ry','p'), ('rx','h'), ('h','p'), ('rx','ry') are compared at p=1; the
searched winner ('rx','ry') attains the highest approximation ratio, and
('h','p') — with no beta-dependent gate reaching the cost landscape — is
far below the rotation pairs.
"""

from __future__ import annotations

from repro.core.evaluator import EvaluationConfig
from repro.experiments.discovery import PAPER_FIG7_MIXERS, run_fig7
from repro.experiments.figures import render_bars
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import get_scale
from repro.graphs.datasets import paper_regular_dataset
from repro.qaoa.mixers import mixer_label


def bench_fig7_mixer_ratios(once):
    scale = get_scale()
    eval_graphs = paper_regular_dataset(scale.num_graphs)
    # Eq. (3) metric: expected best cut over a fixed measurement budget
    config = EvaluationConfig(
        max_steps=scale.max_steps, restarts=2, seed=0,
        metric="best_sampled", shots=64,
    )

    result = once(lambda: run_fig7(eval_graphs, p=1, config=config))

    print("\n=== Fig. 7: approximation ratio at p=1, 4-regular graphs ===")
    print(render_bars(result.labels, result.ratios, vmin=0.0, vmax=1.0))
    print(f"(graphs={len(eval_graphs)}, steps={config.max_steps}, scale={scale.name})")

    ratios = dict(zip(result.mixers, result.ratios))
    # Shape assertions per the paper's bar chart: the searched ('rx','ry')
    # mixer wins, by a clear margin over the rest of the panel.
    assert result.winner == ("rx", "ry"), (
        f"expected ('rx','ry') to win, got {result.winner}"
    )
    others = [r for m, r in ratios.items() if m != ("rx", "ry")]
    assert ratios[("rx", "ry")] > max(others) + 0.01
    assert all(0.0 < r <= 1.0 + 1e-9 for r in result.ratios)

    ExperimentRecord(
        experiment="fig7",
        paper_claim="('rx','ry') highest ratio at p=1; ordering (ry,p) ~ (rx,h) > (h,p)",
        parameters={
            "scale": scale.name,
            "num_graphs": len(eval_graphs),
            "max_steps": config.max_steps,
            "mixers": [list(m) for m in PAPER_FIG7_MIXERS],
        },
        measured={mixer_label(m): r for m, r in zip(result.mixers, result.ratios)},
        verdict=f"winner {result.winner} with ratio {max(result.ratios):.4f}",
    ).save()
