"""Fig. 8 — baseline vs searched (qnas) mixer on ER graphs.

Paper result (§3.2): mean approximation ratio over the ER dataset,
averaged over p = 1, 2, 3; the searched ('rx','ry') mixer beats the
baseline X mixer, with both in the high-0.98..1.0 band.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluator import EvaluationConfig
from repro.experiments.comparison import run_fig8
from repro.experiments.figures import render_bars, render_series
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import get_scale
from repro.graphs.datasets import paper_er_dataset


def bench_fig8_er_comparison(once):
    scale = get_scale()
    er_graphs = paper_er_dataset(scale.num_graphs)
    p_values = tuple(range(1, min(scale.p_max, 3) + 1))
    # Eq. (3) metric: expected best cut over a fixed measurement budget —
    # the reading that reproduces the paper's 0.986..1.0 ratio band
    config = EvaluationConfig(
        max_steps=scale.max_steps, restarts=2, seed=0,
        metric="best_sampled", shots=64,
    )

    result = once(lambda: run_fig8(er_graphs, p_values=p_values, config=config))

    print("\n=== Fig. 8: mean ratio on ER graphs, averaged over p ===")
    print(
        render_bars(
            list(result.aggregated),
            list(result.aggregated.values()),
            vmin=min(result.aggregated.values()) - 0.01,
            vmax=1.0,
        )
    )
    print("\nper-p breakdown:")
    print(render_series("p", result.p_values, result.per_p))
    print(f"(graphs={len(er_graphs)}, steps={config.max_steps}, scale={scale.name})")

    # Shape assertions — what reproduces robustly on synthetic instances:
    # both mixers land in the paper's high band and within a small gap.
    # The paper's qnas>baseline *ordering* is instance-dependent at this
    # gap size and is recorded (not asserted); see EXPERIMENTS.md for the
    # family-optimum analysis of why plain RX can edge out (rx, ry).
    assert result.aggregated["qnas"] > 0.95
    assert result.aggregated["baseline"] > 0.95
    gap = abs(result.aggregated["qnas"] - result.aggregated["baseline"])
    assert gap < 0.03, f"mixers should sit in the same narrow band (gap {gap:.4f})"

    ExperimentRecord(
        experiment="fig8",
        paper_claim=(
            "qnas mixer achieves higher mean r than baseline on ER graphs "
            "(~0.986-1.0 band)"
        ),
        parameters={
            "scale": scale.name,
            "num_graphs": len(er_graphs),
            "p_values": list(p_values),
            "max_steps": config.max_steps,
        },
        measured={
            "aggregated": result.aggregated,
            "per_p": result.per_p,
        },
        verdict=(
            f"qnas {result.aggregated['qnas']:.4f} vs baseline "
            f"{result.aggregated['baseline']:.4f} -> winner {result.winner()}"
        ),
    ).save()
