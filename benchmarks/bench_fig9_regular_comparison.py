"""Fig. 9 — baseline vs qnas mixer per depth on 4-regular graphs.

Paper result (§3.2): on the 10-node random 4-regular dataset the two
mixers perform comparably at every p (the aggregated values are equal,
~1.0), which is why the paper shows the per-p breakdown.
"""

from __future__ import annotations

from repro.core.evaluator import EvaluationConfig
from repro.experiments.comparison import run_fig9
from repro.experiments.figures import render_grouped_bars
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import get_scale
from repro.graphs.datasets import paper_regular_dataset


def bench_fig9_regular_comparison(once):
    scale = get_scale()
    reg_graphs = paper_regular_dataset(scale.num_graphs)
    p_values = tuple(range(1, min(scale.p_max, 3) + 1))
    # Eq. (3) metric (best-sampled cut): on 4-regular graphs both mixers
    # saturate near 1.0, matching the paper's "aggregated values are equal"
    config = EvaluationConfig(
        max_steps=scale.max_steps, restarts=2, seed=0,
        metric="best_sampled", shots=64,
    )

    result = once(lambda: run_fig9(reg_graphs, p_values=p_values, config=config))

    print("\n=== Fig. 9: ratio per p on 4-regular graphs ===")
    groups = [f"p={p}" for p in result.p_values]
    print(render_grouped_bars(groups, result.per_p, vmin=0.0, vmax=1.0))
    print(f"(graphs={len(reg_graphs)}, steps={config.max_steps}, scale={scale.name})")

    # Shape assertions: comparable performance — per-p gaps small, both
    # strong on regular graphs, ratios improving (weakly) with p.
    for p_idx in range(len(result.p_values)):
        gap = abs(result.per_p["qnas"][p_idx] - result.per_p["baseline"][p_idx])
        assert gap < 0.08, f"mixers should be comparable at p={result.p_values[p_idx]}"
    for series in result.per_p.values():
        assert series[-1] >= series[0] - 0.02, "ratio should not degrade with depth"
        assert min(series) > 0.8

    max_gap = max(
        abs(result.per_p["qnas"][i] - result.per_p["baseline"][i])
        for i in range(len(p_values))
    )
    ExperimentRecord(
        experiment="fig9",
        paper_claim="baseline and qnas comparable at all p on 4-regular graphs (aggregate ~1.0)",
        parameters={
            "scale": scale.name,
            "num_graphs": len(reg_graphs),
            "p_values": list(p_values),
            "max_steps": config.max_steps,
        },
        measured={"per_p": result.per_p, "aggregated": result.aggregated},
        verdict=f"comparable: max per-p gap {max_gap:.4f}",
    ).save()
