"""Runtime ablation — cold vs warm persistent cache, and the hoisted
classical-optima hot path.

Not a paper figure: this bench guards the SearchRuntime subsystem. The
claim is structural — a repeated search with a warm ``cache_dir`` performs
zero candidate trainings (every candidate is a cache hit), so the warm run
costs a small constant factor of the cold run regardless of workload size.
"""

from __future__ import annotations

import tempfile
import time

from repro.core.evaluator import EvaluationConfig
from repro.core.runtime import RuntimeConfig
from repro.core.search import SearchConfig, search_mixer
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import get_scale
from repro.graphs.datasets import paper_er_dataset


def bench_runtime_warm_cache(once):
    scale = get_scale()
    graphs = paper_er_dataset(max(1, scale.num_graphs // 3))
    config = SearchConfig(
        p_max=min(2, scale.p_max),
        k_min=2,
        k_max=2,
        mode="combinations",
        evaluation=EvaluationConfig(max_steps=scale.max_steps, seed=0),
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        runtime = RuntimeConfig(cache_dir=cache_dir)

        start = time.perf_counter()
        cold = search_mixer(graphs, config, runtime=runtime)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = once(lambda: search_mixer(graphs, config, runtime=runtime))
        warm_seconds = time.perf_counter() - start

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print("\n=== Runtime: cold vs warm persistent cache (seconds) ===")
    print(f"cold:  {cold_seconds:8.2f}s  ({cold.num_candidates} candidates trained)")
    print(f"warm:  {warm_seconds:8.2f}s  ({warm.config['cache_hits']} cache hits)")
    print(f"speedup: {speedup:.0f}x")

    assert warm.config["cache_hits"] == warm.num_candidates, (
        "warm run must train nothing"
    )
    assert warm.config["cache_misses"] == 0
    assert warm.best_tokens == cold.best_tokens
    assert warm_seconds < cold_seconds, "warm cache must beat retraining"

    ExperimentRecord(
        experiment="runtime_cache",
        paper_claim="result store + resume makes repeated sweeps free",
        parameters={
            "scale": scale.name,
            "num_graphs": len(graphs),
            "num_candidates": cold.num_candidates,
            "max_steps": config.evaluation.max_steps,
        },
        measured={
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
            "warm_cache_hits": warm.config["cache_hits"],
        },
        verdict=(
            f"warm cache replays {warm.num_candidates} candidates "
            f"{speedup:.0f}x faster with zero trainings"
        ),
    ).save()
