"""Runtime ablation — cold vs warm persistent cache, and the hoisted
classical-optima hot path.

Not a paper figure: this bench guards the SearchRuntime subsystem. The
claim is structural — a repeated search with a warm ``cache_dir`` performs
zero candidate trainings (every candidate is a cache hit), so the warm run
costs a small constant factor of the cold run regardless of workload size.
"""

from __future__ import annotations

import tempfile
import time

from repro.core.cache import ResultCache
from repro.core.evaluator import EvaluationConfig
from repro.core.results import CandidateEvaluation
from repro.core.runtime import RuntimeConfig
from repro.core.search import SearchConfig, search_mixer
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import get_scale
from repro.graphs.datasets import paper_er_dataset


def bench_runtime_warm_cache(once):
    scale = get_scale()
    graphs = paper_er_dataset(max(1, scale.num_graphs // 3))
    config = SearchConfig(
        p_max=min(2, scale.p_max),
        k_min=2,
        k_max=2,
        mode="combinations",
        evaluation=EvaluationConfig(max_steps=scale.max_steps, seed=0),
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        runtime = RuntimeConfig(cache_dir=cache_dir)

        start = time.perf_counter()
        cold = search_mixer(graphs, config, runtime=runtime)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = once(lambda: search_mixer(graphs, config, runtime=runtime))
        warm_seconds = time.perf_counter() - start

    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    print("\n=== Runtime: cold vs warm persistent cache (seconds) ===")
    print(f"cold:  {cold_seconds:8.2f}s  ({cold.num_candidates} candidates trained)")
    print(f"warm:  {warm_seconds:8.2f}s  ({warm.config['cache_hits']} cache hits)")
    print(f"speedup: {speedup:.0f}x")

    assert warm.config["cache_hits"] == warm.num_candidates, (
        "warm run must train nothing"
    )
    assert warm.config["cache_misses"] == 0
    assert warm.best_tokens == cold.best_tokens
    assert warm_seconds < cold_seconds, "warm cache must beat retraining"

    ExperimentRecord(
        experiment="runtime_cache",
        paper_claim="result store + resume makes repeated sweeps free",
        parameters={
            "scale": scale.name,
            "num_graphs": len(graphs),
            "num_candidates": cold.num_candidates,
            "max_steps": config.evaluation.max_steps,
        },
        measured={
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": speedup,
            "warm_cache_hits": warm.config["cache_hits"],
        },
        verdict=(
            f"warm cache replays {warm.num_candidates} candidates "
            f"{speedup:.0f}x faster with zero trainings"
        ),
    ).save()


def bench_cache_commit_batching(once):
    """Satellite claim: one sqlite transaction per batch (``executemany``
    + a single commit every ``flush_every`` puts) beats a commit per
    evaluation, which is what wide depths (625+ candidates) pay for their
    incremental partial-depth persistence."""
    num_puts = 640  # one paper-scale depth
    evaluations = [
        (
            f"key-{i}",
            CandidateEvaluation(
                tokens=("rx", "ry"),
                p=1 + i % 4,
                energy=3.5,
                ratio=0.97,
                per_graph_energy=(3.4, 3.6),
                per_graph_ratio=(0.96, 0.98),
                nfev=200,
                seconds=0.25,
            ),
        )
        for i in range(num_puts)
    ]

    def fill(cache_dir, flush_every):
        with ResultCache(cache_dir, flush_every=flush_every) as cache:
            start = time.perf_counter()
            for key, evaluation in evaluations:
                cache.put(key, evaluation)
            cache.flush()
            return time.perf_counter() - start

    with tempfile.TemporaryDirectory() as base:
        per_put_seconds = fill(f"{base}/per-put", flush_every=1)
        batched_seconds = once(lambda: fill(f"{base}/batched", flush_every=8))
        one_txn_seconds = fill(f"{base}/one-txn", flush_every=num_puts)

    speedup = per_put_seconds / batched_seconds if batched_seconds > 0 else float("inf")
    print(f"\n=== ResultCache: commit batching over {num_puts} puts ===")
    print(f"commit per put:        {per_put_seconds * 1e3:8.1f}ms")
    print(f"batch of 8 (runtime):  {batched_seconds * 1e3:8.1f}ms  ({speedup:.1f}x)")
    print(f"one transaction/depth: {one_txn_seconds * 1e3:8.1f}ms")

    assert batched_seconds < per_put_seconds, (
        "batched commits must beat a commit per evaluation"
    )

    ExperimentRecord(
        experiment="cache_commit_batching",
        paper_claim="incremental persistence need not cost a commit per eval",
        parameters={"num_puts": num_puts, "flush_every": 8},
        measured={
            "per_put_seconds": per_put_seconds,
            "batched_seconds": batched_seconds,
            "one_txn_seconds": one_txn_seconds,
            "speedup": speedup,
        },
        verdict=(
            f"flush_every=8 writes a {num_puts}-candidate depth "
            f"{speedup:.1f}x faster than commit-per-evaluation"
        ),
    ).save()
