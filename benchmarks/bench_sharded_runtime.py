"""Sharded runtime ablation — outer-level scaling and the partial-resume win.

Not a paper figure: this bench guards the ShardedRuntime subsystem (the
Fig. 2 outer level made real). Two structural claims:

* **Shard scaling** — K shards, each backed by its own single-worker
  process pool (the in-process model of one pool per node), complete a
  depth sweep faster than one shard with one pool, approaching linear as
  the bags are embarrassingly parallel and placement is balanced.
* **Partial-depth resume** — a sweep killed partway through a wide depth
  restarts by re-submitting only the candidates that never reached the
  cache; the resumed run trains a strict fraction of the depth and the
  combined result matches an uninterrupted run.
"""

from __future__ import annotations

import tempfile
import time

from repro.core.evaluator import EvaluationConfig
from repro.core.runtime import RuntimeConfig
from repro.core.search import SearchConfig, search_mixer
from repro.experiments.records import ExperimentRecord
from repro.experiments.scale import get_scale
from repro.graphs.datasets import paper_er_dataset
from repro.parallel.executor import (
    MultiprocessingExecutor,
    SerialExecutor,
    available_cores,
)


def _workload(scale):
    graphs = paper_er_dataset(max(1, scale.num_graphs // 3))
    config = SearchConfig(
        p_max=1,
        k_min=1,
        k_max=2,
        mode="combinations",
        evaluation=EvaluationConfig(max_steps=scale.max_steps, seed=0),
    )
    return graphs, config


def _warm(value):
    return value


def run_scaling():
    scale = get_scale()
    graphs, config = _workload(scale)
    cores = available_cores()
    max_shards = min(4, max(2, cores))

    def timed(num_shards):
        executors = [MultiprocessingExecutor(1) for _ in range(num_shards)]
        try:
            # Fork + import cost stays outside the timed region: the claim
            # is steady-state shard scaling, not pool startup.
            for executor in executors:
                executor.starmap(_warm, [(0,)])
            start = time.perf_counter()
            result = search_mixer(
                graphs,
                config,
                executor=executors,
                runtime=RuntimeConfig(shards=num_shards),
            )
            return time.perf_counter() - start, result
        finally:
            for executor in executors:
                executor.close()

    single_seconds, single = timed(1)
    sharded_seconds, sharded = timed(max_shards)

    speedup = single_seconds / sharded_seconds if sharded_seconds > 0 else float("inf")
    print(f"\n=== Sharded runtime: 1 vs {max_shards} shards (1 worker each) ===")
    print(f"1 shard:  {single_seconds:8.2f}s  ({single.num_candidates} candidates)")
    print(f"{max_shards} shards: {sharded_seconds:8.2f}s  (speedup {speedup:.2f}x)")

    # Sharding changes where work runs, never what it computes.
    assert sharded.best_tokens == single.best_tokens
    assert sharded.best_p == single.best_p
    assert abs(sharded.best_energy - single.best_energy) < 1e-12
    assert sharded.config["dead_shards"] == []
    if cores >= 2:
        # Conservative fraction of ideal so busy 2-core CI boxes pass;
        # near-linear headroom shows on real nodes (laptop/paper scales).
        min_expected = 1.15 if cores == 2 else 0.45 * max_shards
        assert speedup >= min_expected, (
            f"{max_shards}-shard speedup {speedup:.2f}x below {min_expected:.2f}x"
        )
    else:
        print("(single core available: shard-scaling gate skipped)")

    ExperimentRecord(
        experiment="sharded_runtime_scaling",
        paper_claim="Fig. 2 outer level: candidate bags shard across nodes",
        parameters={
            "scale": scale.name,
            "num_graphs": len(graphs),
            "num_candidates": single.num_candidates,
            "shards": max_shards,
            "cores": available_cores(),
        },
        measured={
            "single_seconds": single_seconds,
            "sharded_seconds": sharded_seconds,
            "speedup": speedup,
        },
        verdict=(
            f"{max_shards} shards run the depth sweep {speedup:.2f}x faster "
            f"than one"
        ),
    ).save()


class _KillAt(SerialExecutor):
    """Dies (KeyboardInterrupt, as a real kill would surface) on the Nth
    submitted job."""

    def __init__(self, fail_at):
        self.fail_at = fail_at
        self.count = 0

    def submit(self, fn, *args):
        self.count += 1
        if self.count == self.fail_at:
            raise KeyboardInterrupt("simulated mid-depth kill")
        return super().submit(fn, *args)


def run_resume():
    scale = get_scale()
    graphs, config = _workload(scale)

    with tempfile.TemporaryDirectory() as cache_dir:
        runtime = RuntimeConfig(cache_dir=cache_dir, cache_flush_every=1)

        start = time.perf_counter()
        full = search_mixer(graphs, config)
        full_seconds = time.perf_counter() - start
        width = full.num_candidates

        kill_at = max(3, (2 * width) // 3)
        try:
            search_mixer(
                graphs, config, executor=_KillAt(kill_at), runtime=runtime
            )
        except KeyboardInterrupt:
            pass

        start = time.perf_counter()
        resumed = search_mixer(
            graphs,
            config,
            runtime=RuntimeConfig(cache_dir=cache_dir, resume=True),
        )
        resume_seconds = time.perf_counter() - start

    resubmitted = resumed.config["jobs_submitted"]
    recovered = resumed.config["cache_hits"]
    print("\n=== Partial-depth resume after a mid-depth kill ===")
    print(f"uninterrupted: {full_seconds:8.2f}s  ({width} candidates)")
    print(
        f"resume:        {resume_seconds:8.2f}s  "
        f"({recovered} recovered from cache, {resubmitted} re-trained)"
    )

    # The win: resume re-trains only the unfinished tail of the depth.
    assert 0 < resubmitted < width, "resume must re-submit a strict subset"
    assert resubmitted + recovered == width
    assert resumed.best_tokens == full.best_tokens
    assert resume_seconds < full_seconds, "partial resume must beat re-running"

    ExperimentRecord(
        experiment="partial_depth_resume",
        paper_claim="checkpoint granularity: resume mid-depth, not per-depth",
        parameters={
            "scale": scale.name,
            "num_candidates": width,
            "killed_after": recovered,
        },
        measured={
            "full_seconds": full_seconds,
            "resume_seconds": resume_seconds,
            "resubmitted": resubmitted,
            "recovered": recovered,
        },
        verdict=(
            f"resume re-trained {resubmitted}/{width} candidates "
            f"({resume_seconds:.2f}s vs {full_seconds:.2f}s uninterrupted)"
        ),
    ).save()


def bench_sharded_scaling(once):
    once(run_scaling)


def bench_partial_depth_resume(once):
    once(run_resume)


if __name__ == "__main__":
    run_scaling()
    run_resume()
