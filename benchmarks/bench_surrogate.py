#!/usr/bin/env python
"""Surrogate-assisted search vs the full sweep: fewer evals, same winner.

One seeded benchmark sweep run twice — unfiltered, then with the
surrogate ranker pruning each depth's candidate pool — gated on the two
properties that justify the surrogate layer existing at all:

* the assisted sweep performs at least ``MIN_EVAL_REDUCTION`` fewer real
  simulator evaluations (``jobs_submitted``, the only place training
  actually happens) than the full sweep, and
* its final best energy matches the full sweep's within
  ``ENERGY_TOLERANCE`` — pruning must not lose the winner.

Set ``QARCH_BENCH_TREND=off`` to report without gating (the same escape
hatch the throughput trend gate honors). The measured numbers land in
``benchmarks/results/surrogate_search.json`` either way.

Run from the repo root (CI's bench-smoke job does)::

    python benchmarks/bench_surrogate.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, "src")

from repro.api import Config, search  # noqa: E402

OUTPUT = Path("benchmarks/results/surrogate_search.json")

#: the assisted sweep must cut real evaluations by at least this fraction
MIN_EVAL_REDUCTION = 0.40
#: and still land on the same best energy to this tolerance
ENERGY_TOLERANCE = 1e-6

#: the seeded benchmark sweep: enough depths that the depth-1 training
#: round is amortized by three pruned depths
WORKLOAD = "er:2:7"
DEPTHS = 4
BASE = dict(k_min=1, k_max=2, mode="combinations", steps=12, seed=7)
SURROGATE = dict(surrogate=True, surrogate_keep=0.3, explore_floor=0.1)


def run(**overrides) -> tuple[dict, float]:
    start = time.perf_counter()
    result = search(WORKLOAD, depths=DEPTHS, config=Config(**BASE, **overrides))
    return result, time.perf_counter() - start


def main() -> int:
    full, full_seconds = run()
    assisted, assisted_seconds = run(**SURROGATE)

    full_evals = full.config["jobs_submitted"]
    assisted_evals = assisted.config["jobs_submitted"]
    reduction = 1.0 - assisted_evals / full_evals
    energy_delta = abs(assisted.best_energy - full.best_energy)

    print(f"full sweep:     {full_evals} evaluations in {full_seconds:.1f}s; "
          f"winner {full.best_tokens} at p={full.best_p} "
          f"(energy {full.best_energy:.6f})")
    print(f"assisted sweep: {assisted_evals} evaluations in "
          f"{assisted_seconds:.1f}s; winner {assisted.best_tokens} at "
          f"p={assisted.best_p} (energy {assisted.best_energy:.6f})")
    print(f"reduction: {reduction:.1%} "
          f"({assisted.config['surrogate_skipped']} candidates skipped); "
          f"|best energy delta| = {energy_delta:.2e}")

    report = {
        "benchmark": "surrogate_search",
        "workload": WORKLOAD,
        "depths": DEPTHS,
        "config": dict(BASE),
        "surrogate": dict(SURROGATE),
        "full_evaluations": full_evals,
        "assisted_evaluations": assisted_evals,
        "eval_reduction": reduction,
        "full_best_energy": full.best_energy,
        "assisted_best_energy": assisted.best_energy,
        "best_energy_delta": energy_delta,
        "full_seconds": full_seconds,
        "assisted_seconds": assisted_seconds,
        "surrogate_kept": assisted.config["surrogate_kept"],
        "surrogate_skipped": assisted.config["surrogate_skipped"],
        "generated_unix": time.time(),
    }
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report -> {OUTPUT}")

    if os.environ.get("QARCH_BENCH_TREND", "enforce") == "off":
        print("surrogate gates skipped (QARCH_BENCH_TREND=off)")
        return 0
    assert reduction >= MIN_EVAL_REDUCTION, (
        f"assisted sweep cut only {reduction:.1%} of real evaluations — "
        f"the surrogate gate requires >= {MIN_EVAL_REDUCTION:.0%}"
    )
    assert energy_delta <= ENERGY_TOLERANCE, (
        f"assisted sweep's best energy drifted {energy_delta:.3g} from the "
        f"full sweep's — pruning lost the winner "
        f"(tolerance {ENERGY_TOLERANCE:g})"
    )
    print("surrogate bench OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
