"""Shared helpers for the figure-regeneration benches.

Each bench runs its experiment driver exactly once under
``benchmark.pedantic`` (the drivers do their own internal repetition per
the paper's protocol), prints the figure's data as an ASCII table/chart,
asserts the paper's qualitative claim, and persists an ExperimentRecord
JSON under ``benchmarks/results/``.

Workload size follows ``QARCH_BENCH_SCALE`` (ci | laptop | paper); see
repro.experiments.scale and EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run an experiment driver once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    def runner(fn):
        return run_once(benchmark, fn)

    return runner
