"""Multi-restart training as one batch on the compiled engine.

Quickstart for the batch-native optimizer stack: train the paper's
winning ``('rx', 'ry')`` mixer with K random restarts where every SPSA
iteration evaluates all 2K +- probes in a *single* vectorized
``energies`` call (compare ``batch_mode="serial"`` — the historical
loop of K independent trainings). The same knobs ride the Evaluator:
``EvaluationConfig(optimizer="spsa", restarts=8, batch_mode="auto")``
trains every candidate of a search this way, and the CLI exposes them as
``--optimizer/--restarts/--batch-mode``.

Run from the repo root::

    PYTHONPATH=src python examples/batched_multi_restart.py
"""

import time

import numpy as np

from repro.core.evaluator import EvaluationConfig, Evaluator
from repro.graphs.datasets import paper_er_dataset
from repro.optimizers import SPSA, MultiRestart
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qaoa.energy import AnsatzEnergy

RESTARTS = 8
P = 2
STEPS = 40

graph = paper_er_dataset(1)[0]
ansatz = build_qaoa_ansatz(graph, P, ("rx", "ry"))
negated = AnsatzEnergy(ansatz, engine="compiled").negative_objective()
seeds = np.random.default_rng(7).uniform(-0.5, 0.5, (RESTARTS, ansatz.num_parameters))

print(f"training {RESTARTS} restarts of ('rx','ry') at p={P} "
      f"on a {graph.num_nodes}-node graph\n")
for mode in ("serial", "batched"):
    optimizer = MultiRestart(SPSA(maxiter=STEPS, seed=0), batch_mode=mode)
    start = time.perf_counter()
    result = optimizer.minimize_population(negated, seeds, batch_fn=negated.values)
    seconds = time.perf_counter() - start
    print(f"{mode:>8}: best <C> = {-result.fun:.4f} "
          f"({result.nfev} trained points, {seconds:.2f}s)")

# The same path through the Evaluator — one config knob:
config = EvaluationConfig(
    optimizer="spsa", max_steps=2 * STEPS, restarts=RESTARTS, batch_mode="auto"
)
evaluation = Evaluator([graph], config).evaluate(("rx", "ry"), P)
print(f"\nEvaluator reward (mean ratio): {evaluation.ratio:.4f} "
      f"in {evaluation.seconds:.2f}s ({evaluation.nfev} evaluations)")
