"""HPC scaling projection: from measured tasks to a Polaris-like cluster.

Measures the real per-candidate training times of a search workload on this
machine, then (1) replays them through the core-count scheduler that
reproduces Fig. 5, and (2) projects the full two-level scheme — graphs
across nodes, gate combinations across cores, optional GPU offload — on a
modelled 4-node Polaris slice (Fig. 2's architecture).

    python examples/cluster_scaling.py
"""

from repro.core.alphabet import GateAlphabet
from repro.core.evaluator import EvaluationConfig
from repro.experiments.figures import render_series, render_table
from repro.experiments.profiling import candidate_bag, measure_candidate_durations
from repro.graphs.datasets import paper_er_dataset
from repro.parallel.cluster import ClusterModel
from repro.parallel.scheduler import OverheadModel, simulate_core_sweep

# --- measure the real task bag --------------------------------------------
graphs = paper_er_dataset(4)
candidates = candidate_bag(GateAlphabet(), 2, 12)
config = EvaluationConfig(max_steps=30, seed=0)
print(f"measuring {len(candidates)} candidates x {len(graphs)} graphs ...")
per_graph_durations = [
    measure_candidate_durations(g, 2, candidates, config) for g in graphs
]
flat = [d for ds in per_graph_durations for d in ds]
print(f"measured {len(flat)} tasks, total serial time {sum(flat):.1f}s\n")

# --- Fig. 5-style single-node core sweep -----------------------------------
core_counts = [8, 16, 24, 32, 40, 48, 56, 64]
overhead = OverheadModel(worker_startup=0.15, dispatch_per_task=0.002)
sweep = simulate_core_sweep(flat, core_counts, overhead=overhead)
print("single node, cores swept (replayed measured durations):")
print(
    render_series(
        "cores",
        core_counts,
        {
            "makespan (s)": [r.makespan for r in sweep],
            "speedup": [sum(flat) / r.makespan for r in sweep],
            "utilization": [r.utilization for r in sweep],
        },
    )
)

# --- two-level Polaris projection --------------------------------------------
print("\ntwo-level schedule on a modelled 4-node Polaris slice:")
cluster = ClusterModel.polaris(num_nodes=4)
rows = []
for use_gpus in (False, True):
    result = cluster.schedule_two_level(per_graph_durations, use_gpus=use_gpus)
    rows.append([
        "CPU+GPU offload" if use_gpus else "CPU only",
        result.makespan,
        result.imbalance,
    ])
print(render_table(["configuration", "makespan (s)", "node imbalance"], rows))
print("\n(graphs spread across nodes; each node fans its gate combinations "
      "over 32 cores; GPU rows model 8x offload on the four A100s)")
