"""DNN-predictor search: the Fig. 1 loop with the LSTM/REINFORCE controller.

The released paper evaluates random search; its architecture and §4 roadmap
specify a neural predictor trained by reward propagation. This example runs
that loop: the controller proposes gate sequences, the Evaluator trains and
scores each on max-cut QAOA, and the rewards update the policy. Prints the
reward curve and the controller's final greedy architecture.

    python examples/controller_search.py
"""

import numpy as np

from repro.core.alphabet import GateAlphabet
from repro.core.controller import ControllerPredictor, PolicyController
from repro.core.evaluator import EvaluationConfig, Evaluator
from repro.graphs.datasets import paper_er_dataset

ROUNDS = 12
BATCH = 8

graphs = paper_er_dataset(2)
alphabet = GateAlphabet()
evaluator = Evaluator(
    graphs,
    EvaluationConfig(max_steps=40, seed=0, metric="best_sampled", shots=64),
)
controller = PolicyController(
    alphabet, max_gates=3, seed=0, learning_rate=0.05, hidden_dim=32
)
predictor = ControllerPredictor(
    controller, batch_size=BATCH, entropy_weight=0.01, seed=0
)

print(f"searching sequences of up to 3 gates from {alphabet.tokens}")
print(f"reward: mean best-of-64-shots ratio on {len(graphs)} ER graphs\n")

best_reward, best_tokens = 0.0, None
for round_index in range(ROUNDS):
    proposals = predictor.propose(BATCH)
    rewards = []
    for tokens in proposals:
        reward = evaluator.reward(tokens, p=1)
        predictor.update(tuple(tokens), reward)
        rewards.append(reward)
        if reward > best_reward:
            best_reward, best_tokens = reward, tuple(tokens)
    bar = "#" * int(np.mean(rewards) * 40)
    print(f"round {round_index + 1:2d}  mean {np.mean(rewards):.4f}  "
          f"best {best_reward:.4f}  {bar}")

print(f"\nbest architecture found: {best_tokens} (reward {best_reward:.4f})")
print(f"controller's greedy decode: {controller.greedy_episode()}")
print(f"evaluations saved by caching: {evaluator.cache_hits}")
