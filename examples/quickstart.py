"""Quickstart: search for a QAOA mixer on a small max-cut workload.

Runs Algorithm 1 over all two-gate mixer combinations on three 10-node
Erdős–Rényi graphs via the stable :mod:`repro.api` facade, prints the
ranking, and draws the winning circuit. Takes under a minute on a laptop.

    python examples/quickstart.py
"""

from repro import Config, search
from repro.experiments.discovery import draw_mixer

# 1. Configure the sweep: two-gate mixer combinations, COBYLA training,
#    reward = expected best cut of 64 measurements. One flat Config covers
#    candidate space, training, and execution (repro.api documents every
#    field); the deep SearchConfig/EvaluationConfig route still exists
#    for code that composes the internals directly.
config = Config(
    k_min=2,
    k_max=2,
    mode="combinations",
    steps=60,
    restarts=2,
    seed=0,
    metric="best_sampled",
    shots=64,
)

# 2. Run depths p=1..2 on "er:3" — three 10-node ER graphs from the
#    paper's seeded dataset family (serial here; Config(workers=-1) or
#    examples/search_maxcut_mixer.py for parallel).
result = search("er:3", depths=2, config=config)

print(f"evaluated {result.num_candidates} candidates "
      f"in {result.total_seconds:.1f}s")
print(f"best mixer: {result.best_tokens} at p={result.best_p} "
      f"(approximation ratio {result.best_ratio:.4f})")

print("\np=1 ranking:")
for evaluation in result.depth_results[0].ranked():
    print(f"  {evaluation.tokens}: {evaluation.ratio:.4f}")

print("\nwinning mixer on 10 qubits:")
print(draw_mixer(result.best_tokens, 10))
