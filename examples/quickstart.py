"""Quickstart: search for a QAOA mixer on a small max-cut workload.

Runs Algorithm 1 over all two-gate mixer combinations on three 10-node
Erdős–Rényi graphs, prints the ranking, and draws the winning circuit.
Takes under a minute on a laptop.

    python examples/quickstart.py
"""

from repro import EvaluationConfig, SearchConfig, paper_er_dataset, search_mixer
from repro.experiments.discovery import draw_mixer

# 1. A workload: three 10-node ER graphs from the paper's dataset family.
graphs = paper_er_dataset(3)
print(f"workload: {len(graphs)} graphs, "
      f"{[g.num_edges for g in graphs]} edges each")

# 2. Configure Algorithm 1: depths p=1..2, two-gate mixer combinations,
#    COBYLA training, reward = expected best cut of 64 measurements.
config = SearchConfig(
    p_max=2,
    k_min=2,
    k_max=2,
    mode="combinations",
    evaluation=EvaluationConfig(
        max_steps=60, restarts=2, seed=0, metric="best_sampled", shots=64
    ),
)

# 3. Run the search (serial here; see search_maxcut_mixer.py for parallel).
result = search_mixer(graphs, config)

print(f"\nevaluated {result.num_candidates} candidates "
      f"in {result.total_seconds:.1f}s")
print(f"best mixer: {result.best_tokens} at p={result.best_p} "
      f"(approximation ratio {result.best_ratio:.4f})")

print("\np=1 ranking:")
for evaluation in result.depth_results[0].ranked():
    print(f"  {evaluation.tokens}: {evaluation.ratio:.4f}")

print("\nwinning mixer on 10 qubits:")
print(draw_mixer(result.best_tokens, 10))
