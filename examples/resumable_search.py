"""Fault-tolerant, resumable search with a persistent result cache.

Runs the same search twice through the SearchRuntime substrate: the first
(cold) run trains every candidate and persists each result + a per-depth
checkpoint under ``cache_dir``; the second (warm) run is served entirely
from the cache — zero trainings, identical winner. Kill the script partway
through the cold run and re-run it to see checkpoint resume in action.

    python examples/resumable_search.py

Equivalent CLI:

    python -m repro search --cache-dir /tmp/qarch-cache --resume ...
"""

import tempfile
import time

from repro import EvaluationConfig, RuntimeConfig, SearchConfig, paper_er_dataset, search_mixer

graphs = paper_er_dataset(2)
config = SearchConfig(
    p_max=2,
    k_min=2,
    k_max=2,
    mode="combinations",
    evaluation=EvaluationConfig(max_steps=40, seed=0),
)

with tempfile.TemporaryDirectory() as cache_dir:
    # Persistent cache + checkpointing + per-job retry, all via RuntimeConfig.
    # (job_timeout would also abandon + resubmit pathological candidates,
    # but only with a parallel executor — serial jobs run inline.)
    runtime = RuntimeConfig(
        cache_dir=cache_dir,  # results + checkpoint live here
        resume=True,          # restore any finished depths on restart
        max_retries=2,        # tolerate transient worker failures
    )

    start = time.perf_counter()
    cold = search_mixer(graphs, config, runtime=runtime)
    print(f"cold run: {cold.num_candidates} candidates trained in "
          f"{time.perf_counter() - start:.1f}s -> "
          f"{cold.best_tokens} at p={cold.best_p} (ratio {cold.best_ratio:.4f})")

    start = time.perf_counter()
    warm = search_mixer(graphs, config, runtime=runtime)
    print(f"warm run: {warm.config['restored_depths']} depths restored from "
          f"checkpoint in {time.perf_counter() - start:.2f}s "
          f"({warm.config['jobs_submitted']} jobs submitted)")

    assert warm.best_tokens == cold.best_tokens
    print("identical winner — repeat sweeps are free")
