"""Full QArchSearch workflow: parallel mixer search for max-cut QAOA.

The paper's driver application end to end — dataset generation, Algorithm 1
over the rotation-gate alphabet with process-level parallelism
(starmap_async), evaluation of the winner on a held-out dataset, and a
persisted JSON result.

    python examples/search_maxcut_mixer.py --graphs 5 --p-max 2 \
        --k-max 2 --steps 60 --workers 2 --out search_result.json
"""

from __future__ import annotations

import argparse

from repro import EvaluationConfig, Evaluator, SearchConfig, search_mixer
from repro.experiments.discovery import draw_mixer
from repro.experiments.figures import render_table
from repro.graphs.datasets import paper_er_dataset, paper_regular_dataset
from repro.parallel.executor import MultiprocessingExecutor, available_cores


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--graphs", type=int, default=5, help="training graphs")
    parser.add_argument("--p-max", type=int, default=2, help="maximum QAOA depth")
    parser.add_argument("--k-min", type=int, default=2, help="minimum mixer gates")
    parser.add_argument("--k-max", type=int, default=2, help="maximum mixer gates")
    parser.add_argument("--mode", default="combinations",
                        choices=["combinations", "sequences", "permutations"])
    parser.add_argument("--steps", type=int, default=60, help="COBYLA budget")
    parser.add_argument("--shots", type=int, default=64,
                        help="measurement budget for the Eq. 3 reward")
    parser.add_argument("--workers", type=int, default=available_cores())
    parser.add_argument("--out", default=None, help="save SearchResult JSON here")
    args = parser.parse_args()

    train = paper_er_dataset(args.graphs)
    held_out = paper_regular_dataset(args.graphs)
    config = SearchConfig(
        p_max=args.p_max,
        k_min=args.k_min,
        k_max=args.k_max,
        mode=args.mode,
        evaluation=EvaluationConfig(
            max_steps=args.steps, restarts=2, seed=0,
            metric="best_sampled", shots=args.shots,
        ),
    )

    print(f"searching with {args.workers} workers "
          f"({config.mode}, k={args.k_min}..{args.k_max}, p<=by {args.p_max})")
    with MultiprocessingExecutor(args.workers) as executor:
        result = search_mixer(train, config, executor=executor)

    print(f"\n{result.num_candidates} candidates in {result.total_seconds:.1f}s")
    rows = [
        [d.p, d.best.tokens, d.best.ratio, f"{d.seconds:.1f}s"]
        for d in result.depth_results
    ]
    print(render_table(["p", "best mixer", "ratio", "time"], rows))
    print(f"\noverall winner: {result.best_tokens} "
          f"(p={result.best_p}, ratio={result.best_ratio:.4f})")
    print(draw_mixer(result.best_tokens, train[0].num_nodes))

    # Generalization check (§3.2): score the winner on unseen 4-regular graphs.
    evaluator = Evaluator(held_out, config.evaluation)
    transfer = evaluator.evaluate(result.best_tokens, result.best_p)
    baseline = evaluator.evaluate(("rx",), result.best_p)
    print(f"\nheld-out 4-regular graphs: winner ratio {transfer.ratio:.4f}, "
          f"baseline RX mixer {baseline.ratio:.4f}")

    if args.out:
        result.save(args.out)
        print(f"saved search result to {args.out}")


if __name__ == "__main__":
    main()
