"""Submit sweeps to a running search service and share its cache.

The service (``python -m repro serve``) multiplexes many sweeps over one
worker fleet and one multi-tenant result cache, so two clients sweeping
the same workload each pay for only part of it. This example starts a
service in-process (so it is runnable standalone), submits the same
sweep twice concurrently, and shows the cross-sweep cache accounting.

Against a real deployment you only need the client half:

    from repro import connect, Config
    client = connect("http://localhost:8787")
    job_id = client.submit("er:3", depths=2, config=Config(k_max=2))
    result = client.wait(job_id)

    python examples/service_client.py
"""

import tempfile
import threading

from repro import Config, connect
from repro.service import SearchService, make_http_server

config = Config(k_min=2, k_max=2, steps=20, num_samples=6, seed=0)

with tempfile.TemporaryDirectory() as state_dir:
    # Stand-in for `python -m repro serve --dir <state_dir>`.
    service = SearchService(state_dir, max_concurrent=2, workers=2)
    server = make_http_server(service)  # port 0 = pick a free one
    host, port = server.server_address[:2]
    threading.Thread(target=server.serve_forever, daemon=True).start()

    with service:
        client = connect(f"http://{host}:{port}")
        print("service:", client.healthz()["executor"], "executor")

        # Two identical sweeps land in the queue together; the multiplexer
        # runs both at once over the shared fleet. Every candidate is
        # trained exactly once: whichever sweep claims it first pays, the
        # other collects a cache hit.
        first = client.submit("er:2", depths=1, config=config)
        second = client.submit("er:2", depths=1, config=config)

        results = [client.wait(job_id) for job_id in (first, second)]
        for job_id, result in zip((first, second), results):
            print(f"job {job_id}: best {result.best_tokens} "
                  f"(ratio {result.best_ratio:.4f}; "
                  f"{result.config['cache_hits']} cache hits, "
                  f"{result.config['cache_misses']} misses)")

        assert results[0].best_energy == results[1].best_energy
        shared = sum(r.config["cache_hits"] for r in results)
        print(f"candidates trained once and shared across sweeps: {shared}")

    server.shutdown()
    server.server_close()
