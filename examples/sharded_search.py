"""Sharded depth sweeps with dead-shard migration (Fig. 2's outer level).

Runs one search three ways on the same workload/seed:

1. single-node baseline (one scheduler, one executor);
2. sharded across 3 shards — candidate bags are partitioned by predicted
   cost (greedy least-loaded, the ClusterModel placement rule) and each
   shard drains its own JobScheduler;
3. sharded with one shard rigged to die mid-depth — its unfinished
   candidates migrate to the survivors and the result is unchanged.

All three produce the *identical* SearchResult: sharding changes where
work runs, never what it computes.

    python examples/sharded_search.py

Equivalent CLI (in-process shards, one worker pool per shard):

    python -m repro search --shards 3 --workers -1 ...

Real multi-process sharding launches one process per shard against a
shared cache, then merges:

    python -m repro search --shards 3 --shard-index 0 --cache-dir /tmp/qa &
    python -m repro search --shards 3 --shard-index 1 --cache-dir /tmp/qa &
    python -m repro search --shards 3 --shard-index 2 --cache-dir /tmp/qa &
    wait
    python -m repro search --cache-dir /tmp/qa   # merge: pure cache hits
"""

from repro import EvaluationConfig, RuntimeConfig, SearchConfig, paper_er_dataset, search_mixer
from repro.parallel.executor import SerialExecutor

graphs = paper_er_dataset(2)
config = SearchConfig(
    p_max=2,
    k_min=1,
    k_max=2,
    mode="combinations",
    evaluation=EvaluationConfig(max_steps=30, seed=0),
)

single = search_mixer(graphs, config)
print(f"single node: {single.num_candidates} candidates -> "
      f"{single.best_tokens} at p={single.best_p} (ratio {single.best_ratio:.4f})")

sharded = search_mixer(graphs, config, runtime=RuntimeConfig(shards=3))
print(f"3 shards:    jobs per shard merged to "
      f"{sharded.config['jobs_submitted']} submissions -> "
      f"{sharded.best_tokens} (identical: "
      f"{sharded.best_energy == single.best_energy})")


class DiesMidDepth(SerialExecutor):
    """A 'node' that becomes unreachable after its third job."""

    def __init__(self):
        self.count = 0

    def submit(self, fn, *args):
        self.count += 1
        if self.count > 3:
            raise RuntimeError("node unreachable")
        return super().submit(fn, *args)


survivors = [DiesMidDepth(), SerialExecutor(), SerialExecutor()]
failed = search_mixer(
    graphs, config, executor=survivors, runtime=RuntimeConfig(shards=3)
)
print(f"shard 0 died: {failed.config['jobs_migrated']} candidates migrated to "
      f"shards {sorted(set(range(3)) - set(failed.config['dead_shards']))} -> "
      f"{failed.best_tokens} (identical: "
      f"{failed.best_energy == single.best_energy})")

assert sharded.best_energy == single.best_energy
assert failed.best_energy == single.best_energy
print("sharding changes where work runs, never what it computes")
