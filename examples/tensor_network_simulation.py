"""Tensor-network simulation tour: the QTensor-style engine under the hood.

Walks through what happens when QArchSearch evaluates a candidate on a
graph too large for dense simulation: lightcone pruning per edge,
contraction-order search, bucket elimination, and variable slicing. Ends
with a 24-qubit QAOA energy evaluation that a dense simulator would need a
256 MB state vector for.

    python examples/tensor_network_simulation.py
"""

import time

import numpy as np

from repro.graphs.generators import random_regular_graph
from repro.qaoa.analytic import maxcut_energy_p1
from repro.qaoa.ansatz import build_qaoa_ansatz
from repro.qtensor import (
    QTensorSimulator,
    TensorNetwork,
    choose_slice_vars,
    contract_network,
    contract_sliced,
    interaction_graph,
    lightcone_circuit,
    min_fill_order,
    random_order,
)

# --- 1. a QAOA circuit on a 24-node graph --------------------------------
graph = random_regular_graph(24, 3, seed=11)
ansatz = build_qaoa_ansatz(graph, 1, ("rx", "ry"))
bound = ansatz.bind([0.45, -0.6])
print(f"circuit: {bound.num_qubits} qubits, {bound.size()} gates, "
      f"depth {bound.depth()}")

# --- 2. lightcone pruning for one edge observable -------------------------
u, v = graph.edges[0]
cone = lightcone_circuit(bound, [u, v])
print(f"\nlightcone of edge ({u},{v}): {cone.size()} of {bound.size()} gates survive")

# --- 3. contraction-order quality ------------------------------------------
net = TensorNetwork.expectation(
    cone, [((u, v), np.array([0, 1, 1, 0], dtype=complex))], initial_state="0"
)
g = interaction_graph(net.tensors)
fill = min_fill_order(g)
rand = random_order(g, seed=0)
print(f"min-fill order: width {fill.width} (cost ~2^{fill.log2_cost:.1f})")
print(f"random order:   width {rand.width} (cost ~2^{rand.log2_cost:.1f})")

# --- 4. full energy via per-edge contractions --------------------------------
sim = QTensorSimulator()
start = time.perf_counter()
energy = sim.maxcut_energy(bound, graph, initial_state="0")
elapsed = time.perf_counter() - start
print(f"\n<C> over all {graph.num_edges} edges: {energy:.6f} "
      f"({elapsed * 1e3:.1f} ms, max width {max(sim.last_widths)})")

# exactness check against the p=1 closed form (valid for the plain RX mixer)
baseline = build_qaoa_ansatz(graph, 1, ("rx",)).bind([0.45, -0.6])
tn_baseline = sim.maxcut_energy(baseline, graph, initial_state="0")
closed_form = maxcut_energy_p1(graph, 0.45, -0.6)
print(f"RX-mixer energy, tensor net:  {tn_baseline:.6f}")
print(f"RX-mixer energy, closed form: {closed_form:.6f} "
      f"(match: {abs(tn_baseline - closed_form) < 1e-8})")

# --- 5. slicing: split one contraction into independent pieces ----------------
amp_net = TensorNetwork.from_circuit(bound, output_bitstring=0)
direct = complex(contract_network(amp_net))
slice_vars = choose_slice_vars(amp_net.tensors, 2)
sliced = contract_sliced(amp_net, slice_vars)
print(f"\namplitude <0...0|psi>: direct {direct:.3e}")
print(f"sliced over {len(slice_vars)} vars (4 pieces): {sliced:.3e} "
      f"(match: {abs(direct - sliced) < 1e-12})")
