"""Ansatz search beyond max-cut: VQE on the transverse-field Ising model.

QArchSearch's pitch is task-agnostic architecture search ("the best model
given a task and input quantum state"). This example points the same
searched token sequences at a different task: finding a ground-state ansatz
for the TFIM chain, with constraints (§6) pruning candidates that cannot
train.

    python examples/vqe_ansatz_search.py
"""

from repro.core.alphabet import GateAlphabet, enumerate_search_space
from repro.core.constraints import ConstraintSet, NoAdjacentRepeats, RequiresParameterizedGate
from repro.experiments.figures import render_table
from repro.qaoa.observables import tfim_hamiltonian
from repro.qaoa.vqe import search_vqe_ansatz

N_QUBITS = 6
LAYERS = 3

hamiltonian = tfim_hamiltonian(N_QUBITS, j=1.0, h=1.0)
exact = hamiltonian.ground_energy()
print(f"TFIM chain: {N_QUBITS} qubits, J=h=1, exact ground energy {exact:.6f}")

# candidate blocks: every 1- or 2-gate sequence that (a) contains a
# trainable rotation and (b) doesn't waste its budget on adjacent repeats
alphabet = GateAlphabet(("rx", "ry", "rz", "h"))
constraints = ConstraintSet([RequiresParameterizedGate(), NoAdjacentRepeats()])
candidates = constraints.filter(
    enumerate_search_space(alphabet, 2, mode="sequences")
)
print(f"{len(candidates)} admissible candidate blocks "
      f"(constraints rejected {sum(constraints.rejections.values())})")

print(f"\ntraining each as a {LAYERS}-layer entangling ansatz (COBYLA) ...")
ranking = search_vqe_ansatz(
    hamiltonian, candidates, layers=LAYERS, optimizer_steps=150, restarts=2
)

rows = [
    [str(r.tokens), r.energy, r.error, r.nfev]
    for r in ranking[:8]
]
print(render_table(["ansatz block", "energy", "error", "evals"], rows))

best = ranking[0]
print(f"\nbest block: {best.tokens} -> energy {best.energy:.6f} "
      f"({best.error:.4f} above exact ground state)")
print(f"worst block: {ranking[-1].tokens} ({ranking[-1].error:.4f} above)")
