#!/usr/bin/env python
"""Emit the machine-readable evaluator throughput report, gated on trend.

Measures per-engine energy-evaluation throughput (evals/sec) on the paper
workload — a 10-qubit ER graph at p=4 with the winning ``('rx', 'ry')``
mixer — the compiled engine's throughput per registered *array backend*
(numpy / mock_gpu / cupy-when-installed, so GPU trajectories accrue in
the same artifact), per registered *workload* (maxcut / wmaxcut / maxsat /
ising — each problem's phase diagonal costs differently), plus the
batched-optimizer path (one vectorized ``energies`` call over a restart
population's probes), and writes
``benchmarks/results/BENCH_evaluator.json`` so the perf trajectory is
tracked as a committed artifact, run by run, instead of living in bench
stdout. Each passing run also appends a compact per-commit row under
``benchmarks/results/history/`` (keyed by ``git rev-parse --short HEAD``)
so the trajectory survives artifact rewrites.

Run from the repo root (CI's bench-smoke job does)::

    python scripts/bench_report.py

Exits non-zero if

* the compiled engine is not at least as fast as the dense statevector
  engine (the floor that keeps the default fast path from silently
  regressing below the oracle it replaced), or
* compiled per-eval throughput (normalized by the same run's statevector
  oracle, so machine speed cancels) regressed more than
  ``MAX_REGRESSION_FRACTION`` against the *committed* report — the
  perf-trend gate, or
* any workload's throughput trajectory fitted across the accrued
  ``history/`` rows (normalized per row by its statevector oracle)
  declines more than ``MAX_SLOPE_DECLINE_FRACTION`` end to end — the
  slope gate, which catches slow bleeds the single-baseline cliff gate
  cannot. Set ``QARCH_BENCH_TREND=off`` to skip both trend gates; the
  committed artifact is only rewritten when the gates pass.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_SRC = "src"
sys.path.insert(0, REPO_SRC)

import numpy as np  # noqa: E402

from repro.experiments.scale import (  # noqa: E402
    measure_array_backends,
    paper_probe_workload,
    seconds_per_eval,
)
from repro.optimizers import SPSA  # noqa: E402
from repro.qaoa.ansatz import build_qaoa_ansatz  # noqa: E402
from repro.qaoa.energy import ENGINES, AnsatzEnergy  # noqa: E402
from repro.workloads import available_workloads, get_workload  # noqa: E402

OUTPUT = Path("benchmarks/results/BENCH_evaluator.json")
HISTORY_DIR = Path("benchmarks/results/history")

#: per-workload throughput probe: smaller than the engine probe (p=2, and
#: one sample per registered problem) so the report stays CI-cheap
WORKLOAD_TIMED_EVALS = 60
WORKLOAD_P = 2

TIMED_EVALS = 150
#: qtensor is contraction-per-edge and orders of magnitude slower here;
#: keep its sample small so the report stays CI-cheap
TIMED_EVALS_SLOW = 5
#: batched-path sample: restarts in the probe population / SPSA steps
BATCH_RESTARTS = 8
BATCH_ITERS = 40
#: trend gate: fail when fresh compiled per-eval throughput drops more
#: than this fraction below the committed baseline
MAX_REGRESSION_FRACTION = 0.30
#: slope gate: fail when a workload's fitted throughput trajectory across
#: the history rows declines more than this fraction end to end
MAX_SLOPE_DECLINE_FRACTION = 0.30
#: slope gate activates once this many history rows carry a workload's
#: series (a line through two points is noise, not a trend)
MIN_TREND_ROWS = 3
#: slope gate window: only the most recent rows count, so one ancient
#: outlier can't dominate the fit forever
TREND_WINDOW = 10


def measure(engine: str, ansatz, x: np.ndarray) -> dict:
    energy = AnsatzEnergy(ansatz, engine=engine)
    value = energy.value(x)
    rounds = TIMED_EVALS_SLOW if engine == "qtensor" else TIMED_EVALS
    seconds = seconds_per_eval(energy, x, rounds)
    return {
        "seconds_per_eval": seconds,
        "evals_per_sec": 1.0 / seconds,
        "timed_evals": rounds,
        "energy_at_probe": value,
    }


def measure_workloads() -> dict:
    """Compiled-engine throughput per registered workload.

    Each problem contributes one 10-node instance from its own dataset
    family at p=WORKLOAD_P with the winning mixer; the phase diagonal is
    the only thing that differs, so these rows track the per-workload
    cost of the table builders (weighted cuts, clause tables, couplings)
    relative to the paper's MaxCut.
    """
    rows = {}
    for key in available_workloads():
        problem = get_workload(key)
        graph = problem.dataset(1, num_nodes=10, dataset_seed=7)[0]
        ansatz = build_qaoa_ansatz(graph, WORKLOAD_P, ("rx", "ry"), workload=key)
        energy = AnsatzEnergy(ansatz, engine="compiled")
        x = np.random.default_rng(0).uniform(-1.0, 1.0, ansatz.num_parameters)
        seconds = seconds_per_eval(energy, x, WORKLOAD_TIMED_EVALS)
        rows[key] = {
            "seconds_per_eval": seconds,
            "evals_per_sec": 1.0 / seconds,
            "timed_evals": WORKLOAD_TIMED_EVALS,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "p": WORKLOAD_P,
            "energy_at_probe": energy.value(x),
        }
    return rows


def append_history(report: dict) -> Path:
    """Write the compact per-commit row under ``benchmarks/results/history/``.

    One small JSON file per commit (short hash in the name, rewritten on
    re-runs of the same commit) holding just the headline numbers, so the
    throughput trajectory accrues across commits even though the main
    artifact is rewritten in place each run.
    """
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        commit = "uncommitted"
    row = {
        "commit": commit,
        "generated_unix": report["generated_unix"],
        "compiled_vs_statevector_speedup": report[
            "compiled_vs_statevector_speedup"
        ],
        "compiled_evals_per_sec": report["engines"]["compiled"]["evals_per_sec"],
        "statevector_evals_per_sec": report["engines"]["statevector"][
            "evals_per_sec"
        ],
        "batched_vs_serial_speedup": report["batched_optimizer"][
            "batched_vs_serial_speedup"
        ],
        "workload_evals_per_sec": {
            key: entry["evals_per_sec"]
            for key, entry in report["workloads"].items()
        },
        "machine": report["machine"],
        "python": report["python"],
    }
    HISTORY_DIR.mkdir(parents=True, exist_ok=True)
    path = HISTORY_DIR / f"{commit}.json"
    path.write_text(json.dumps(row, indent=2) + "\n")
    return path


def measure_batched_optimizer(ansatz) -> dict:
    """Points/sec of batched vs serial multi-restart SPSA (the optimizer
    stack's fast path vs the loop-per-point path it replaced), through the
    gate bench's shared timing harness at a smaller CI-cheap budget."""
    sys.path.insert(0, "benchmarks")
    from bench_batched_optimizers import time_multi_restart

    negated = AnsatzEnergy(ansatz, engine="compiled").negative_objective()
    X0 = np.random.default_rng(11).uniform(
        -0.5, 0.5, (BATCH_RESTARTS, ansatz.num_parameters)
    )
    negated.values(X0)  # warm lazy lookups off-clock
    rows = {}
    for mode in ("serial", "batched"):
        timed = time_multi_restart(
            SPSA(maxiter=BATCH_ITERS, seed=0), negated, X0,
            batch_mode=mode, repeats=1,
        )
        rows[mode] = {
            "seconds": timed["seconds"],
            "trained_points": timed["nfev"],
            "points_per_sec": timed["points_per_sec"],
        }
    rows["batched_vs_serial_speedup"] = (
        rows["serial"]["seconds"] / rows["batched"]["seconds"]
    )
    rows["restarts"] = BATCH_RESTARTS
    rows["spsa_iters"] = BATCH_ITERS
    return rows


def check_trend(engines: dict) -> str:
    """Compare against the committed baseline; raise on deep regression.

    The gated quantity is compiled throughput *normalized by the same
    run's statevector throughput* — a pure code-speed ratio. Comparing
    raw evals/sec across the committing machine and a CI runner would
    gate hardware, not code: any runner 30% slower than the dev box would
    fail with zero code change. The oracle engine is untouched by fast-
    path work, so the ratio cancels machine speed while still catching
    real compiled-path regressions against the committed report.
    """
    if os.environ.get("QARCH_BENCH_TREND", "enforce") == "off":
        return "trend gate skipped (QARCH_BENCH_TREND=off)"
    if not OUTPUT.exists():
        return "no committed baseline; trend gate skipped"
    baseline = json.loads(OUTPUT.read_text())
    base_engines = baseline.get("engines", {})
    try:
        base_ratio = (
            base_engines["compiled"]["evals_per_sec"]
            / base_engines["statevector"]["evals_per_sec"]
        )
    except (KeyError, ZeroDivisionError):
        return "committed baseline lacks engine throughputs; trend skipped"
    fresh_ratio = (
        engines["compiled"]["evals_per_sec"]
        / engines["statevector"]["evals_per_sec"]
    )
    change = (fresh_ratio - base_ratio) / base_ratio
    message = (
        f"compiled/statevector throughput ratio {fresh_ratio:.1f} vs "
        f"committed {base_ratio:.1f} ({change:+.1%})"
    )
    assert change >= -MAX_REGRESSION_FRACTION, (
        f"{message} — regression exceeds the "
        f"{MAX_REGRESSION_FRACTION:.0%} trend gate"
    )
    return message


def check_history_trend(report: dict) -> str:
    """Fit per-workload throughput slopes across the history rows.

    The cliff gate (``check_trend``) only sees the committed artifact —
    one sample — so a sequence of small regressions, each inside the 30%
    tolerance, can compound unchecked as the artifact ratchets downward.
    This gate reads the accrued per-commit rows under ``history/``, fits
    a least-squares line through each workload's normalized throughput
    (workload evals/sec divided by the same row's statevector evals/sec,
    so machine speed cancels row by row), and fails when the fitted line
    declines more than ``MAX_SLOPE_DECLINE_FRACTION`` end to end across
    the window — a slow bleed the cliff gate cannot see.
    """
    if os.environ.get("QARCH_BENCH_TREND", "enforce") == "off":
        return "history slope gate skipped (QARCH_BENCH_TREND=off)"
    rows = []
    for path in sorted(HISTORY_DIR.glob("*.json")):
        try:
            row = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if "workload_evals_per_sec" in row and row.get(
            "statevector_evals_per_sec"
        ):
            rows.append(row)
    rows.sort(key=lambda row: row.get("generated_unix", 0.0))
    # the fresh (not-yet-committed) run is the newest point on every line
    fresh = {
        "generated_unix": report["generated_unix"],
        "statevector_evals_per_sec": report["engines"]["statevector"][
            "evals_per_sec"
        ],
        "workload_evals_per_sec": {
            key: entry["evals_per_sec"]
            for key, entry in report["workloads"].items()
        },
    }
    rows = rows[-(TREND_WINDOW - 1):] + [fresh]
    if len(rows) < MIN_TREND_ROWS:
        return (
            f"history slope gate inactive ({len(rows)} rows, "
            f"needs {MIN_TREND_ROWS})"
        )
    lines = []
    for key in sorted(fresh["workload_evals_per_sec"]):
        series = [
            (
                row["generated_unix"],
                row["workload_evals_per_sec"][key]
                / row["statevector_evals_per_sec"],
            )
            for row in rows
            if key in row.get("workload_evals_per_sec", {})
        ]
        if len(series) < MIN_TREND_ROWS:
            continue
        xs = np.array([point[0] for point in series])
        ys = np.array([point[1] for point in series])
        slope, intercept = np.polyfit(xs - xs[0], ys, 1)
        start = intercept
        end = intercept + slope * (xs[-1] - xs[0])
        decline = (start - end) / start if start > 0 else 0.0
        lines.append(f"{key}: fitted {start:.2f} -> {end:.2f} ({-decline:+.1%})")
        assert decline <= MAX_SLOPE_DECLINE_FRACTION, (
            f"workload {key!r} throughput trend declined {decline:.1%} "
            f"across {len(series)} history rows — exceeds the "
            f"{MAX_SLOPE_DECLINE_FRACTION:.0%} slope gate"
        )
    return "history slope gate: " + "; ".join(lines)


def main() -> int:
    graph, ansatz, x = paper_probe_workload()

    engines = {engine: measure(engine, ansatz, x) for engine in ENGINES}
    speedup = (
        engines["statevector"]["seconds_per_eval"]
        / engines["compiled"]["seconds_per_eval"]
    )
    for engine, row in engines.items():
        print(f"{engine:>12}: {row['evals_per_sec']:10.1f} evals/s")

    # Per-array-backend axis (the GPU trajectory): the shared harness
    # asserts cross-backend equivalence at the probe point.
    array_backends = measure_array_backends(ansatz, x, TIMED_EVALS)
    for name, row in array_backends.items():
        print(f"{'compiled[' + name + ']':>22}: {row['evals_per_sec']:10.1f} evals/s")
        backend_drift = abs(
            row["energy_at_probe"] - engines["compiled"]["energy_at_probe"]
        )
        assert backend_drift < 1e-10, (
            f"array backend {name!r} disagrees with the engine row's "
            f"probe energy ({backend_drift:.3g})"
        )

    workloads = measure_workloads()
    for key, row in workloads.items():
        print(f"{'workload[' + key + ']':>22}: {row['evals_per_sec']:10.1f} evals/s")

    batched = measure_batched_optimizer(ansatz)
    print(
        f"batched multi-restart SPSA: "
        f"{batched['batched']['points_per_sec']:10.1f} points/s "
        f"({batched['batched_vs_serial_speedup']:.1f}x over serial)"
    )

    # Gate before writing: a failing run must not overwrite the committed
    # trajectory artifact with a broken engine's numbers.
    drift = abs(
        engines["compiled"]["energy_at_probe"]
        - engines["statevector"]["energy_at_probe"]
    )
    assert drift < 1e-10, f"engines disagree at the probe point ({drift:.3g})"
    assert speedup >= 1.0, (
        f"compiled engine slower than statevector ({speedup:.2f}x) — "
        "the default fast path has regressed"
    )
    print(check_trend(engines))

    report = {
        "benchmark": "evaluator_throughput",
        "workload": {
            "num_nodes": graph.num_nodes,
            "p": ansatz.p,
            "tokens": list(ansatz.mixer_tokens),
            "num_edges": graph.num_edges,
        },
        "engines": engines,
        "array_backends": array_backends,
        "workloads": workloads,
        "compiled_vs_statevector_speedup": speedup,
        "batched_optimizer": batched,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated_unix": time.time(),
    }
    print(check_history_trend(report))
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    history_path = append_history(report)
    print(f"compiled vs statevector: {speedup:.1f}x  ->  {OUTPUT}")
    print(f"history row -> {history_path}")
    print("bench report OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
