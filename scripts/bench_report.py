#!/usr/bin/env python
"""Emit the machine-readable evaluator throughput report.

Measures per-engine energy-evaluation throughput (evals/sec) on the paper
workload — a 10-qubit ER graph at p=4 with the winning ``('rx', 'ry')``
mixer — and writes ``benchmarks/results/BENCH_evaluator.json`` so the
perf trajectory is tracked as a committed artifact, run by run, instead
of living in bench stdout.

Run from the repo root (CI's bench-smoke job does)::

    python scripts/bench_report.py

Exits non-zero if the compiled engine is not at least as fast as the
dense statevector engine — the floor that keeps the default fast path
from silently regressing below the oracle it replaced.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

REPO_SRC = "src"
sys.path.insert(0, REPO_SRC)

import numpy as np  # noqa: E402

from repro.experiments.scale import paper_probe_workload, seconds_per_eval  # noqa: E402
from repro.qaoa.energy import ENGINES, AnsatzEnergy  # noqa: E402

OUTPUT = Path("benchmarks/results/BENCH_evaluator.json")

TIMED_EVALS = 150
#: qtensor is contraction-per-edge and orders of magnitude slower here;
#: keep its sample small so the report stays CI-cheap
TIMED_EVALS_SLOW = 5


def measure(engine: str, ansatz, x: np.ndarray) -> dict:
    energy = AnsatzEnergy(ansatz, engine=engine)
    value = energy.value(x)
    rounds = TIMED_EVALS_SLOW if engine == "qtensor" else TIMED_EVALS
    seconds = seconds_per_eval(energy, x, rounds)
    return {
        "seconds_per_eval": seconds,
        "evals_per_sec": 1.0 / seconds,
        "timed_evals": rounds,
        "energy_at_probe": value,
    }


def main() -> int:
    graph, ansatz, x = paper_probe_workload()

    engines = {engine: measure(engine, ansatz, x) for engine in ENGINES}
    speedup = (
        engines["statevector"]["seconds_per_eval"]
        / engines["compiled"]["seconds_per_eval"]
    )
    for engine, row in engines.items():
        print(f"{engine:>12}: {row['evals_per_sec']:10.1f} evals/s")

    # Gate before writing: a failing run must not overwrite the committed
    # trajectory artifact with a broken engine's numbers.
    drift = abs(
        engines["compiled"]["energy_at_probe"]
        - engines["statevector"]["energy_at_probe"]
    )
    assert drift < 1e-10, f"engines disagree at the probe point ({drift:.3g})"
    assert speedup >= 1.0, (
        f"compiled engine slower than statevector ({speedup:.2f}x) — "
        "the default fast path has regressed"
    )

    report = {
        "benchmark": "evaluator_throughput",
        "workload": {
            "num_nodes": graph.num_nodes,
            "p": ansatz.p,
            "tokens": list(ansatz.mixer_tokens),
            "num_edges": graph.num_edges,
        },
        "engines": engines,
        "compiled_vs_statevector_speedup": speedup,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "generated_unix": time.time(),
    }
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"compiled vs statevector: {speedup:.1f}x  ->  {OUTPUT}")
    print("bench report OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
