#!/usr/bin/env python
"""Docs gate: project documentation must stay runnable and unbroken.

Three checks, run by CI's docs job (and ``scripts/run_ci_locally.sh``):

* **Links** — every intra-repo markdown link in ``README.md`` and
  ``docs/*.md`` must resolve to an existing file or directory (relative
  to the file containing the link). External ``http(s)``/``mailto``
  targets and pure in-page anchors are skipped; a path with an anchor
  (``file.md#section``) is checked as a path. A renamed benchmark or a
  moved doc fails here instead of rotting silently.
* **Snippets** — every fenced ``python`` code block in ``README.md`` is
  executed, in order, in its own namespace with the repo's ``src`` on
  the path. The README quickstart is therefore a *tested* example: if
  the public API it shows drifts, CI fails with the snippet's traceback.
  (Blocks in ``docs/`` are shell/reference material and are not
  executed; executable doc snippets belong in the README or
  ``examples/``.)
* **Flags** — every ``--flag`` mentioned anywhere in the checked docs
  must be an option the CLI actually accepts (collected from
  ``repro.cli.build_parser()``, subcommands included). A flag renamed in
  ``cli.py`` — or a table row documenting a flag that never shipped —
  fails here instead of misleading a reader.

Run from the repo root::

    python scripts/check_docs.py
"""

from __future__ import annotations

import argparse
import re
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

#: markdown inline links: [text](target); images share the syntax
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: fenced code blocks with an info string, non-greedy body
_FENCE = re.compile(r"^```(\w+)\n(.*?)^```", re.MULTILINE | re.DOTALL)
#: link schemes that are not filesystem paths
_EXTERNAL = ("http://", "https://", "mailto:")
#: a long option mentioned in prose, a table, or a shell block; the
#: lookbehind keeps it from matching the tail of a longer flag or word
_FLAG = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")
#: documented flags owned by repo scripts rather than ``python -m repro``
#: (scripts build their parsers inline in main(), so they can't be
#: introspected the way build_parser() can)
_SCRIPT_FLAGS = {
    "--only",  # scripts/ci_smoke.py
}


def doc_files() -> list[Path]:
    docs = [REPO / "README.md"]
    docs.extend(sorted((REPO / "docs").glob("*.md")))
    return [d for d in docs if d.exists()]


def check_links(files: list[Path]) -> list[str]:
    """Return human-readable errors for intra-repo links that don't resolve."""
    errors = []
    for doc in files:
        text = doc.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}"
                )
    return errors


def cli_option_strings() -> set[str]:
    """Every long option the CLI accepts, across all subcommands."""
    from repro.cli import build_parser

    flags: set[str] = set()
    parsers = [build_parser()]
    while parsers:
        parser = parsers.pop()
        for action in parser._actions:
            flags.update(s for s in action.option_strings if s.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):
                parsers.extend(action.choices.values())
    return flags


def check_flags(files: list[Path]) -> list[str]:
    """Return errors for documented ``--flags`` the CLI does not accept."""
    known = cli_option_strings() | _SCRIPT_FLAGS
    errors = []
    for doc in files:
        text = doc.read_text(encoding="utf-8")
        for flag in sorted(set(_FLAG.findall(text))):
            if flag not in known:
                errors.append(
                    f"{doc.relative_to(REPO)}: documents unknown flag {flag}"
                )
    return errors


def python_blocks(doc: Path) -> list[str]:
    return [
        body
        for language, body in _FENCE.findall(doc.read_text(encoding="utf-8"))
        if language == "python"
    ]


def run_snippets(doc: Path) -> list[str]:
    """Execute every python block of ``doc``; return errors."""
    errors = []
    for index, source in enumerate(python_blocks(doc)):
        label = f"{doc.relative_to(REPO)} python block #{index + 1}"
        start = time.perf_counter()
        try:
            exec(compile(source, label, "exec"), {"__name__": f"_doc_snippet_{index}"})
        except Exception as error:  # noqa: BLE001 - report, don't crash the gate
            errors.append(f"{label}: {type(error).__name__}: {error}")
        else:
            print(f"  ran {label} ({time.perf_counter() - start:.1f}s)")
    return errors


def main() -> int:
    files = doc_files()
    if len(files) < 2:
        print(f"expected README.md plus docs/*.md, found only {files}")
        return 1
    print(f"checking links in {len(files)} docs...")
    errors = check_links(files)
    print("checking documented CLI flags against build_parser()...")
    errors += check_flags(files)
    print("running README python snippets...")
    errors += run_snippets(REPO / "README.md")
    if errors:
        print("\nDOCS CHECK FAILED:")
        for error in errors:
            print(f"  - {error}")
        return 1
    print("docs check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
