#!/usr/bin/env python
"""Benchmark-smoke: one tiny end-to-end search, cold then warm.

Runs the full Algorithm 1 stack (enumeration → QBuilder → training →
selection) at a scale well under examples/quickstart.py, through the
fault-tolerant runtime with a persistent cache and the compiled fast-path
engine (requested explicitly, so a broken ``engine="compiled"`` flag fails
here rather than in a user run), and asserts:

* the search finds a winner with a sane approximation ratio,
* the compiled engine agrees with the statevector oracle to 1e-10 on the
  winning candidate's energy (spot equivalence outside the unit suite),
* a repeated run with the warm cache performs zero candidate trainings,
* the cold run stays inside a generous wall-clock budget, so order-of-
  magnitude runtime regressions fail CI without full-bench cost.
"""

from __future__ import annotations

import sys
import tempfile
import time

REPO_SRC = "src"
sys.path.insert(0, REPO_SRC)

from repro.core.evaluator import EvaluationConfig  # noqa: E402
from repro.core.runtime import RuntimeConfig  # noqa: E402
from repro.core.search import SearchConfig, search_mixer  # noqa: E402
from repro.graphs.datasets import paper_er_dataset  # noqa: E402

#: generous ceiling — the run takes ~5 s on 2 CPU-throttled CI cores
COLD_BUDGET_SECONDS = 120.0


def main() -> int:
    graphs = paper_er_dataset(2)
    config = SearchConfig(
        p_max=2,
        k_min=2,
        k_max=2,
        mode="combinations",
        evaluation=EvaluationConfig(max_steps=20, seed=0, engine="compiled"),
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        runtime = RuntimeConfig(cache_dir=cache_dir)

        start = time.perf_counter()
        cold = search_mixer(graphs, config, runtime=runtime)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = search_mixer(graphs, config, runtime=runtime)
        warm_seconds = time.perf_counter() - start

    print(
        f"cold: {cold.num_candidates} candidates in {cold_seconds:.1f}s; "
        f"winner {cold.best_tokens} at p={cold.best_p} "
        f"(ratio {cold.best_ratio:.4f})"
    )
    print(
        f"warm: {warm.config['cache_hits']} hits in {warm_seconds:.2f}s "
        f"({warm.config['jobs_submitted']} jobs submitted)"
    )

    assert cold.best_tokens, "search must produce a winner"
    assert 0.0 < cold.best_ratio <= 1.0 + 1e-9, "ratio out of range"

    # Spot-check the fast path against the oracle on the actual winner.
    from repro.qaoa.ansatz import build_qaoa_ansatz
    from repro.qaoa.energy import AnsatzEnergy

    ansatz = build_qaoa_ansatz(graphs[0], cold.best_p, cold.best_tokens)
    probe = [0.3] * ansatz.num_parameters
    fast = AnsatzEnergy(ansatz, engine="compiled").value(probe)
    dense = AnsatzEnergy(ansatz, engine="statevector").value(probe)
    assert abs(fast - dense) < 1e-10, (
        f"compiled engine drifted from the statevector oracle "
        f"({fast!r} vs {dense!r})"
    )
    print(f"engine parity on winner {cold.best_tokens}: |delta|={abs(fast - dense):.2e}")

    assert cold_seconds < COLD_BUDGET_SECONDS, (
        f"cold search took {cold_seconds:.1f}s — runtime regression "
        f"(budget {COLD_BUDGET_SECONDS:.0f}s)"
    )
    assert warm.config["cache_hits"] == warm.num_candidates, (
        "warm run must be served entirely from cache"
    )
    assert warm.config["jobs_submitted"] == 0
    assert warm.best_tokens == cold.best_tokens
    print("benchmark smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
