#!/usr/bin/env python
"""Benchmark-smoke: tiny end-to-end runs of the search stack and the service.

Two independent checks (select one with ``--only search|service``):

**search** — one tiny cold + warm search through the full Algorithm 1
stack (enumeration → QBuilder → training → selection), the fault-tolerant
runtime, a persistent cache, and the compiled fast-path engine (requested
explicitly, so a broken ``engine="compiled"`` flag fails here rather than
in a user run). Asserts:

* the search finds a winner with a sane approximation ratio,
* the compiled engine agrees with the statevector oracle to 1e-10 on the
  winning candidate's energy (spot equivalence outside the unit suite),
* a repeated run with the warm cache performs zero candidate trainings,
* the cold run stays inside a generous wall-clock budget, so order-of-
  magnitude runtime regressions fail CI without full-bench cost.

**service** — boots a :class:`~repro.service.server.SearchService`
in-process (HTTP server on an ephemeral port), submits the *same* sweep
from two clients concurrently, and asserts the ISSUE-6 acceptance
property: both sweeps complete with identical results, and the cache-hit
accounting proves every candidate was trained exactly once across the two
sweeps (one pays the misses, the fleet shares the hits).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time

REPO_SRC = "src"
sys.path.insert(0, REPO_SRC)

from repro.core.evaluator import EvaluationConfig  # noqa: E402
from repro.core.runtime import RuntimeConfig  # noqa: E402
from repro.core.search import SearchConfig, search_mixer  # noqa: E402
from repro.graphs.datasets import paper_er_dataset  # noqa: E402

#: generous ceiling — the run takes ~5 s on 2 CPU-throttled CI cores
COLD_BUDGET_SECONDS = 120.0


def smoke_search() -> int:
    graphs = paper_er_dataset(2)
    config = SearchConfig(
        p_max=2,
        k_min=2,
        k_max=2,
        mode="combinations",
        evaluation=EvaluationConfig(max_steps=20, seed=0, engine="compiled"),
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        runtime = RuntimeConfig(cache_dir=cache_dir)

        start = time.perf_counter()
        cold = search_mixer(graphs, config, runtime=runtime)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = search_mixer(graphs, config, runtime=runtime)
        warm_seconds = time.perf_counter() - start

    print(
        f"cold: {cold.num_candidates} candidates in {cold_seconds:.1f}s; "
        f"winner {cold.best_tokens} at p={cold.best_p} "
        f"(ratio {cold.best_ratio:.4f})"
    )
    print(
        f"warm: {warm.config['cache_hits']} hits in {warm_seconds:.2f}s "
        f"({warm.config['jobs_submitted']} jobs submitted)"
    )

    assert cold.best_tokens, "search must produce a winner"
    assert 0.0 < cold.best_ratio <= 1.0 + 1e-9, "ratio out of range"

    # Spot-check the fast path against the oracle on the actual winner.
    from repro.qaoa.ansatz import build_qaoa_ansatz
    from repro.qaoa.energy import AnsatzEnergy

    ansatz = build_qaoa_ansatz(graphs[0], cold.best_p, cold.best_tokens)
    probe = [0.3] * ansatz.num_parameters
    fast = AnsatzEnergy(ansatz, engine="compiled").value(probe)
    dense = AnsatzEnergy(ansatz, engine="statevector").value(probe)
    assert abs(fast - dense) < 1e-10, (
        f"compiled engine drifted from the statevector oracle "
        f"({fast!r} vs {dense!r})"
    )
    print(f"engine parity on winner {cold.best_tokens}: |delta|={abs(fast - dense):.2e}")

    assert cold_seconds < COLD_BUDGET_SECONDS, (
        f"cold search took {cold_seconds:.1f}s — runtime regression "
        f"(budget {COLD_BUDGET_SECONDS:.0f}s)"
    )
    assert warm.config["cache_hits"] == warm.num_candidates, (
        "warm run must be served entirely from cache"
    )
    assert warm.config["jobs_submitted"] == 0
    assert warm.best_tokens == cold.best_tokens
    print("benchmark smoke OK")
    return 0


def smoke_service() -> int:
    from repro.api import Config, connect
    from repro.service.server import SearchService, make_http_server

    config = Config(k_min=2, k_max=2, steps=10, num_samples=6, seed=1)

    with tempfile.TemporaryDirectory() as service_dir:
        service = SearchService(service_dir, max_concurrent=2, workers=2)
        server = make_http_server(service)  # ephemeral port
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]

        with service:
            client = connect(f"http://{host}:{port}")
            health = client.healthz()
            assert health["ok"] and health["executor"] == "async"

            start = time.perf_counter()
            # Two identical sweeps in flight at once, one fleet, one cache.
            first = client.submit("er:2:7", depths=1, config=config)
            second = client.submit("er:2:7", depths=1, config=config)
            results = [client.wait(j, timeout=300) for j in (first, second)]
            seconds = time.perf_counter() - start

        server.shutdown()
        server.server_close()

    hits = [r.config["cache_hits"] for r in results]
    misses = [r.config["cache_misses"] for r in results]
    candidates = results[0].num_candidates
    print(
        f"service: 2 concurrent sweeps x {candidates} candidates in "
        f"{seconds:.1f}s; hits per sweep {hits}, misses per sweep {misses}"
    )

    assert results[0].best_tokens == results[1].best_tokens
    assert results[0].best_energy == results[1].best_energy, (
        "concurrent sweeps over one cache must be single-sweep-identical"
    )
    assert sum(misses) == candidates, (
        f"every candidate must be trained exactly once across both sweeps "
        f"(trained {sum(misses)}, expected {candidates})"
    )
    assert sum(hits) == candidates, (
        f"cross-sweep sharing must serve the other sweep's lookups "
        f"(shared {sum(hits)}, expected {candidates})"
    )
    print("service smoke OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only",
        choices=["search", "service"],
        default=None,
        help="run just one smoke (default: both)",
    )
    args = parser.parse_args()
    if args.only in (None, "search"):
        smoke_search()
    if args.only in (None, "service"):
        smoke_service()
    return 0


if __name__ == "__main__":
    sys.exit(main())
