#!/usr/bin/env python
"""Benchmark-smoke: tiny end-to-end runs of the search stack and the service.

Five independent checks (select one with ``--only
search|service|chaos|workloads|surrogate``):

**search** — one tiny cold + warm search through the full Algorithm 1
stack (enumeration → QBuilder → training → selection), the fault-tolerant
runtime, a persistent cache, and the compiled fast-path engine (requested
explicitly, so a broken ``engine="compiled"`` flag fails here rather than
in a user run). Asserts:

* the search finds a winner with a sane approximation ratio,
* the compiled engine agrees with the statevector oracle to 1e-10 on the
  winning candidate's energy (spot equivalence outside the unit suite),
* a repeated run with the warm cache performs zero candidate trainings,
* the cold run stays inside a generous wall-clock budget, so order-of-
  magnitude runtime regressions fail CI without full-bench cost.

**service** — boots a :class:`~repro.service.server.SearchService`
in-process (HTTP server on an ephemeral port), submits the *same* sweep
from two clients concurrently, and asserts the ISSUE-6 acceptance
property: both sweeps complete with identical results, and the cache-hit
accounting proves every candidate was trained exactly once across the two
sweeps (one pays the misses, the fleet shares the hits).

**chaos** — the ISSUE-7 hardening gate: runs the same two-sweep workload
through a deterministically fault-injected queue + worker fleet (seeded
worker raises, hangs, and sqlite lock errors — see
:mod:`repro.parallel.faults`) and asserts every job reaches a terminal
state, no candidate is trained twice, and the results match a fault-free
run exactly.

**workloads** — the workload-registry gate: for every registered problem
(maxcut, wmaxcut, maxsat, ising) it runs one tiny sweep through the CLI
entry point *and* one through the service's HTTP submit path, asserting
each finds a winner with a defined ratio, records its workload key in the
result config, and exports the winning circuit as OpenQASM.

**surrogate** — the surrogate-assisted-search gate: runs one sweep with
``--surrogate`` through the CLI and one through the service's HTTP
submit, asserting the trained ranker actually pruned candidates (the
skipped counter is nonzero in the result config and in the service's
``repro_surrogate_*`` metric families).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time

REPO_SRC = "src"
sys.path.insert(0, REPO_SRC)

from repro.core.evaluator import EvaluationConfig  # noqa: E402
from repro.core.runtime import RuntimeConfig  # noqa: E402
from repro.core.search import SearchConfig, search_mixer  # noqa: E402
from repro.graphs.datasets import paper_er_dataset  # noqa: E402

#: generous ceiling — the run takes ~5 s on 2 CPU-throttled CI cores
COLD_BUDGET_SECONDS = 120.0


def smoke_search() -> int:
    graphs = paper_er_dataset(2)
    config = SearchConfig(
        p_max=2,
        k_min=2,
        k_max=2,
        mode="combinations",
        evaluation=EvaluationConfig(max_steps=20, seed=0, engine="compiled"),
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        runtime = RuntimeConfig(cache_dir=cache_dir)

        start = time.perf_counter()
        cold = search_mixer(graphs, config, runtime=runtime)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        warm = search_mixer(graphs, config, runtime=runtime)
        warm_seconds = time.perf_counter() - start

    print(
        f"cold: {cold.num_candidates} candidates in {cold_seconds:.1f}s; "
        f"winner {cold.best_tokens} at p={cold.best_p} "
        f"(ratio {cold.best_ratio:.4f})"
    )
    print(
        f"warm: {warm.config['cache_hits']} hits in {warm_seconds:.2f}s "
        f"({warm.config['jobs_submitted']} jobs submitted)"
    )

    assert cold.best_tokens, "search must produce a winner"
    assert 0.0 < cold.best_ratio <= 1.0 + 1e-9, "ratio out of range"

    # Spot-check the fast path against the oracle on the actual winner.
    from repro.qaoa.ansatz import build_qaoa_ansatz
    from repro.qaoa.energy import AnsatzEnergy

    ansatz = build_qaoa_ansatz(graphs[0], cold.best_p, cold.best_tokens)
    probe = [0.3] * ansatz.num_parameters
    fast = AnsatzEnergy(ansatz, engine="compiled").value(probe)
    dense = AnsatzEnergy(ansatz, engine="statevector").value(probe)
    assert abs(fast - dense) < 1e-10, (
        f"compiled engine drifted from the statevector oracle "
        f"({fast!r} vs {dense!r})"
    )
    print(f"engine parity on winner {cold.best_tokens}: |delta|={abs(fast - dense):.2e}")

    assert cold_seconds < COLD_BUDGET_SECONDS, (
        f"cold search took {cold_seconds:.1f}s — runtime regression "
        f"(budget {COLD_BUDGET_SECONDS:.0f}s)"
    )
    assert warm.config["cache_hits"] == warm.num_candidates, (
        "warm run must be served entirely from cache"
    )
    assert warm.config["jobs_submitted"] == 0
    assert warm.best_tokens == cold.best_tokens
    print("benchmark smoke OK")
    return 0


def smoke_service() -> int:
    from repro.api import Config, connect
    from repro.service.server import SearchService, make_http_server

    config = Config(k_min=2, k_max=2, steps=10, num_samples=6, seed=1)

    with tempfile.TemporaryDirectory() as service_dir:
        service = SearchService(service_dir, max_concurrent=2, workers=2)
        server = make_http_server(service)  # ephemeral port
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]

        with service:
            client = connect(f"http://{host}:{port}")
            health = client.healthz()
            assert health["ok"] and health["executor"] == "async"

            start = time.perf_counter()
            # Two identical sweeps in flight at once, one fleet, one cache.
            first = client.submit("er:2:7", depths=1, config=config)
            second = client.submit("er:2:7", depths=1, config=config)
            # /metrics must answer while sweeps are in flight
            midsweep = client.metrics()
            assert "repro_service_uptime_seconds" in midsweep
            assert "# TYPE repro_queue_jobs gauge" in midsweep
            results = [client.wait(j, timeout=300) for j in (first, second)]
            seconds = time.perf_counter() - start
            metrics_text = client.metrics()

        server.shutdown()
        server.server_close()

    def series_value(name: str) -> float:
        for line in metrics_text.splitlines():
            if line.startswith(name + " ") or line.startswith(name + "{"):
                return float(line.rsplit(" ", 1)[1])
        return 0.0

    # every instrumented layer must have reported: scheduler histogram +
    # counters, cache hit/miss, sweep outcomes
    assert series_value("repro_job_run_seconds_count") > 0
    assert series_value("repro_jobs_completed_total") > 0
    assert series_value("repro_cache_misses_total") > 0
    assert series_value("repro_cache_hits_total") > 0
    assert 'repro_sweeps_total{outcome="completed"} 2' in metrics_text

    hits = [r.config["cache_hits"] for r in results]
    misses = [r.config["cache_misses"] for r in results]
    candidates = results[0].num_candidates
    print(
        f"service: 2 concurrent sweeps x {candidates} candidates in "
        f"{seconds:.1f}s; hits per sweep {hits}, misses per sweep {misses}"
    )

    assert results[0].best_tokens == results[1].best_tokens
    assert results[0].best_energy == results[1].best_energy, (
        "concurrent sweeps over one cache must be single-sweep-identical"
    )
    assert sum(misses) == candidates, (
        f"every candidate must be trained exactly once across both sweeps "
        f"(trained {sum(misses)}, expected {candidates})"
    )
    assert sum(hits) == candidates, (
        f"cross-sweep sharing must serve the other sweep's lookups "
        f"(shared {sum(hits)}, expected {candidates})"
    )
    print("service smoke OK")
    return 0


def smoke_chaos() -> int:
    import sqlite3
    from pathlib import Path

    from repro.api import Config, workload_to_wire
    from repro.core.cache import ResultCache
    from repro.core.results import SearchResult
    from repro.parallel.async_executor import AsyncExecutor
    from repro.parallel.faults import (
        FaultInjectingExecutor,
        FaultInjectingJobQueue,
        FaultPlan,
    )
    from repro.service.jobs import TERMINAL_STATES, JobQueue
    from repro.service.multiplexer import SweepMultiplexer

    spec = {
        "workload": workload_to_wire("er:2:7"),
        "depths": 1,
        "config": Config(
            k_min=2, k_max=2, steps=10, num_samples=6, seed=1, retries=3
        ).to_dict(),
    }

    def run(root: Path, plan: FaultPlan | None):
        queue_args = dict(
            lease_seconds=1.0, max_attempts=5, backoff_base=0.02, backoff_cap=0.1
        )
        if plan is None:
            queue = JobQueue(root, **queue_args)
            executor = AsyncExecutor(2)
        else:
            queue = FaultInjectingJobQueue(root, plan, **queue_args)
            executor = FaultInjectingExecutor(AsyncExecutor(2), plan)
        cache = ResultCache(root / "cache", flush_every=4, shared=True)

        def patient(fn, *args):
            for _ in range(60):
                try:
                    return fn(*args)
                except sqlite3.OperationalError:
                    time.sleep(0.02)
            return fn(*args)

        job_ids = [patient(queue.submit, spec) for _ in range(2)]
        multiplexer = SweepMultiplexer(
            queue, executor=executor, cache=cache, max_concurrent=2
        )
        multiplexer.start()
        deadline = time.monotonic() + 300
        try:
            while time.monotonic() < deadline:
                records = [patient(queue.get, job_id) for job_id in job_ids]
                if all(r.state in TERMINAL_STATES for r in records):
                    break
                time.sleep(0.05)
        finally:
            multiplexer.stop()
            executor.close()
            cache.close()
            if plan is not None:
                queue._plan = None
            records = [queue.get(job_id) for job_id in job_ids]
            queue.close()
        return records, executor

    plan = FaultPlan(
        11,
        worker_raises=0.15,
        worker_hangs=0.1,
        queue_locks=0.1,
        hang_seconds=0.02,
        max_faults_per_kind=12,
    )
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        chaotic, executor = run(Path(tmp) / "chaos", plan)
        calm, _ = run(Path(tmp) / "calm", None)
        seconds = time.perf_counter() - start

    injected = plan.injected
    print(
        f"chaos: 2 sweeps under {sum(injected.values())} injected faults "
        f"{injected} in {seconds:.1f}s; states "
        f"{[record.state for record in chaotic]}"
    )
    assert sum(injected.values()) > 0, "the chaos run must inject something"
    assert all(record.state in TERMINAL_STATES for record in chaotic), (
        f"every job must terminate, got {[r.state for r in chaotic]}"
    )
    assert [record.state for record in chaotic] == ["done", "done"], (
        "this retry budget must absorb the injected faults cleanly"
    )
    assert executor.completed == 6, (
        f"candidates trained {executor.completed}, expected 6 (no double work)"
    )
    for noisy, quiet in zip(chaotic, calm):
        a = SearchResult.from_dict(noisy.result)
        b = SearchResult.from_dict(quiet.result)
        assert a.best_tokens == b.best_tokens
        assert a.best_energy == b.best_energy, (
            "faults must not change the science"
        )
    print("chaos smoke OK")
    return 0


def smoke_workloads() -> int:
    import json
    from pathlib import Path

    from repro.api import Config, connect
    from repro.cli import main as cli_main
    from repro.service.server import SearchService, make_http_server
    from repro.workloads import available_workloads, get_workload

    keys = available_workloads()
    config = Config(k_min=1, k_max=1, steps=10, seed=1)

    # -- CLI path: one tiny sweep per problem family ------------------------
    with tempfile.TemporaryDirectory() as out_dir:
        for key in keys:
            out = Path(out_dir) / f"{key}.json"
            code = cli_main([
                "search", "--dataset", get_workload(key).family,
                "--graphs", "1", "--dataset-seed", "5", "--steps", "10",
                "--p-max", "1", "--k-min", "1", "--k-max", "1",
                "--out", str(out),
            ])
            assert code == 0, f"CLI sweep failed for workload {key!r}"
            saved = json.loads(out.read_text())
            assert saved["config"]["workload"] == key
            assert 0.0 < saved["best_ratio"] <= 1.0 + 1e-9, (
                f"{key}: ratio {saved['best_ratio']} out of range"
            )
            assert saved["depth_results"][0]["best_qasm"].startswith("OPENQASM 2.0;")
            print(f"cli[{key}]: winner {tuple(saved['best_tokens'])} "
                  f"ratio {saved['best_ratio']:.4f}")

    # -- service path: submit the same families over HTTP -------------------
    with tempfile.TemporaryDirectory() as service_dir:
        service = SearchService(service_dir, max_concurrent=2, workers=2)
        server = make_http_server(service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        with service:
            client = connect(f"http://{host}:{port}")
            jobs = {
                key: client.submit(
                    f"{get_workload(key).family}:1:5", depths=1, config=config
                )
                for key in keys
            }
            for key, job_id in jobs.items():
                result = client.wait(job_id, timeout=300)
                assert result.config["workload"] == key
                assert 0.0 < result.best_ratio <= 1.0 + 1e-9
                assert result.depth_results[0].best_qasm
                print(f"service[{key}]: winner {result.best_tokens} "
                      f"ratio {result.best_ratio:.4f}")
        server.shutdown()
        server.server_close()

    print(f"workloads smoke OK ({len(keys)} problems x 2 entry points)")
    return 0


def smoke_surrogate() -> int:
    import json
    from pathlib import Path

    from repro.api import Config, connect
    from repro.cli import main as cli_main
    from repro.service.server import SearchService, make_http_server

    # -- CLI path: a surrogate-assisted sweep must actually prune ----------
    with tempfile.TemporaryDirectory() as out_dir:
        out = Path(out_dir) / "surrogate.json"
        code = cli_main([
            "search", "--dataset", "er", "--graphs", "2", "--dataset-seed",
            "7", "--steps", "10", "--p-max", "3", "--k-min", "1", "--k-max",
            "2", "--mode", "combinations", "--surrogate", "--surrogate-keep",
            "0.4", "--explore-floor", "0.1", "--out", str(out),
        ])
        assert code == 0, "surrogate CLI sweep failed"
        saved = json.loads(out.read_text())
        assert saved["config"]["surrogate"] is True
        assert saved["config"]["surrogate_skipped"] > 0, (
            "the trained ranker must skip candidates at the later depths"
        )
        assert saved["config"]["surrogate_kept"] > 0
        assert 0.0 < saved["best_ratio"] <= 1.0 + 1e-9
        print(
            f"cli[surrogate]: winner {tuple(saved['best_tokens'])} "
            f"ratio {saved['best_ratio']:.4f}; "
            f"{saved['config']['surrogate_kept']} kept / "
            f"{saved['config']['surrogate_skipped']} skipped"
        )

    # -- service path: same sweep over HTTP submit -------------------------
    config = Config(
        k_min=1, k_max=2, mode="combinations", steps=10, seed=7,
        surrogate=True, surrogate_keep=0.4, explore_floor=0.1,
    )
    with tempfile.TemporaryDirectory() as service_dir:
        service = SearchService(service_dir, max_concurrent=2, workers=2)
        server = make_http_server(service)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        with service:
            client = connect(f"http://{host}:{port}")
            job_id = client.submit("er:2:7", depths=3, config=config)
            result = client.wait(job_id, timeout=300)
            metrics_text = client.metrics()
        server.shutdown()
        server.server_close()

    assert result.config["surrogate"] is True
    assert result.config["surrogate_skipped"] > 0
    print(
        f"service[surrogate]: winner {result.best_tokens} "
        f"ratio {result.best_ratio:.4f}; "
        f"{result.config['surrogate_kept']} kept / "
        f"{result.config['surrogate_skipped']} skipped"
    )

    def series_value(name: str) -> float:
        for line in metrics_text.splitlines():
            if line.startswith(name + " ") or line.startswith(name + "{"):
                return float(line.rsplit(" ", 1)[1])
        return 0.0

    assert series_value("repro_surrogate_candidates_kept_total") > 0
    assert series_value("repro_surrogate_candidates_skipped_total") > 0
    assert series_value("repro_surrogate_ranking_seconds_count") > 0
    print("surrogate smoke OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only",
        choices=["search", "service", "chaos", "workloads", "surrogate"],
        default=None,
        help="run just one smoke (default: all)",
    )
    args = parser.parse_args()
    if args.only in (None, "search"):
        smoke_search()
    if args.only in (None, "service"):
        smoke_service()
    if args.only in (None, "chaos"):
        smoke_chaos()
    if args.only in (None, "workloads"):
        smoke_workloads()
    if args.only in (None, "surrogate"):
        smoke_surrogate()
    return 0


if __name__ == "__main__":
    sys.exit(main())
