#!/usr/bin/env python
"""Offline approximation of the CI ruff job (F/E5/E7/E9 + I + UP subsets).

CI runs real ruff (see .github/workflows/ci.yml). This script exists so
`scripts/run_ci_locally.sh` can gate the same rule families on machines
without network access to install ruff: unused imports, duplicate
definitions from imports, comparisons to None/True/False with ==, bare
excepts, syntax errors, plus — since ruff.toml adopted ``I`` and ``UP`` —
unsorted import sections (module order, section grouping, member order)
and the unambiguous pyupgrade cases (PEP 585 builtin generics and
collections.abc names imported from typing), plus line length (E501 at
ruff.toml's 100-column limit). It intentionally implements a *subset* —
a clean ruff run implies a clean run here, not vice versa.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

ROOTS = ("src", "tests", "benchmarks", "examples", "scripts")

#: E501 limit; keep in sync with ``line-length`` in ruff.toml
MAX_LINE_LENGTH = 100

#: typing names PEP 585 replaced with builtins (UP006/UP035)
TYPING_BUILTINS = {"List", "Dict", "Tuple", "Set", "FrozenSet", "Type"}
#: typing names that moved to collections.abc (UP035)
TYPING_ABC = {
    "Sequence", "Iterable", "Iterator", "Mapping", "MutableMapping",
    "Callable", "Generator", "Hashable", "Collection",
}
STDLIB_MODULES = set(sys.stdlib_module_names)
THIRD_PARTY_MODULES = {"numpy", "scipy", "pytest", "hypothesis", "matplotlib"}


def _import_section(module: str) -> int:
    root = module.split(".")[0]
    if root == "__future__":
        return 0
    if root == "repro":
        return 3
    if root in THIRD_PARTY_MODULES:
        return 2
    if root in STDLIB_MODULES:
        return 1
    return 2


def _member_key(name: str):
    base = name.split(" as ")[0]
    rank = 0 if base.isupper() else (1 if base[0].isupper() else 2)
    return (rank, base.lower(), base)


def check_imports(tree: ast.Module, report) -> None:
    """I001 subset: section order, module order, and member order inside
    each contiguous top-level import block."""
    block: list[ast.stmt] = []

    def flush() -> None:
        if len(block) > 1:
            keys = []
            for node in block:
                if isinstance(node, ast.ImportFrom):
                    module = node.module or ""
                    is_from = 1
                else:
                    module = node.names[0].name
                    is_from = 0
                # ruff/isort default (force-sort-within-sections=false):
                # straight imports precede from-imports within a section
                keys.append(
                    (_import_section(module), is_from, module.lower(), module)
                )
            for before, after, node in zip(keys, keys[1:], block[1:]):
                if after < before:
                    report(
                        node.lineno,
                        "I001 import out of order (section or module sort)",
                    )
                    break
        for node in block:
            if isinstance(node, ast.ImportFrom) and node.module != "__future__":
                names = [alias.asname or alias.name for alias in node.names]
                if names != sorted(names, key=_member_key):
                    report(
                        node.lineno,
                        f"I001 unsorted import members from {node.module!r}",
                    )
        block.clear()

    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            block.append(node)
        else:
            flush()
    flush()


def check_pyupgrade(tree: ast.Module, report) -> None:
    """UP006/UP035 subset: deprecated typing imports with unambiguous
    replacements (builtin generics, collections.abc members)."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ImportFrom) or node.module != "typing":
            continue
        for alias in node.names:
            if alias.name in TYPING_BUILTINS:
                report(
                    node.lineno,
                    f"UP006 use builtin '{alias.name.lower()}' instead of "
                    f"typing.{alias.name}",
                )
            elif alias.name in TYPING_ABC:
                report(
                    node.lineno,
                    f"UP035 import {alias.name} from collections.abc, "
                    "not typing",
                )


class ImportUsage(ast.NodeVisitor):
    def __init__(self) -> None:
        self.imported: dict[str, int] = {}  # name -> lineno
        self.used: set[str] = set()
        self.exported: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".")[0]
            self.imported[name] = node.lineno

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if alias.name == "*":
                continue
            self.imported[alias.asname or alias.name] = node.lineno

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used.add(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    for element in value.elts:
                        if isinstance(element, ast.Constant):
                            self.exported.add(str(element.value))
        self.generic_visit(node)


def check_file(path: Path) -> list[str]:
    source = path.read_text()
    lines = source.splitlines()
    problems: list[str] = []

    def report(lineno: int, message: str) -> None:
        if 0 < lineno <= len(lines) and "noqa" in lines[lineno - 1]:
            return
        problems.append(f"{path}:{lineno}: {message}")

    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:  # E9
        return [f"{path}:{error.lineno}: E999 syntax error: {error.msg}"]

    for number, line in enumerate(lines, 1):  # E501
        if len(line) > MAX_LINE_LENGTH:
            report(
                number,
                f"E501 line too long ({len(line)} > {MAX_LINE_LENGTH})",
            )

    usage = ImportUsage()
    usage.visit(tree)
    check_imports(tree, report)
    check_pyupgrade(tree, report)
    # Names used inside string annotations / docstring doctests are not
    # tracked; treat any textual occurrence outside the import block as use.
    text_body = "\n".join(
        line for number, line in enumerate(source.splitlines(), 1)
        if number not in set(usage.imported.values())
    )
    for name, lineno in sorted(usage.imported.items(), key=lambda kv: kv[1]):
        if name == "annotations" or name.startswith("_"):
            continue
        if name in usage.used or name in usage.exported:
            continue
        if name in text_body:
            continue
        report(lineno, f"F401 {name!r} imported but unused")

    # Format specs (the ":.4f" in f"{x:.4f}") are themselves JoinedStr
    # nodes with no placeholders; they are not F541 candidates.
    format_specs = {
        id(node.format_spec)
        for node in ast.walk(tree)
        if isinstance(node, ast.FormattedValue) and node.format_spec is not None
    }
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            problems.extend(
                f"{path}:{lineno}: {message}"
                for lineno, message in _unused_locals(node)
                if "noqa" not in lines[lineno - 1]
            )
        if isinstance(node, ast.JoinedStr) and id(node) not in format_specs:  # F541
            if not any(isinstance(v, ast.FormattedValue) for v in node.values):
                report(node.lineno, "F541 f-string without placeholders")
        if isinstance(node, ast.Compare):  # F632
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Is, ast.IsNot)) and isinstance(
                    comparator, ast.Constant
                ) and comparator.value not in (None, True, False):
                    report(node.lineno, "F632 `is` comparison with a literal")
        if isinstance(node, ast.ExceptHandler) and node.type is None:  # E722
            report(node.lineno, "E722 bare except")
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            targets = node.targets
            if any(isinstance(t, ast.Name) for t in targets):  # E731
                report(node.lineno, "E731 lambda assigned to a name")
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            if node.id in ("l", "O", "I"):  # E741
                report(node.lineno, f"E741 ambiguous variable name {node.id!r}")
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if not isinstance(comparator, ast.Constant):
                    continue
                if comparator.value is None and isinstance(op, (ast.Eq, ast.NotEq)):
                    report(node.lineno, "E711 comparison to None with ==")
                if isinstance(comparator.value, bool) and isinstance(
                    op, (ast.Eq, ast.NotEq)
                ):
                    report(
                        node.lineno,
                        f"E712 comparison to {comparator.value} with ==",
                    )
    return problems


def _unused_locals(func: ast.AST) -> list:
    """Approximate F841: simple ``name = ...`` bindings never loaded.

    tuple unpacking, augmented assignment, and underscore names are left
    alone, matching pyflakes' default behaviour.
    """
    assigned: dict[str, int] = {}
    loaded: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and not target.id.startswith("_"):
                    assigned.setdefault(target.id, node.lineno)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loaded.add(node.id)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            for name in node.names:
                loaded.add(name)
    return [
        (lineno, f"F841 local variable {name!r} assigned but never used")
        for name, lineno in sorted(assigned.items(), key=lambda kv: kv[1])
        if name not in loaded
    ]


def main() -> int:
    repo = Path(__file__).resolve().parents[1]
    problems: list[str] = []
    for root in ROOTS:
        for path in sorted((repo / root).rglob("*.py")):
            problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"lint_fallback: {len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
