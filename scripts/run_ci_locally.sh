#!/usr/bin/env bash
# Run the same three jobs as .github/workflows/ci.yml on this machine.
#
#   lint        ruff check . (falls back to scripts/lint_fallback.py when
#               ruff is not installed — e.g. offline dev containers)
#   docs        README/docs link check + smoke-run of the README snippets
#   tests       CLI smoke + tier-1 pytest
#   bench-smoke tiny end-to-end search with warm-cache assertions, the
#               service smoke (two concurrent sweeps sharing a cache), the
#               chaos smoke (fault-injected service invariants), and the
#               surrogate smoke + eval-reduction gate
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "=== job: lint ==="
if command -v ruff >/dev/null 2>&1; then
    ruff check .
else
    echo "(ruff not installed; running offline fallback linter)"
    python scripts/lint_fallback.py
fi

echo "=== job: docs ==="
python scripts/check_docs.py

echo "=== job: tests (CLI smoke) ==="
python -m repro --help >/dev/null
python -m repro draw rx,ry --qubits 3 >/dev/null
echo "CLI smoke OK"

echo "=== job: tests (tier-1 pytest) ==="
python -m pytest -x -q

echo "=== job: bench-smoke ==="
python scripts/ci_smoke.py --only search
python scripts/ci_smoke.py --only service
python scripts/ci_smoke.py --only chaos
python scripts/ci_smoke.py --only workloads
python scripts/ci_smoke.py --only surrogate
python scripts/bench_report.py
python benchmarks/bench_compiled_engine.py
python benchmarks/bench_batched_optimizers.py
python benchmarks/bench_sharded_runtime.py
python benchmarks/bench_surrogate.py

echo "=== all CI jobs green ==="
