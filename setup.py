"""Legacy shim so `pip install -e .` works without the `wheel` package.

The offline environment here ships setuptools 65.5 without `wheel`, so PEP
660 editable installs fail with `invalid command 'bdist_wheel'`. Keeping a
setup.py lets both `pip install -e .` (legacy code path) and
`python setup.py develop` succeed. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
