"""QArchSearch reproduction: scalable quantum architecture search.

Reimplementation of Kulshrestha, Lykov, Safro & Alexeev, "QArchSearch: A
Scalable Quantum Architecture Search Package" (SC 2023 workshops,
arXiv:2310.07858), together with every substrate it runs on: a circuit
library, a state-vector simulator, a QTensor-style tensor-network
simulator, the QAOA/max-cut application, classical optimizers, a NumPy RL
controller, and the two-level parallel execution layer.

Quickstart (the stable facade — see :mod:`repro.api`)::

    from repro import Config, search

    result = search("er:3", depths=2, config=Config(k_min=2, k_max=2))
    print(result.best_tokens, result.best_ratio)

The same sweep runs against a long-lived search service (``python -m
repro serve``) via ``connect(url).submit(...)``. Deep imports
(``search_mixer``, ``SearchConfig``, …) remain available for code that
composes the internals directly.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
figure-by-figure reproduction record.
"""

from repro.api import Config, connect, search

from repro.core import (
    ControllerPredictor,
    EvaluationConfig,
    Evaluator,
    GateAlphabet,
    PolicyController,
    QBuilder,
    RandomPredictor,
    RuntimeConfig,
    SearchConfig,
    SearchResult,
    SearchRuntime,
    search_mixer,
    search_with_predictor,
)
from repro.graphs import (
    Graph,
    erdos_renyi_graph,
    paper_er_dataset,
    paper_regular_dataset,
    random_regular_graph,
)
from repro.qaoa import AnsatzEnergy, approximation_ratio, build_qaoa_ansatz
from repro.qtensor import QTensorSimulator
from repro.workloads import (
    Workload,
    available_workloads,
    get_workload,
    register_workload,
)

__version__ = "1.0.0"

__all__ = [
    "search",
    "connect",
    "Config",
    "search_mixer",
    "search_with_predictor",
    "SearchConfig",
    "SearchResult",
    "RuntimeConfig",
    "SearchRuntime",
    "EvaluationConfig",
    "Evaluator",
    "GateAlphabet",
    "QBuilder",
    "RandomPredictor",
    "PolicyController",
    "ControllerPredictor",
    "Graph",
    "erdos_renyi_graph",
    "random_regular_graph",
    "paper_er_dataset",
    "paper_regular_dataset",
    "build_qaoa_ansatz",
    "AnsatzEnergy",
    "approximation_ratio",
    "QTensorSimulator",
    "Workload",
    "get_workload",
    "register_workload",
    "available_workloads",
    "__version__",
]
