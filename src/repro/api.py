"""The blessed public API: ``search`` locally, ``connect`` to a service.

Five PRs of growth left the package with powerful but sprawling internals:
running a search means composing :class:`~repro.core.search.SearchConfig`
(candidate space), :class:`~repro.core.evaluator.EvaluationConfig`
(training), :class:`~repro.core.runtime.RuntimeConfig` (fault tolerance /
persistence / sharding), and an :class:`~repro.parallel.executor.Executor`
by hand. This module is the stable facade over all of it — two entry
points, one flat config:

>>> from repro.api import Config, search
>>> result = search("er:2", depths=1, config=Config(k_min=2, steps=20))

runs Algorithm 1 in-process, and

>>> client = connect("http://localhost:8787")          # doctest: +SKIP
>>> job_id = client.submit("er:2", depths=1)           # doctest: +SKIP
>>> result = client.wait(job_id)                       # doctest: +SKIP

submits the same sweep to a long-running search service (``python -m
repro serve``), where it shares a worker fleet and a multi-tenant result
cache with every other live sweep. Both paths return the same
:class:`~repro.core.results.SearchResult`.

**Stability.** ``search``, ``connect``, :class:`Config`, and the
:class:`Client` methods are the supported surface: additions land as new
keyword arguments with defaults, and the wire format they speak is
versioned (see :mod:`repro.core.results`). The deep imports older code
uses (``repro.search_mixer``, ``repro.core.*``) keep working — the facade
delegates to them — but their signatures may grow faster.

**Workloads.** Anywhere a workload is accepted, pass either a sequence of
:class:`~repro.graphs.generators.Graph` objects or a compact dataset spec
string ``"family[:count[:seed]]"`` — e.g. ``"er"``, ``"er:3"``,
``"regular:4:2023"``, ``"wmaxcut:2"``, ``"maxsat:3"``, ``"ising:2"`` —
naming a seeded dataset family. Each family implies a problem from the
:mod:`repro.workloads` registry (``er``/``regular`` → MaxCut, the others
their namesakes); the implied key is threaded into the config
automatically, or validated against an explicitly-set ``Config.workload``.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from collections.abc import Sequence
from contextlib import ExitStack
from dataclasses import asdict, dataclass, fields, replace
from typing import Any

from repro.core.cache import ResultCache
from repro.core.evaluator import EvaluationConfig
from repro.core.results import SearchResult
from repro.core.runtime import RuntimeConfig
from repro.core.search import SearchConfig, search_mixer
from repro.graphs.datasets import DATASET_FAMILIES
from repro.graphs.generators import Graph
from repro.graphs.io import graph_from_dict, graph_to_dict
from repro.parallel.executor import (
    Executor,
    MultiprocessingExecutor,
    available_cores,
)
from repro.surrogate.config import SurrogateConfig

__all__ = [
    "Config",
    "Client",
    "ServiceError",
    "search",
    "connect",
    "resolve_workload",
    "resolve_workload_spec",
    "reconcile_workload",
    "workload_to_wire",
]


@dataclass(frozen=True)
class Config:
    """Every knob of a search, flattened into one documented surface.

    Groups map one-to-one onto the internal config objects (candidate
    space → ``SearchConfig``, training → ``EvaluationConfig``, execution →
    ``RuntimeConfig`` + executor), so anything expressible here behaves
    identically through the deep API. All fields are JSON-safe scalars:
    a ``Config`` round-trips through :meth:`to_dict`/:meth:`from_dict`
    and is the ``config`` object of the service's submit payload.
    """

    # -- candidate space ---------------------------------------------------
    #: minimum / maximum gates per mixer combination
    k_min: int = 1
    k_max: int = 2
    #: candidate enumeration convention: combinations / sequences / permutations
    mode: str = "combinations"
    #: cap on candidates per depth (None = the whole space)
    num_samples: int | None = None

    # -- training ----------------------------------------------------------
    #: classical optimizer: cobyla (paper), nelder_mead, spsa, adam
    optimizer: str = "cobyla"
    #: optimizer evaluation budget per candidate
    steps: int = 60
    #: independent restarts per graph (batch-native optimizers train them
    #: as one population)
    restarts: int = 1
    #: base seed for all stochastic draws
    seed: int = 0
    #: simulation engine: compiled (fast path) / statevector / qtensor
    engine: str = "compiled"
    #: array library behind the compiled engine: numpy / mock_gpu / cupy
    array_backend: str = "numpy"
    #: reward metric: energy or best_sampled
    metric: str = "energy"
    #: measurement budget for best_sampled
    shots: int = 128
    #: problem from the workloads registry: maxcut (paper), wmaxcut,
    #: maxsat, ising — dataset-family specs imply it automatically
    workload: str = "maxcut"
    #: optimizer initialization: uniform (paper), ramp, interp (warm-start
    #: each depth from the previous depth's trained parameters)
    init_strategy: str = "uniform"

    # -- execution / persistence ------------------------------------------
    #: worker processes: 0 or 1 = in-process serial, -1 = all cores
    workers: int = 0
    #: shards per depth (Fig. 2's outer level); 1 = single-node
    shards: int = 1
    #: persist results + checkpoints here (repeat runs become lookups)
    cache_dir: str | None = None
    #: LRU bound on the result cache (None = unbounded)
    cache_max_entries: int | None = None
    #: restore finished depths from the checkpoint in cache_dir
    resume: bool = False
    #: extra attempts per candidate after the first
    retries: int = 2
    #: per-candidate wall-clock limit in seconds (None = unlimited)
    job_timeout: float | None = None

    # -- surrogate-assisted ranking ----------------------------------------
    #: learn a ranker from completed evaluations and evaluate only the
    #: predicted-top slice of each depth's candidates (off = evaluate all)
    surrogate: bool = False
    #: fraction of each depth's pool forwarded to real evaluation once
    #: the ranker is trained
    surrogate_keep: float = 0.5
    #: fraction of the pool evaluated regardless of predicted rank
    #: (seeded uniform sample; 1.0 degenerates to the unfiltered search)
    explore_floor: float = 0.1

    # -- service-side scheduling (ignored by local ``search``) -------------
    #: fairness / quota bucket this sweep is accounted to on a service
    tenant: str = "default"
    #: queue priority (higher claims first within the tenant's share)
    priority: int = 0

    # -- mapping onto the internal configs ---------------------------------

    def evaluation_config(self) -> EvaluationConfig:
        return EvaluationConfig(
            optimizer=self.optimizer,
            max_steps=self.steps,
            restarts=self.restarts,
            seed=self.seed,
            engine=self.engine,
            array_backend=self.array_backend,
            metric=self.metric,
            shots=self.shots,
            workload=self.workload,
            init_strategy=self.init_strategy,
        )

    def search_config(self, depths: int) -> SearchConfig:
        return SearchConfig(
            p_max=int(depths),
            k_min=self.k_min,
            k_max=self.k_max,
            mode=self.mode,
            num_samples=self.num_samples,
            seed=self.seed,
            evaluation=self.evaluation_config(),
            surrogate=SurrogateConfig(
                enabled=self.surrogate,
                keep_fraction=self.surrogate_keep,
                explore_floor=self.explore_floor,
                seed=self.seed,
            ),
        )

    def runtime_config(self) -> RuntimeConfig:
        return RuntimeConfig(
            cache_dir=self.cache_dir,
            resume=self.resume,
            max_retries=self.retries,
            job_timeout=self.job_timeout,
            shards=self.shards,
            cache_max_entries=self.cache_max_entries,
        )

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Config:
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown config field(s) {sorted(unknown)}; "
                f"accepted: {sorted(known)}"
            )
        return cls(**data)


# -- workloads -------------------------------------------------------------

#: dataset family -> (implied workload registry key, instance factory)
_FAMILIES = DATASET_FAMILIES


def resolve_workload_spec(
    workload: str | Sequence[Graph] | Sequence[dict],
) -> tuple[str | None, list[Graph]]:
    """Resolve a workload into ``(implied problem key, graphs)``.

    Accepts a dataset spec string (``"er"``, ``"er:3"``, ``"maxsat:3:2023"``),
    a sequence of :class:`Graph` objects, or a sequence of graph wire dicts
    (what :func:`workload_to_wire` produces — the service's submit payload).
    Spec strings imply a problem key from their family; raw graphs and wire
    dicts imply nothing (key ``None``) — ``Config.workload`` governs them.
    """
    if isinstance(workload, str):
        parts = workload.split(":")
        family = parts[0]
        if family not in _FAMILIES or len(parts) > 3:
            raise ValueError(
                f"unknown workload spec {workload!r}; expected "
                f"'family[:count[:seed]]' with family in {sorted(_FAMILIES)}"
            )
        key, factory = _FAMILIES[family]
        count = int(parts[1]) if len(parts) > 1 else 3
        seed = int(parts[2]) if len(parts) > 2 else 2023
        return key, list(factory(count, dataset_seed=seed))
    graphs = list(workload)
    if not graphs:
        raise ValueError("workload must contain at least one graph")
    if isinstance(graphs[0], Graph):
        return None, graphs  # type: ignore[return-value]
    return None, [graph_from_dict(g) for g in graphs]  # type: ignore[arg-type]


def resolve_workload(workload: str | Sequence[Graph] | Sequence[dict]) -> list[Graph]:
    """Normalize any accepted workload form into a list of graphs
    (the graphs half of :func:`resolve_workload_spec`)."""
    return resolve_workload_spec(workload)[1]


def reconcile_workload(config: Config, implied: str | None) -> Config:
    """Fold a family-implied problem key into the config.

    An implied key fills in the default ``workload="maxcut"`` silently and
    is a no-op when it matches an explicit setting; a *conflicting*
    explicit setting is an error — evaluating, say, the Ising oracle over
    a Max-k-SAT dataset would produce meaningless ratios.
    """
    if implied is None or implied == config.workload:
        return config
    if config.workload == "maxcut":
        return replace(config, workload=implied)
    raise ValueError(
        f"workload spec implies problem {implied!r} but the config "
        f"explicitly sets workload={config.workload!r}; drop one of the two"
    )


def workload_to_wire(workload: str | Sequence[Graph] | Sequence[dict]) -> list[dict]:
    """The JSON form of a workload: exact graph content, so the service
    evaluates precisely what the client resolved (specs are expanded
    client-side; server and client can disagree about nothing)."""
    return [graph_to_dict(g) for g in resolve_workload(workload)]


# -- the two entry points ---------------------------------------------------


def search(
    workload: str | Sequence[Graph],
    *,
    depths: int = 2,
    config: Config | None = None,
    executor: Executor | None = None,
    cache: ResultCache | None = None,
) -> SearchResult:
    """Run Algorithm 1 in-process and return the full result.

    Parameters
    ----------
    workload:
        Graphs to optimize over, or a dataset spec string (``"er:3"``).
    depths:
        QAOA depths swept (``p = 1..depths``).
    config:
        Flat :class:`Config`; defaults are a small fast sweep.
    executor:
        Override the worker fleet (otherwise ``config.workers`` decides:
        0/1 serial, N processes, -1 all cores).
    cache:
        Externally-owned result store (advanced; the service passes its
        shared multi-tenant cache here).
    """
    config = config or Config()
    implied, graphs = resolve_workload_spec(workload)
    config = reconcile_workload(config, implied)
    search_cfg = config.search_config(depths)
    runtime_cfg = config.runtime_config()
    workers = available_cores() if config.workers == -1 else config.workers
    with ExitStack() as stack:
        if executor is None and workers and workers > 1:
            executor = stack.enter_context(MultiprocessingExecutor(workers))
        return search_mixer(
            graphs, search_cfg, executor=executor, runtime=runtime_cfg, cache=cache
        )


def connect(url: str, *, timeout: float = 10.0) -> Client:
    """Open a client for a running search service (``repro serve``)."""
    return Client(url, timeout=timeout)


# -- the service client -----------------------------------------------------


class ServiceError(RuntimeError):
    """The service rejected a request or a submitted sweep failed."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"service returned {status}: {message}")
        self.status = status


class Client:
    """Thin JSON/HTTP client for the search service — stdlib only.

    One instance per service URL; methods map one-to-one onto endpoints
    (``submit`` → POST /submit, ``status`` → GET /status/{id}, ``result``
    → GET /result/{id}, ``healthz`` → GET /healthz). :meth:`wait` polls
    status until the sweep finishes and returns the parsed result.
    """

    def __init__(self, url: str, *, timeout: float = 10.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- endpoints ---------------------------------------------------------

    def submit(
        self,
        workload: str | Sequence[Graph],
        *,
        depths: int = 2,
        config: Config | None = None,
        tenant: str | None = None,
        priority: int | None = None,
    ) -> str:
        """Queue a sweep; returns its job id immediately.

        ``tenant`` and ``priority`` override the config's values; a full
        queue surfaces as :class:`ServiceError` with ``status == 429``
        (back off for the response's ``Retry-After`` and resubmit).
        """
        config = config or Config()
        # Specs are expanded client-side into graph dicts, so the family
        # string (and the problem it implies) would be lost on the wire —
        # fold the implied workload key into the config before serializing.
        implied, graphs = resolve_workload_spec(workload)
        config = reconcile_workload(config, implied)
        payload = {
            "workload": [graph_to_dict(g) for g in graphs],
            "depths": int(depths),
            "config": config.to_dict(),
            "tenant": config.tenant if tenant is None else str(tenant),
            "priority": config.priority if priority is None else int(priority),
        }
        return str(self._request("POST", "/submit", payload)["id"])

    def cancel(self, job_id: str) -> str:
        """Cancel a job; returns its disposition (``"cancelled"`` for a
        queued job, ``"cancelling"`` while a running sweep stops
        cooperatively, or the unchanged terminal state)."""
        return str(self._request("POST", f"/cancel/{job_id}")["state"])

    def status(self, job_id: str) -> dict:
        """Job lifecycle record: state, timestamps, error if failed."""
        return self._request("GET", f"/status/{job_id}")

    def result(self, job_id: str) -> SearchResult:
        """The finished sweep's result (raises unless state is done)."""
        return SearchResult.from_dict(self._request("GET", f"/result/{job_id}"))

    def healthz(self) -> dict:
        """Liveness + fleet/cache/queue counters."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw Prometheus text exposition of ``GET /metrics``.

        Returned as text, not JSON — feed it to a scraper or grep it for
        a series; the catalog is in ``docs/observability.md``.
        """
        return self._request_text("GET", "/metrics")

    def progress(self, job_id: str) -> dict | None:
        """The ``progress`` field of ``GET /status/{id}``: candidates
        done/total per depth, percent, live throughput. ``None`` until
        the serving process has started running the job (or when another
        process on a shared service directory ran it)."""
        return self.status(job_id).get("progress")

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll: float = 0.2,
        poll_cap: float = 5.0,
    ) -> SearchResult:
        """Block until the sweep completes; returns its result.

        Polls with exponential backoff from ``poll`` up to ``poll_cap``
        seconds, jittered ±25% so a herd of waiting clients spreads out
        instead of thundering the service in lockstep. Raises
        :class:`ServiceError` if the sweep failed (including the job's
        recorded error text) or was cancelled, ``TimeoutError`` if it did
        not finish within ``timeout`` seconds.
        """
        deadline = time.monotonic() + timeout
        delay = max(poll, 0.001)
        while True:
            state = self.status(job_id)
            if state["state"] == "done":
                return self.result(job_id)
            if state["state"] == "failed":
                raise ServiceError(
                    200, f"job {job_id} failed: {state.get('error') or 'sweep failed'}"
                )
            if state["state"] == "cancelled":
                raise ServiceError(200, f"job {job_id} was cancelled")
            now = time.monotonic()
            if now >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {state['state']} after {timeout}s"
                )
            jittered = delay * random.uniform(0.75, 1.25)
            time.sleep(min(jittered, deadline - now))
            delay = min(delay * 2.0, poll_cap)

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str, payload: dict | None = None) -> dict:
        return json.loads(self._request_text(method, path, payload))

    def _request_text(
        self, method: str, path: str, payload: dict | None = None
    ) -> str:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            detail = error.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except (json.JSONDecodeError, AttributeError):
                pass
            raise ServiceError(error.code, detail) from None
