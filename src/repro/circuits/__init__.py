"""From-scratch quantum circuit library (the Qiskit substitute).

Public surface:

* :class:`~repro.circuits.circuit.QuantumCircuit` — the circuit container
  with fluent gate appenders.
* :class:`~repro.circuits.parameters.Parameter` — symbolic angles; linear
  expressions like ``2 * beta`` are first-class.
* :func:`~repro.circuits.gates.make_gate` / :data:`GATE_REGISTRY` — gate
  specs with exact matrices.
* :class:`~repro.circuits.dag.CircuitDag`, transpile passes, ASCII drawing
  and OpenQASM 2 round-tripping.
"""

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.dag import CircuitDag, DagNode
from repro.circuits.decompose import fuse_single_qubit_runs, zyz_decompose
from repro.circuits.gates import GATE_REGISTRY, Gate, GateSpec, gate_matrix, make_gate
from repro.circuits.parameters import Parameter, ParameterExpression, bind_value
from repro.circuits.qasm import QasmError, from_qasm, to_qasm
from repro.circuits.transpile import (
    cancel_inverse_pairs,
    drop_identities,
    merge_rotations,
    simplify,
)
from repro.circuits.visualization import draw_circuit

__all__ = [
    "QuantumCircuit",
    "Instruction",
    "CircuitDag",
    "DagNode",
    "Gate",
    "GateSpec",
    "GATE_REGISTRY",
    "make_gate",
    "gate_matrix",
    "Parameter",
    "ParameterExpression",
    "bind_value",
    "to_qasm",
    "from_qasm",
    "QasmError",
    "merge_rotations",
    "cancel_inverse_pairs",
    "drop_identities",
    "simplify",
    "draw_circuit",
    "zyz_decompose",
    "fuse_single_qubit_runs",
]
