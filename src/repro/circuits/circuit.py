"""The quantum circuit container.

A :class:`QuantumCircuit` is an ordered list of instructions (gate + qubit
tuple) on a fixed-width register. It deliberately mirrors the slice of
Qiskit's API that QArchSearch's QBuilder uses — ``rx/ry/rz/h/p`` appenders,
composition, parameter binding — plus the structural queries (depth, gate
counts, two-qubit interaction graph) that the transpiler and tensor-network
converter need.

Qubit ordering convention (shared with the simulators): qubit ``k`` is bit
``k`` of the computational-basis index, i.e. little-endian, qubit 0 is the
least-significant bit.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass

from repro.circuits.gates import Gate, make_gate
from repro.circuits.parameters import Parameter, ParameterValue
from repro.utils.validation import check_positive, check_qubit_index

__all__ = ["Instruction", "QuantumCircuit"]


@dataclass(frozen=True)
class Instruction:
    """One gate application: which gate, on which qubits (in gate order)."""

    gate: Gate
    qubits: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.qubits) != self.gate.num_qubits:
            raise ValueError(
                f"gate '{self.gate.name}' acts on {self.gate.num_qubits} qubit(s), "
                f"got qubits {self.qubits}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in {self.qubits}")

    def __repr__(self) -> str:
        qubits = ", ".join(str(q) for q in self.qubits)
        return f"{self.gate!r} @ ({qubits})"


class QuantumCircuit:
    """An ordered gate list on ``num_qubits`` qubits.

    Mutating methods return ``self`` so construction chains fluently::

        qc = QuantumCircuit(3).h(0).cx(0, 1).rx(theta, 2)
    """

    def __init__(self, num_qubits: int, *, name: str = "circuit") -> None:
        self._num_qubits = check_positive(num_qubits, "num_qubits")
        self._instructions: list[Instruction] = []
        self.name = name

    # -- core mutation ------------------------------------------------------

    def append(self, gate: Gate, qubits: Sequence[int]) -> QuantumCircuit:
        """Append ``gate`` acting on ``qubits`` (validated)."""
        qubits = tuple(check_qubit_index(q, self._num_qubits) for q in qubits)
        self._instructions.append(Instruction(gate, qubits))
        return self

    def append_named(
        self, name: str, qubits: Sequence[int], *params: ParameterValue
    ) -> QuantumCircuit:
        """Append a registry gate by name — used by the QBuilder."""
        return self.append(make_gate(name, *params), qubits)

    # -- gate sugar ----------------------------------------------------------

    def id(self, q: int) -> QuantumCircuit:
        return self.append_named("id", [q])

    def x(self, q: int) -> QuantumCircuit:
        return self.append_named("x", [q])

    def y(self, q: int) -> QuantumCircuit:
        return self.append_named("y", [q])

    def z(self, q: int) -> QuantumCircuit:
        return self.append_named("z", [q])

    def h(self, q: int) -> QuantumCircuit:
        return self.append_named("h", [q])

    def s(self, q: int) -> QuantumCircuit:
        return self.append_named("s", [q])

    def sdg(self, q: int) -> QuantumCircuit:
        return self.append_named("sdg", [q])

    def t(self, q: int) -> QuantumCircuit:
        return self.append_named("t", [q])

    def tdg(self, q: int) -> QuantumCircuit:
        return self.append_named("tdg", [q])

    def rx(self, theta: ParameterValue, q: int) -> QuantumCircuit:
        return self.append_named("rx", [q], theta)

    def ry(self, theta: ParameterValue, q: int) -> QuantumCircuit:
        return self.append_named("ry", [q], theta)

    def rz(self, theta: ParameterValue, q: int) -> QuantumCircuit:
        return self.append_named("rz", [q], theta)

    def p(self, lam: ParameterValue, q: int) -> QuantumCircuit:
        return self.append_named("p", [q], lam)

    def u3(
        self, theta: ParameterValue, phi: ParameterValue, lam: ParameterValue, q: int
    ) -> QuantumCircuit:
        return self.append_named("u3", [q], theta, phi, lam)

    def cx(self, control: int, target: int) -> QuantumCircuit:
        return self.append_named("cx", [control, target])

    def cz(self, q0: int, q1: int) -> QuantumCircuit:
        return self.append_named("cz", [q0, q1])

    def cp(self, lam: ParameterValue, q0: int, q1: int) -> QuantumCircuit:
        return self.append_named("cp", [q0, q1], lam)

    def rzz(self, theta: ParameterValue, q0: int, q1: int) -> QuantumCircuit:
        return self.append_named("rzz", [q0, q1], theta)

    def rxx(self, theta: ParameterValue, q0: int, q1: int) -> QuantumCircuit:
        return self.append_named("rxx", [q0, q1], theta)

    def swap(self, q0: int, q1: int) -> QuantumCircuit:
        return self.append_named("swap", [q0, q1])

    # -- structure ------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return self._num_qubits

    @property
    def instructions(self) -> tuple[Instruction, ...]:
        return tuple(self._instructions)

    def size(self) -> int:
        """Total gate count."""
        return len(self._instructions)

    def depth(self) -> int:
        """Circuit depth: longest chain of gates sharing qubits."""
        level = [0] * self._num_qubits
        for instr in self._instructions:
            layer = 1 + max(level[q] for q in instr.qubits)
            for q in instr.qubits:
                level[q] = layer
        return max(level, default=0)

    def count_ops(self) -> dict[str, int]:
        """Gate-name histogram, sorted by count descending then name."""
        counts: dict[str, int] = {}
        for instr in self._instructions:
            counts[instr.gate.name] = counts.get(instr.gate.name, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def two_qubit_interactions(self) -> set[tuple[int, int]]:
        """The set of qubit pairs coupled by any multi-qubit gate."""
        pairs: set[tuple[int, int]] = set()
        for instr in self._instructions:
            qs = instr.qubits
            if len(qs) == 2:
                pairs.add((min(qs), max(qs)))
        return pairs

    @property
    def parameters(self) -> frozenset:
        """All free symbolic parameters, as a frozenset of Parameter."""
        out: set = set()
        for instr in self._instructions:
            out |= instr.gate.parameters
        return frozenset(out)

    def sorted_parameters(self) -> list[Parameter]:
        """Free parameters sorted by name (stable optimizer ordering)."""
        return sorted(self.parameters, key=lambda p: (p.name, id(p)))

    # -- transformation ---------------------------------------------------------

    def bind_parameters(self, bindings: Mapping[Parameter, float]) -> QuantumCircuit:
        """A new circuit with parameters substituted (partial binding allowed)."""
        out = QuantumCircuit(self._num_qubits, name=self.name)
        for instr in self._instructions:
            out.append(instr.gate.bind(bindings), instr.qubits)
        return out

    def compose(self, other: QuantumCircuit) -> QuantumCircuit:
        """A new circuit running ``self`` then ``other`` (same width)."""
        if other.num_qubits != self._num_qubits:
            raise ValueError(
                f"cannot compose {self._num_qubits}-qubit circuit with "
                f"{other.num_qubits}-qubit circuit"
            )
        out = self.copy()
        for instr in other.instructions:
            out.append(instr.gate, instr.qubits)
        return out

    def inverse(self) -> QuantumCircuit:
        """The adjoint circuit: reversed order, inverted gates."""
        out = QuantumCircuit(self._num_qubits, name=f"{self.name}_dg")
        for instr in reversed(self._instructions):
            out.append(instr.gate.inverse(), instr.qubits)
        return out

    def repeat(self, reps: int) -> QuantumCircuit:
        """``self`` composed with itself ``reps`` times."""
        check_positive(reps, "reps", strict=False)
        out = QuantumCircuit(self._num_qubits, name=f"{self.name}^{reps}")
        for _ in range(reps):
            for instr in self._instructions:
                out.append(instr.gate, instr.qubits)
        return out

    def copy(self) -> QuantumCircuit:
        out = QuantumCircuit(self._num_qubits, name=self.name)
        out._instructions = list(self._instructions)
        return out

    # -- dunder -----------------------------------------------------------------

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __eq__(self, other) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self._num_qubits == other._num_qubits
            and self._instructions == other._instructions
        )

    def __repr__(self) -> str:
        ops = ", ".join(f"{name}x{n}" for name, n in self.count_ops().items())
        return f"QuantumCircuit({self.name!r}, n={self._num_qubits}, {ops or 'empty'})"

    def draw(self) -> str:
        """ASCII rendering (delegates to :mod:`repro.circuits.visualization`)."""
        from repro.circuits.visualization import draw_circuit

        return draw_circuit(self)
