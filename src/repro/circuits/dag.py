"""Directed-acyclic-graph view of a circuit.

The DAG exposes the *dependency* structure a gate list hides: two gates on
disjoint qubits commute trivially and sit in parallel layers. The transpiler
passes walk wire-neighbourhoods (previous/next gate on a qubit), and the
scheduling simulator uses layers to reason about intra-circuit parallelism.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.circuits.circuit import Instruction, QuantumCircuit

__all__ = ["DagNode", "CircuitDag"]


@dataclass
class DagNode:
    """One gate occurrence in the DAG."""

    index: int
    instruction: Instruction
    #: per-qubit predecessor node indices (None at wire input)
    preds: dict[int, int | None] = field(default_factory=dict)
    #: per-qubit successor node indices (None at wire output)
    succs: dict[int, int | None] = field(default_factory=dict)

    @property
    def qubits(self) -> tuple[int, ...]:
        return self.instruction.qubits

    @property
    def gate_name(self) -> str:
        return self.instruction.gate.name


class CircuitDag:
    """Wire-linked DAG built in one pass over the instruction list."""

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.num_qubits = circuit.num_qubits
        self.nodes: list[DagNode] = []
        #: last node index seen on each wire while building
        last_on_wire: dict[int, int] = {}
        for idx, instr in enumerate(circuit.instructions):
            node = DagNode(idx, instr)
            for q in instr.qubits:
                prev = last_on_wire.get(q)
                node.preds[q] = prev
                node.succs[q] = None
                if prev is not None:
                    self.nodes[prev].succs[q] = idx
                last_on_wire[q] = idx
            self.nodes.append(node)
        self._wire_outputs = last_on_wire

    # -- queries -------------------------------------------------------------

    def predecessor(self, node_index: int, qubit: int) -> DagNode | None:
        """The previous gate on ``qubit`` before ``node_index``, if any."""
        prev = self.nodes[node_index].preds.get(qubit)
        return None if prev is None else self.nodes[prev]

    def successor(self, node_index: int, qubit: int) -> DagNode | None:
        """The next gate on ``qubit`` after ``node_index``, if any."""
        nxt = self.nodes[node_index].succs.get(qubit)
        return None if nxt is None else self.nodes[nxt]

    def layers(self) -> list[list[DagNode]]:
        """Greedy ASAP layering: gates whose predecessors all sit in earlier
        layers. Layer count equals circuit depth."""
        depth_of: dict[int, int] = {}
        layers: list[list[DagNode]] = []
        for node in self.nodes:
            level = 0
            for q in node.qubits:
                prev = node.preds[q]
                if prev is not None:
                    level = max(level, depth_of[prev] + 1)
            depth_of[node.index] = level
            while len(layers) <= level:
                layers.append([])
            layers[level].append(node)
        return layers

    def topological_order(self) -> list[DagNode]:
        """Nodes in dependency order (construction order is already one)."""
        return list(self.nodes)

    def to_circuit(self, skip: Sequence[int] = ()) -> QuantumCircuit:
        """Rebuild a circuit, optionally dropping the node indices in ``skip``.

        Used by transpile passes that delete or replace gates.
        """
        drop = set(skip)
        out = QuantumCircuit(self.num_qubits)
        for node in self.nodes:
            if node.index not in drop:
                out.append(node.instruction.gate, node.instruction.qubits)
        return out

    def __len__(self) -> int:
        return len(self.nodes)
