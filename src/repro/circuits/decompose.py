"""Single-qubit unitary decomposition and run fusion.

Candidate mixers stack several single-qubit rotations per qubit; once
parameters are bound, any such run collapses to one ``u3`` gate. This
module provides the ZYZ (Euler-angle) decomposition

``U = e^{i phase} * RZ(phi) RY(theta) RZ(lam)``

(matching our ``u3(theta, phi, lam)`` up to global phase) and the
:func:`fuse_single_qubit_runs` pass that rewrites maximal 1q-gate runs —
the depth-reduction a compiler would apply before running a discovered
circuit on hardware.
"""

from __future__ import annotations

import cmath
import math

import numpy as np

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.gates import make_gate

__all__ = ["zyz_decompose", "fuse_single_qubit_runs"]


def zyz_decompose(matrix: np.ndarray) -> tuple[float, float, float, float]:
    """Euler angles ``(theta, phi, lam, phase)`` of a 2x2 unitary.

    Satisfies ``matrix = exp(i*phase) * u3(theta, phi, lam)`` exactly (to
    float precision). Handles the gimbal-locked diagonal/antidiagonal cases
    explicitly.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.shape != (2, 2):
        raise ValueError(f"expected a 2x2 matrix, got {matrix.shape}")
    if not np.allclose(matrix @ matrix.conj().T, np.eye(2), atol=1e-9):
        raise ValueError("matrix is not unitary")

    # strip determinant phase: U = e^{i delta} V with det V = 1
    det = matrix[0, 0] * matrix[1, 1] - matrix[0, 1] * matrix[1, 0]
    delta = cmath.phase(det) / 2.0
    v = matrix * cmath.exp(-1j * delta)

    # V = [[cos(t/2) e^{-i(phi+lam)/2}, -sin(t/2) e^{-i(phi-lam)/2}],
    #      [sin(t/2) e^{+i(phi-lam)/2},  cos(t/2) e^{+i(phi+lam)/2}]]
    cos_half = abs(v[0, 0])
    cos_half = min(1.0, max(0.0, cos_half))
    theta = 2.0 * math.acos(cos_half)
    if abs(v[0, 0]) > 1e-12 and abs(v[1, 0]) > 1e-12:
        plus = -2.0 * cmath.phase(v[0, 0])  # phi + lam
        minus = 2.0 * cmath.phase(v[1, 0])  # phi - lam
        phi = (plus + minus) / 2.0
        lam = (plus - minus) / 2.0
    elif abs(v[1, 0]) <= 1e-12:  # diagonal: theta ~ 0, only phi+lam fixed
        phi = -2.0 * cmath.phase(v[0, 0])
        lam = 0.0
        theta = 0.0
    else:  # antidiagonal: theta ~ pi, only phi-lam fixed
        phi = 2.0 * cmath.phase(v[1, 0])
        lam = 0.0
        theta = math.pi
    # u3's (0,0) entry is real cos(theta/2); adjust the global phase so the
    # reconstruction is exact including phase
    u3 = make_gate("u3", theta, phi, lam).matrix()
    # phase = angle between matrix and u3 on the largest entry
    idx = np.unravel_index(np.argmax(np.abs(u3)), (2, 2))
    phase = cmath.phase(matrix[idx] / u3[idx])
    return theta, phi, lam, phase


def fuse_single_qubit_runs(
    circuit: QuantumCircuit, *, min_run: int = 2
) -> QuantumCircuit:
    """Collapse maximal runs of >= ``min_run`` bound single-qubit gates on a
    wire into one ``u3``.

    Runs containing symbolic parameters are left untouched (they cannot be
    multiplied out). Global phases of fused runs are dropped — harmless for
    states and expectations, which is how circuits are consumed here.
    """
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    pending: list[list[Instruction] | None] = [None] * circuit.num_qubits

    def flush(qubit: int) -> None:
        run = pending[qubit]
        pending[qubit] = None
        if run is None:
            return
        if len(run) < min_run:
            for instr in run:
                out.append(instr.gate, instr.qubits)
            return
        matrix = np.eye(2, dtype=complex)
        for instr in run:
            matrix = instr.gate.matrix() @ matrix
        theta, phi, lam, _ = zyz_decompose(matrix)
        out.append_named("u3", [qubit], theta, phi, lam)

    for instr in circuit.instructions:
        if instr.gate.num_qubits == 1 and not instr.gate.parameters:
            q = instr.qubits[0]
            if pending[q] is None:
                pending[q] = []
            pending[q].append(instr)
        else:
            for q in instr.qubits:
                flush(q)
            out.append(instr.gate, instr.qubits)
    for q in range(circuit.num_qubits):
        flush(q)
    return out
