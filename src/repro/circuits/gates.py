"""Gate definitions with exact unitary matrices.

Each gate is a lightweight immutable description: a name, qubit count,
parameter slots, and a matrix factory. Matrices follow the standard physics
conventions used by Qiskit:

* ``RX(t) = exp(-i t X / 2)``, likewise RY/RZ,
* ``P(t) = diag(1, e^{it})`` (phase gate),
* two-qubit matrices are given in little-endian qubit order — for a gate on
  ``(q0, q1)`` the basis ordering is ``|q1 q0>`` — matching the simulator's
  axis convention (qubit ``k`` is tensor axis ``k`` counted from the left of
  the statevector reshape, see :mod:`repro.simulators.statevector`).

Diagonal gates are flagged (``is_diagonal``) because the tensor-network
layer exploits diagonality to avoid rank-4 tensors (Lykov & Alexeev 2021,
"Importance of Diagonal Gates in Tensor Network Simulations"). Every
diagonal gate additionally publishes its *phase generator* (``diag_phase``):
the pair of real vectors ``(h, g0)`` with

``diag(gate(theta)) = exp(1j * (theta * h + g0))``

(``theta`` is the single angle; ``h`` is all-zero for parameter-free
gates). The compiled statevector engine
(:mod:`repro.simulators.compiled`) fuses whole runs of diagonal gates —
the QAOA cost layer in particular — into a single elementwise multiply by
summing these generators, so the representation is load-bearing, not
documentation: :func:`_register` rejects diagonal specs that omit it.
"""

from __future__ import annotations

import cmath
import math
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.circuits.parameters import Parameter, ParameterValue, bind_value

__all__ = [
    "DiagPhase",
    "GateSpec",
    "Gate",
    "GATE_REGISTRY",
    "gate_matrix",
    "make_gate",
    "I",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "RX",
    "RY",
    "RZ",
    "P",
    "U3",
    "CX",
    "CZ",
    "CP",
    "RZZ",
    "RXX",
    "SWAP",
]

_SQ2 = 1.0 / math.sqrt(2.0)


def _mat_i(_: Sequence[float]) -> np.ndarray:
    return np.eye(2, dtype=complex)


def _mat_x(_: Sequence[float]) -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=complex)


def _mat_y(_: Sequence[float]) -> np.ndarray:
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def _mat_z(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=complex)


def _mat_h(_: Sequence[float]) -> np.ndarray:
    return np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex)


def _mat_s(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, 1j]], dtype=complex)


def _mat_sdg(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, -1j]], dtype=complex)


def _mat_t(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex)


def _mat_tdg(_: Sequence[float]) -> np.ndarray:
    return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex)


def _mat_rx(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _mat_ry(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _mat_rz(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    return np.array(
        [[cmath.exp(-0.5j * theta), 0], [0, cmath.exp(0.5j * theta)]], dtype=complex
    )


def _mat_p(params: Sequence[float]) -> np.ndarray:
    (lam,) = params
    return np.array([[1, 0], [0, cmath.exp(1j * lam)]], dtype=complex)


def _mat_u3(params: Sequence[float]) -> np.ndarray:
    theta, phi, lam = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


# Two-qubit matrices. Convention: for a gate applied to (q0, q1) the 4x4
# matrix acts on basis |q1 q0> (second listed qubit is the high bit). For CX
# the first listed qubit is the control.


def _mat_cx(_: Sequence[float]) -> np.ndarray:
    # control = q0 (low bit), target = q1 (high bit): |q1 q0> basis 00,01,10,11
    # 01 (q0=1) -> 11 ; 11 -> 01.
    return np.array(
        [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
    )


def _mat_cz(_: Sequence[float]) -> np.ndarray:
    return np.diag([1, 1, 1, -1]).astype(complex)


def _mat_cp(params: Sequence[float]) -> np.ndarray:
    (lam,) = params
    return np.diag([1, 1, 1, cmath.exp(1j * lam)]).astype(complex)


def _mat_rzz(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    e_m = cmath.exp(-0.5j * theta)
    e_p = cmath.exp(0.5j * theta)
    return np.diag([e_m, e_p, e_p, e_m]).astype(complex)


def _mat_rxx(params: Sequence[float]) -> np.ndarray:
    (theta,) = params
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    m = np.eye(4, dtype=complex) * c
    anti = -1j * s
    m[0, 3] = m[1, 2] = m[2, 1] = m[3, 0] = anti
    return m


def _mat_swap(_: Sequence[float]) -> np.ndarray:
    return np.array(
        [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
    )


#: phase generator of a diagonal gate: hashable ``(h, g0)`` float tuples of
#: length ``2**num_qubits`` with ``diag = exp(1j * (theta * h + g0))``
DiagPhase = tuple[tuple[float, ...], tuple[float, ...]]


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type."""

    name: str
    num_qubits: int
    num_params: int
    matrix_fn: Callable[[Sequence[float]], np.ndarray]
    is_diagonal: bool = False
    is_self_inverse: bool = False
    #: name of the gate implementing the inverse with negated parameters,
    #: if that pattern applies (all rotation gates).
    negate_params_inverts: bool = False
    #: the (h, g0) phase generator; required for (and only for) diagonal
    #: gates. Stored as plain tuples so the spec stays hashable.
    diag_phase: DiagPhase | None = None

    def diag_exponent(self, params: Sequence[float] = ()) -> np.ndarray:
        """The real exponent ``g`` with ``diag(gate) = exp(1j * g)``."""
        if self.diag_phase is None:
            raise ValueError(f"gate '{self.name}' is not diagonal")
        h, g0 = self.diag_phase
        theta = float(params[0]) if self.num_params else 0.0
        return theta * np.asarray(h) + np.asarray(g0)


GATE_REGISTRY: dict[str, GateSpec] = {}


def _register(spec: GateSpec) -> GateSpec:
    if spec.is_diagonal != (spec.diag_phase is not None):
        raise ValueError(
            f"gate '{spec.name}': diag_phase must be given iff is_diagonal"
        )
    GATE_REGISTRY[spec.name] = spec
    return spec


_NO_PHASE_1Q = (0.0, 0.0)
_NO_PHASE_2Q = (0.0, 0.0, 0.0, 0.0)
_PI = math.pi


I = _register(  # noqa: E741 - the identity gate's conventional name
    GateSpec(
        "id", 1, 0, _mat_i, is_diagonal=True, is_self_inverse=True,
        diag_phase=(_NO_PHASE_1Q, (0.0, 0.0)),
    )
)
X = _register(GateSpec("x", 1, 0, _mat_x, is_self_inverse=True))
Y = _register(GateSpec("y", 1, 0, _mat_y, is_self_inverse=True))
Z = _register(
    GateSpec(
        "z", 1, 0, _mat_z, is_diagonal=True, is_self_inverse=True,
        diag_phase=(_NO_PHASE_1Q, (0.0, _PI)),
    )
)
H = _register(GateSpec("h", 1, 0, _mat_h, is_self_inverse=True))
S = _register(
    GateSpec("s", 1, 0, _mat_s, is_diagonal=True, diag_phase=(_NO_PHASE_1Q, (0.0, _PI / 2)))
)
SDG = _register(
    GateSpec("sdg", 1, 0, _mat_sdg, is_diagonal=True, diag_phase=(_NO_PHASE_1Q, (0.0, -_PI / 2)))
)
T = _register(
    GateSpec("t", 1, 0, _mat_t, is_diagonal=True, diag_phase=(_NO_PHASE_1Q, (0.0, _PI / 4)))
)
TDG = _register(
    GateSpec("tdg", 1, 0, _mat_tdg, is_diagonal=True, diag_phase=(_NO_PHASE_1Q, (0.0, -_PI / 4)))
)
RX = _register(GateSpec("rx", 1, 1, _mat_rx, negate_params_inverts=True))
RY = _register(GateSpec("ry", 1, 1, _mat_ry, negate_params_inverts=True))
RZ = _register(
    GateSpec(
        "rz", 1, 1, _mat_rz, is_diagonal=True, negate_params_inverts=True,
        diag_phase=((-0.5, 0.5), (0.0, 0.0)),
    )
)
P = _register(
    GateSpec(
        "p", 1, 1, _mat_p, is_diagonal=True, negate_params_inverts=True,
        diag_phase=((0.0, 1.0), (0.0, 0.0)),
    )
)
U3 = _register(GateSpec("u3", 1, 3, _mat_u3))
CX = _register(GateSpec("cx", 2, 0, _mat_cx, is_self_inverse=True))
CZ = _register(
    GateSpec(
        "cz", 2, 0, _mat_cz, is_diagonal=True, is_self_inverse=True,
        diag_phase=(_NO_PHASE_2Q, (0.0, 0.0, 0.0, _PI)),
    )
)
CP = _register(
    GateSpec(
        "cp", 2, 1, _mat_cp, is_diagonal=True, negate_params_inverts=True,
        diag_phase=((0.0, 0.0, 0.0, 1.0), _NO_PHASE_2Q),
    )
)
RZZ = _register(
    GateSpec(
        "rzz", 2, 1, _mat_rzz, is_diagonal=True, negate_params_inverts=True,
        diag_phase=((-0.5, 0.5, 0.5, -0.5), _NO_PHASE_2Q),
    )
)
RXX = _register(GateSpec("rxx", 2, 1, _mat_rxx, negate_params_inverts=True))
SWAP = _register(GateSpec("swap", 2, 0, _mat_swap, is_self_inverse=True))


@dataclass(frozen=True)
class Gate:
    """A gate instance: a spec plus (possibly symbolic) parameter values."""

    spec: GateSpec
    params: tuple[ParameterValue, ...] = ()

    def __post_init__(self) -> None:
        if len(self.params) != self.spec.num_params:
            raise ValueError(
                f"gate '{self.spec.name}' takes {self.spec.num_params} parameter(s), "
                f"got {len(self.params)}"
            )

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_qubits(self) -> int:
        return self.spec.num_qubits

    @property
    def is_diagonal(self) -> bool:
        return self.spec.is_diagonal

    @property
    def parameters(self) -> frozenset:
        """Free symbolic parameters of this gate."""
        out: set = set()
        for p in self.params:
            if hasattr(p, "parameters"):
                out |= p.parameters
        return frozenset(out)

    def bind(self, bindings: Mapping[Parameter, float]) -> Gate:
        """Return a copy with (a subset of) parameters substituted."""
        new_params = []
        for p in self.params:
            if hasattr(p, "bind"):
                bound = p.bind(bindings)
                new_params.append(bound.constant_value() if bound.is_constant() else bound)
            else:
                new_params.append(p)
        return Gate(self.spec, tuple(new_params))

    def matrix(self, bindings: Mapping[Parameter, float] | None = None) -> np.ndarray:
        """Concrete unitary matrix; raises if parameters remain unbound."""
        values = [bind_value(p, bindings or {}) for p in self.params]
        return self.spec.matrix_fn(values)

    def inverse(self) -> Gate:
        """The inverse gate, when expressible in the registry."""
        if self.spec.is_self_inverse:
            return self
        if self.spec.negate_params_inverts:
            return Gate(self.spec, tuple(-p for p in self.params))
        inverse_names = {"s": "sdg", "sdg": "s", "t": "tdg", "tdg": "t"}
        if self.spec.name in inverse_names:
            return Gate(GATE_REGISTRY[inverse_names[self.spec.name]], ())
        raise NotImplementedError(f"no registry inverse for gate '{self.spec.name}'")

    def __repr__(self) -> str:
        if not self.params:
            return self.spec.name
        inner = ", ".join(repr(p) for p in self.params)
        return f"{self.spec.name}({inner})"


def make_gate(name: str, *params: ParameterValue) -> Gate:
    """Construct a gate by registry name — the QBuilder entry point."""
    try:
        spec = GATE_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(GATE_REGISTRY))
        raise KeyError(f"unknown gate '{name}'; known gates: {known}") from None
    return Gate(spec, tuple(params))


def gate_matrix(name: str, *params: float) -> np.ndarray:
    """Convenience: concrete matrix for a named gate with float parameters."""
    return make_gate(name, *params).matrix()
