"""Symbolic circuit parameters.

Variational circuits carry symbolic angles that are bound to floats only at
simulation time: QAOA's ``gamma_k``/``beta_k``, and — central to the paper —
a *shared* mixer parameter (Fig. 6/7: "All parameterized gates in the mixer
circuit share the same parameter"). Sharing falls out naturally here because
a :class:`Parameter` is a value object: appending ``RX(2*beta)`` to every
qubit reuses one symbol, and binding ``beta`` once updates all of them.

Only linear expressions (``a * p + b``, summed over parameters) are
supported. That is exactly what QAOA ansätze need (angles like ``2*beta``)
and keeps binding vectorizable and exact.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Union

import numpy as np

__all__ = ["Parameter", "ParameterExpression", "ParameterValue", "bind_value"]

Number = Union[int, float, np.floating]


class ParameterExpression:
    """A linear combination ``sum_i coeff_i * param_i + offset``.

    Immutable. Supports ``+``, ``-``, ``*`` (by scalars), negation, and
    binding. Two expressions are equal iff they have identical coefficient
    maps and offsets.
    """

    __slots__ = ("_terms", "_offset")

    def __init__(
        self,
        terms: Mapping["Parameter", float] | None = None,
        offset: float = 0.0,
    ) -> None:
        cleaned = {p: float(c) for p, c in (terms or {}).items() if c != 0.0}
        self._terms: dict[Parameter, float] = cleaned
        self._offset = float(offset)

    # -- introspection -----------------------------------------------------

    @property
    def parameters(self) -> frozenset["Parameter"]:
        """The free parameters appearing with nonzero coefficient."""
        return frozenset(self._terms)

    @property
    def terms(self) -> dict["Parameter", float]:
        return dict(self._terms)

    @property
    def offset(self) -> float:
        return self._offset

    def is_constant(self) -> bool:
        return not self._terms

    def constant_value(self) -> float:
        """The float value of a fully-constant expression."""
        if self._terms:
            names = sorted(p.name for p in self._terms)
            raise ValueError(f"expression still depends on parameters {names}")
        return self._offset

    # -- binding -----------------------------------------------------------

    def bind(self, values: Mapping["Parameter", Number]) -> ParameterExpression:
        """Substitute floats for (a subset of) the free parameters."""
        remaining: dict[Parameter, float] = {}
        offset = self._offset
        for param, coeff in self._terms.items():
            if param in values:
                offset += coeff * float(values[param])
            else:
                remaining[param] = coeff
        return ParameterExpression(remaining, offset)

    # -- algebra -----------------------------------------------------------

    def _as_expression(self, other) -> ParameterExpression | None:
        if isinstance(other, ParameterExpression):
            return other
        if isinstance(other, (int, float, np.floating)):
            return ParameterExpression({}, float(other))
        return None

    def __add__(self, other) -> ParameterExpression:
        rhs = self._as_expression(other)
        if rhs is None:
            return NotImplemented
        terms = dict(self._terms)
        for p, c in rhs._terms.items():
            terms[p] = terms.get(p, 0.0) + c
        return ParameterExpression(terms, self._offset + rhs._offset)

    __radd__ = __add__

    def __sub__(self, other) -> ParameterExpression:
        rhs = self._as_expression(other)
        if rhs is None:
            return NotImplemented
        return self + (-rhs)

    def __rsub__(self, other) -> ParameterExpression:
        rhs = self._as_expression(other)
        if rhs is None:
            return NotImplemented
        return rhs + (-self)

    def __mul__(self, scalar) -> ParameterExpression:
        if not isinstance(scalar, (int, float, np.floating)):
            return NotImplemented
        s = float(scalar)
        return ParameterExpression(
            {p: c * s for p, c in self._terms.items()}, self._offset * s
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar) -> ParameterExpression:
        if not isinstance(scalar, (int, float, np.floating)):
            return NotImplemented
        return self * (1.0 / float(scalar))

    def __neg__(self) -> ParameterExpression:
        return self * -1.0

    # -- equality / hashing --------------------------------------------------

    def __eq__(self, other) -> bool:
        if isinstance(other, (int, float, np.floating)):
            return self.is_constant() and self._offset == float(other)
        if not isinstance(other, ParameterExpression):
            return NotImplemented
        return self._terms == other._terms and self._offset == other._offset

    def __hash__(self) -> int:
        return hash((frozenset(self._terms.items()), self._offset))

    def __repr__(self) -> str:
        if self.is_constant():
            return f"{self._offset:g}"
        parts = []
        for p, c in sorted(self._terms.items(), key=lambda t: t[0].name):
            parts.append(p.name if c == 1.0 else f"{c:g}*{p.name}")
        expr = " + ".join(parts)
        if self._offset:
            expr += f" + {self._offset:g}"
        return expr


class Parameter(ParameterExpression):
    """A named free parameter (leaf expression with coefficient one).

    Identity is by object, not by name: two ``Parameter("beta")`` objects are
    distinct symbols. This mirrors Qiskit and prevents accidental capture
    when composing circuits from different sources. The experiment layer
    always threads explicit Parameter objects, so sharing is intentional.
    """

    __slots__ = ("_name", "_uuid")

    _counter = 0

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"parameter name must be a non-empty string, got {name!r}")
        Parameter._counter += 1
        self._name = name
        self._uuid = Parameter._counter
        super().__init__({self: 1.0}, 0.0)

    @property
    def name(self) -> str:
        return self._name

    def __eq__(self, other) -> bool:
        if isinstance(other, Parameter):
            return self is other
        return ParameterExpression.__eq__(self, other)

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:
        return self._name


ParameterValue = Union[Number, ParameterExpression]


def bind_value(value: ParameterValue, bindings: Mapping[Parameter, Number]) -> float:
    """Resolve a gate angle to a float, raising if parameters remain free."""
    if isinstance(value, ParameterExpression):
        bound = value.bind(bindings)
        return bound.constant_value()
    return float(value)
