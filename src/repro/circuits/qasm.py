"""OpenQASM 2 export / import.

Discovered circuits need to leave the package — e.g. to be run on real
hardware toolchains — so the QBuilder output can be serialized to the
OpenQASM 2 subset covering our gate registry. The importer accepts exactly
what the exporter emits (plus whitespace/comments), which is enough for
round-tripping search results and for interop tests.

Symbolic parameters cannot be represented in QASM 2; circuits must be bound
before export.
"""

from __future__ import annotations

import math
import re

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATE_REGISTRY

__all__ = ["to_qasm", "from_qasm", "QasmError"]


class QasmError(ValueError):
    """Raised on malformed QASM input or unexportable circuits."""


_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'

#: gates we emit verbatim; everything else needs a definition block
_NATIVE = {
    "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg",
    "rx", "ry", "rz", "p", "u3", "cx", "cz", "cp", "rzz", "rxx", "swap",
}


def to_qasm(circuit: QuantumCircuit) -> str:
    """Serialize a fully-bound circuit to OpenQASM 2 text."""
    if circuit.parameters:
        names = sorted(p.name for p in circuit.parameters)
        raise QasmError(f"cannot export unbound parameters {names}; bind first")
    lines = [_HEADER.rstrip(), f"qreg q[{circuit.num_qubits}];"]
    for instr in circuit.instructions:
        name = instr.gate.name
        if name not in _NATIVE:
            raise QasmError(f"gate '{name}' has no QASM 2 spelling")
        qubits = ",".join(f"q[{q}]" for q in instr.qubits)
        if instr.gate.params:
            params = ",".join(f"{float(p):.17g}" for p in instr.gate.params)
            lines.append(f"{name}({params}) {qubits};")
        else:
            lines.append(f"{name} {qubits};")
    return "\n".join(lines) + "\n"


_GATE_RE = re.compile(
    r"^(?P<name>[a-z][a-z0-9_]*)"
    r"(?:\((?P<params>[^)]*)\))?"
    r"\s+(?P<qubits>q\[\d+\](?:\s*,\s*q\[\d+\])*)\s*;$"
)
_QREG_RE = re.compile(r"^qreg\s+q\[(?P<size>\d+)\]\s*;$")

_CONSTANTS = {"pi": math.pi}


def _eval_param(text: str) -> float:
    """Evaluate a QASM parameter expression (numbers, pi, + - * /)."""
    text = text.strip()
    if not re.fullmatch(r"[0-9pieE\.\+\-\*/\(\) ]+", text):
        raise QasmError(f"unsupported parameter expression: {text!r}")
    try:
        return float(eval(text, {"__builtins__": {}}, _CONSTANTS))  # noqa: S307
    except Exception as exc:  # pragma: no cover - defensive
        raise QasmError(f"cannot evaluate parameter {text!r}: {exc}") from exc


def from_qasm(text: str) -> QuantumCircuit:
    """Parse the QASM 2 subset emitted by :func:`to_qasm`."""
    circuit: QuantumCircuit | None = None
    for raw_line in text.splitlines():
        line = raw_line.split("//")[0].strip()
        if not line:
            continue
        if line.startswith("OPENQASM") or line.startswith("include"):
            continue
        m = _QREG_RE.match(line)
        if m:
            if circuit is not None:
                raise QasmError("multiple qreg declarations")
            circuit = QuantumCircuit(int(m.group("size")))
            continue
        m = _GATE_RE.match(line)
        if not m:
            raise QasmError(f"cannot parse line: {raw_line!r}")
        if circuit is None:
            raise QasmError("gate before qreg declaration")
        name = m.group("name")
        if name not in GATE_REGISTRY:
            raise QasmError(f"unknown gate '{name}'")
        params: list[float] = []
        if m.group("params") is not None:
            params = [_eval_param(p) for p in m.group("params").split(",")]
        qubits = [int(q) for q in re.findall(r"q\[(\d+)\]", m.group("qubits"))]
        circuit.append_named(name, qubits, *params)
    if circuit is None:
        raise QasmError("no qreg declaration found")
    return circuit
