"""Circuit simplification passes.

The search emits many structurally redundant candidates (e.g. two RX gates
in a row when the controller repeats a token). These passes normalize
circuits before simulation so the evaluator never pays for gates that do
nothing, and so structurally-equal candidates hash to the same cache key:

* :func:`merge_rotations` — adjacent same-axis rotations on a wire fuse by
  angle addition (``RX(a) RX(b) -> RX(a+b)``); works on symbolic angles
  because :class:`ParameterExpression` is closed under addition.
* :func:`cancel_inverse_pairs` — adjacent self-inverse pairs (H–H, X–X,
  CX–CX on the same qubits) annihilate.
* :func:`drop_identities` — removes ``id`` gates and zero-angle rotations.
* :func:`simplify` — runs the passes to a fixed point.
"""

from __future__ import annotations

from repro.circuits.circuit import Instruction, QuantumCircuit
from repro.circuits.dag import CircuitDag
from repro.circuits.gates import Gate, make_gate
from repro.circuits.parameters import ParameterExpression

__all__ = [
    "merge_rotations",
    "cancel_inverse_pairs",
    "drop_identities",
    "simplify",
]

_ROTATIONS = {"rx", "ry", "rz", "p", "rzz", "rxx", "cp"}


def _is_zero_angle(gate: Gate) -> bool:
    if gate.name not in _ROTATIONS:
        return False
    (angle,) = gate.params
    if isinstance(angle, ParameterExpression):
        return angle.is_constant() and angle.constant_value() == 0.0
    return float(angle) == 0.0


def drop_identities(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove ``id`` gates and rotations by exactly zero."""
    out = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for instr in circuit.instructions:
        if instr.gate.name == "id" or _is_zero_angle(instr.gate):
            continue
        out.append(instr.gate, instr.qubits)
    return out


def merge_rotations(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse chains of same-name rotations acting on identical qubit tuples.

    A single left-to-right sweep with a per-wire pending slot: when the next
    gate on all wires of a pending rotation is the same rotation on the same
    qubit tuple, add the angles and keep sweeping.
    """
    out: list[Instruction] = []
    # index into `out` of the last gate on each wire, for adjacency checks
    last_on_wire: list[int | None] = [None] * circuit.num_qubits
    for instr in circuit.instructions:
        prev_idx = None
        if instr.gate.name in _ROTATIONS:
            candidates = {last_on_wire[q] for q in instr.qubits}
            if len(candidates) == 1:
                (idx,) = candidates
                if idx is not None:
                    prev = out[idx]
                    if (
                        prev.gate.name == instr.gate.name
                        and prev.qubits == instr.qubits
                    ):
                        prev_idx = idx
        if prev_idx is not None:
            merged_angle = out[prev_idx].gate.params[0] + instr.gate.params[0]
            merged = make_gate(instr.gate.name, merged_angle)
            out[prev_idx] = Instruction(merged, instr.qubits)
        else:
            out.append(instr)
            for q in instr.qubits:
                last_on_wire[q] = len(out) - 1
    result = QuantumCircuit(circuit.num_qubits, name=circuit.name)
    for instr in out:
        result.append(instr.gate, instr.qubits)
    return result


def cancel_inverse_pairs(circuit: QuantumCircuit) -> QuantumCircuit:
    """Delete adjacent self-inverse pairs (same gate, same qubit tuple).

    Adjacency means: on *every* wire the two gates touch, they are wire
    neighbours — checked on the DAG so interleaved gates on other qubits
    don't block the cancellation.
    """
    dag = CircuitDag(circuit)
    dead: set[int] = set()
    for node in dag.nodes:
        if node.index in dead or not node.instruction.gate.spec.is_self_inverse:
            continue
        succ_indices = {node.succs[q] for q in node.qubits}
        if len(succ_indices) != 1:
            continue
        (succ_idx,) = succ_indices
        if succ_idx is None or succ_idx in dead:
            continue
        succ = dag.nodes[succ_idx]
        if (
            succ.instruction.gate == node.instruction.gate
            and succ.instruction.qubits == node.instruction.qubits
        ):
            dead.add(node.index)
            dead.add(succ_idx)
    return dag.to_circuit(skip=dead)


def simplify(circuit: QuantumCircuit, *, max_rounds: int = 20) -> QuantumCircuit:
    """Apply all passes until the circuit stops changing."""
    current = circuit
    for _ in range(max_rounds):
        next_circuit = drop_identities(
            cancel_inverse_pairs(merge_rotations(current))
        )
        if next_circuit == current:
            return current
        current = next_circuit
    return current
