"""ASCII circuit rendering.

Produces the textual equivalent of the paper's Fig. 6 circuit diagram::

    q0: ──RX(2*beta)──RY(2*beta)──
    q1: ──RX(2*beta)──RY(2*beta)──

Gates are packed into columns using the same ASAP layering as
:meth:`CircuitDag.layers`, so parallel gates share a column and the drawing
width equals circuit depth. Multi-qubit gates draw a vertical connector.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag

__all__ = ["draw_circuit", "gate_label"]


def gate_label(instr) -> str:
    """Short label like ``RX(2*beta)`` or ``H`` for one instruction."""
    name = instr.gate.name.upper()
    if not instr.gate.params:
        return name
    inner = ", ".join(repr(p) for p in instr.gate.params)
    return f"{name}({inner})"


def draw_circuit(circuit: QuantumCircuit) -> str:
    """Render ``circuit`` as an ASCII diagram, one row per qubit."""
    n = circuit.num_qubits
    if circuit.size() == 0:
        return "\n".join(f"q{q}: ──" for q in range(n))

    layers = CircuitDag(circuit).layers()
    # Build the cell grid: cells[q][layer] = text or connector marker.
    cells: list[list[str]] = [["" for _ in layers] for _ in range(n)]
    spans: list[list[bool]] = [[False for _ in layers] for _ in range(n)]
    for col, layer in enumerate(layers):
        for node in layer:
            qs = node.qubits
            label = gate_label(node.instruction)
            if len(qs) == 1:
                cells[qs[0]][col] = label
            else:
                lo, hi = min(qs), max(qs)
                if node.gate_name == "cx":
                    # control dot on first listed qubit, ⊕ target on second
                    control, target = qs
                    cells[control][col] = "●"
                    cells[target][col] = "⊕"
                else:
                    cells[lo][col] = label
                    cells[hi][col] = "●" if node.gate_name != "swap" else "X"
                for q in range(lo + 1, hi):
                    spans[q][col] = True

    widths = [
        max(
            max((len(cells[q][col]) for q in range(n)), default=0),
            1,
        )
        for col in range(len(layers))
    ]

    prefix_len = len(f"q{n - 1}: ")
    lines = []
    for q in range(n):
        parts = [f"q{q}: ".ljust(prefix_len)]
        for col, width in enumerate(widths):
            text = cells[q][col]
            if text:
                pad = width - len(text)
                body = "─" * (pad // 2) + text + "─" * (pad - pad // 2)
            elif spans[q][col]:
                body = "│".center(width, "─").replace(" ", "─")
            else:
                body = "─" * width
            parts.append("──" + body)
        parts.append("──")
        lines.append("".join(parts))
    return "\n".join(lines)
