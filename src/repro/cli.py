"""Command-line interface: ``python -m repro <command>``.

Four subcommands cover the workflows a user runs repeatedly:

* ``search`` — Algorithm 1 on a seeded dataset, optionally parallel,
  optionally saving the JSON result;
* ``evaluate`` — score one named mixer on a dataset (quick what-if);
* ``draw`` — render a mixer circuit as ASCII (Fig. 6 on demand);
* ``serve`` — run the long-lived search service (persistent job queue,
  shared cache, HTTP API — see ``docs/service.md``).

All stochastic inputs are seeded so runs are reproducible and scriptable.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from contextlib import ExitStack

from repro.core.evaluator import ENGINES, INIT_STRATEGIES, EvaluationConfig, Evaluator
from repro.core.runtime import RuntimeConfig
from repro.core.search import SearchConfig, search_mixer
from repro.experiments.discovery import draw_mixer
from repro.experiments.figures import render_table
from repro.graphs.datasets import DATASET_FAMILIES
from repro.optimizers import BATCH_MODES
from repro.parallel.executor import MultiprocessingExecutor, available_cores
from repro.simulators.backends import available_array_backends
from repro.surrogate.config import SurrogateConfig
from repro.workloads import available_workloads

__all__ = ["main", "build_parser"]


def _dataset(name: str, count: int, seed: int):
    if name not in DATASET_FAMILIES:
        raise ValueError(
            f"unknown dataset {name!r}; options: {', '.join(sorted(DATASET_FAMILIES))}"
        )
    return DATASET_FAMILIES[name][1](count, dataset_seed=seed)


def _workload(args) -> str:
    """The problem key governing this run: explicit ``--workload`` when
    given (must agree with the dataset family), else the family's."""
    implied = DATASET_FAMILIES[args.dataset][0]
    if args.workload is None or args.workload == implied:
        return implied
    raise SystemExit(
        f"--dataset {args.dataset} implies --workload {implied}, "
        f"got --workload {args.workload}; drop one of the two"
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="er",
                        choices=sorted(DATASET_FAMILIES),
                        help="seeded dataset family (default: er); each "
                             "family implies its problem's workload")
    parser.add_argument("--workload", default=None,
                        choices=list(available_workloads()),
                        help="problem from the workloads registry; defaults "
                             "to the one the dataset family implies "
                             "(er/regular -> maxcut)")
    parser.add_argument("--init-strategy", default="uniform",
                        choices=list(INIT_STRATEGIES),
                        help="optimizer initialization: uniform (the "
                             "paper's), ramp, or interp (warm-start each "
                             "depth from the previous depth's parameters)")
    parser.add_argument("--graphs", type=int, default=3, help="graphs in the workload")
    parser.add_argument("--dataset-seed", type=int, default=2023)
    parser.add_argument("--steps", type=int, default=60, help="optimizer budget")
    parser.add_argument("--optimizer", default="cobyla",
                        choices=["cobyla", "nelder_mead", "spsa", "adam"],
                        help="classical trainer (default: cobyla, the paper's)")
    parser.add_argument("--restarts", type=int, default=2,
                        help="independent optimizer restarts per graph; "
                             "batch-native optimizers train them as one batch")
    parser.add_argument("--batch-mode", default="auto", choices=list(BATCH_MODES),
                        help="restart training: auto batches whenever the "
                             "optimizer supports it; serial forces one run "
                             "per restart")
    parser.add_argument("--metric", default="best_sampled",
                        choices=["energy", "best_sampled"])
    parser.add_argument("--shots", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--engine", default="compiled", choices=list(ENGINES),
                        help="simulation engine (default: compiled fast path)")
    parser.add_argument("--array-backend", default="numpy",
                        choices=list(available_array_backends()),
                        help="array library behind the compiled engine: "
                             "numpy (default), mock_gpu (CPU stand-in with "
                             "device-cost accounting), cupy when installed; "
                             "unregistered backends are rejected here")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="QArchSearch reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    search = sub.add_parser("search", help="run Algorithm 1 on a dataset")
    _add_common(search)
    search.add_argument("--p-max", type=int, default=2)
    search.add_argument("--k-min", type=int, default=2)
    search.add_argument("--k-max", type=int, default=2)
    search.add_argument("--mode", default="combinations",
                        choices=["combinations", "sequences", "permutations"])
    search.add_argument("--workers", type=int, default=0,
                        help="0 = serial, -1 = all cores")
    search.add_argument("--shards", type=int, default=1,
                        help="partition each depth's candidate bag across "
                             "this many shards (Fig. 2's outer level); "
                             "with --workers the pool is split one per "
                             "shard, and a dead shard's candidates "
                             "migrate to the survivors")
    search.add_argument("--shard-index", type=int, default=None,
                        help="run ONLY this shard (0-based) of every "
                             "depth in this process; launch one process "
                             "per index with the same --shards and a "
                             "shared --cache-dir, then merge with a "
                             "final run (all cache hits)")
    search.add_argument("--surrogate", action="store_true",
                        help="surrogate-assisted search: learn a ranker "
                             "from completed evaluations and evaluate only "
                             "the predicted-top slice of each depth's "
                             "candidates (incompatible with --shard-index)")
    search.add_argument("--surrogate-keep", type=float, default=0.5,
                        help="fraction of each depth's candidate pool "
                             "forwarded to real evaluation once the ranker "
                             "is trained (default: 0.5)")
    search.add_argument("--explore-floor", type=float, default=0.1,
                        help="fraction of the pool evaluated regardless of "
                             "predicted rank — a seeded uniform sample; "
                             "1.0 degenerates to the unfiltered search "
                             "(default: 0.1)")
    search.add_argument("--out", default=None, help="save SearchResult JSON")
    search.add_argument("--cache-dir", default=None,
                        help="persist candidate results + checkpoints here; "
                             "repeat runs become cache lookups")
    search.add_argument("--resume", action="store_true",
                        help="restore finished depths from the checkpoint "
                             "in --cache-dir")
    search.add_argument("--retries", type=int, default=2,
                        help="extra attempts per candidate on worker failure")
    search.add_argument("--job-timeout", type=float, default=None,
                        help="per-candidate wall-clock limit in seconds")

    evaluate = sub.add_parser("evaluate", help="score one mixer")
    _add_common(evaluate)
    evaluate.add_argument("mixer", help="comma-separated tokens, e.g. rx,ry")
    evaluate.add_argument("--p", type=int, default=1)

    draw = sub.add_parser("draw", help="draw a mixer circuit")
    draw.add_argument("mixer", help="comma-separated tokens, e.g. rx,ry")
    draw.add_argument("--qubits", type=int, default=10)

    serve = sub.add_parser(
        "serve", help="run the search service (HTTP API over a job queue)"
    )
    serve.add_argument("--dir", default=".repro-service", dest="service_dir",
                       help="service state directory: job queue, shared "
                            "result cache, checkpoints (default: "
                            ".repro-service)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8787,
                       help="listen port; 0 picks a free one")
    serve.add_argument("--max-concurrent", type=int, default=2,
                       help="sweeps multiplexed over the shared fleet")
    serve.add_argument("--workers", type=int, default=0,
                       help="worker threads in the shared fleet "
                            "(0 = all cores)")
    serve.add_argument("--cache-max-entries", type=int, default=None,
                       help="LRU-bound the shared result cache; in-flight "
                            "and pinned entries are never evicted")
    serve.add_argument("--lease-seconds", type=float, default=30.0,
                       help="claim lease: a wedged or killed slot's job is "
                            "reclaimed this long after its last heartbeat")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="claims a job may burn before it dead-letters "
                            "(terminal failed state)")
    serve.add_argument("--max-queue-depth", type=int, default=None,
                       help="admission control: reject submits with 429 "
                            "once this many jobs are queued or running")
    serve.add_argument("--max-queued-per-tenant", type=int, default=None,
                       help="per-tenant backlog cap (429 past it)")
    serve.add_argument("--max-running-per-tenant", type=int, default=None,
                       help="cap on one tenant's concurrently running sweeps")
    serve.add_argument("--drain-timeout", type=float, default=None,
                       help="graceful-shutdown grace period before running "
                            "sweeps are cancelled and requeued (default: "
                            "wait for them)")
    serve.add_argument("--tenant-weight", action="append", default=[],
                       metavar="NAME=W", dest="tenant_weights",
                       help="fairness weight for a tenant (repeatable); "
                            "unlisted tenants weigh 1.0")
    serve.add_argument("--trace-log", default=None, metavar="PATH",
                       help="append structured span events (JSONL) to this "
                            "file; off by default (metrics at /metrics need "
                            "no flag — see docs/observability.md)")

    return parser


def _eval_config(args) -> EvaluationConfig:
    return EvaluationConfig(
        optimizer=args.optimizer,
        max_steps=args.steps,
        restarts=args.restarts,
        batch_mode=args.batch_mode,
        seed=args.seed,
        metric=args.metric,
        shots=args.shots,
        engine=args.engine,
        array_backend=args.array_backend,
        workload=_workload(args),
        init_strategy=args.init_strategy,
    )


def _cmd_search(args) -> int:
    graphs = _dataset(args.dataset, args.graphs, args.dataset_seed)
    if args.surrogate and args.shard_index is not None:
        raise SystemExit(
            "--surrogate cannot run with --shard-index: the ranker trains "
            "on every previous-depth result in one process"
        )
    try:
        surrogate = SurrogateConfig(
            enabled=args.surrogate,
            keep_fraction=args.surrogate_keep,
            explore_floor=args.explore_floor,
            seed=args.seed,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from error
    config = SearchConfig(
        p_max=args.p_max, k_min=args.k_min, k_max=args.k_max,
        mode=args.mode, evaluation=_eval_config(args),
        surrogate=surrogate,
    )
    if args.resume and not args.cache_dir:
        raise SystemExit("--resume requires --cache-dir")
    if args.shards < 1:
        raise SystemExit("--shards must be >= 1")
    if args.shard_index is not None:
        if not args.cache_dir:
            raise SystemExit(
                "--shard-index requires --cache-dir (shard processes meet "
                "in the shared result cache)"
            )
        if not 0 <= args.shard_index < args.shards:
            raise SystemExit(
                f"--shard-index must be in [0, {args.shards}), "
                f"got {args.shard_index}"
            )
    runtime = RuntimeConfig(
        cache_dir=args.cache_dir,
        resume=args.resume,
        max_retries=args.retries,
        job_timeout=args.job_timeout,
        shards=args.shards,
        shard_index=args.shard_index,
    )
    workers = available_cores() if args.workers == -1 else args.workers
    sharded_here = args.shards > 1 and args.shard_index is None
    try:
        if workers and workers > 1:
            with ExitStack() as stack:
                if sharded_here:
                    # One pool per shard — each shard is its own failure
                    # domain, the in-process model of one pool per node.
                    # The remainder is spread so every requested worker
                    # lands in some shard.
                    base, extra = divmod(workers, args.shards)
                    executor: object = [
                        stack.enter_context(
                            MultiprocessingExecutor(
                                max(1, base + (1 if i < extra else 0))
                            )
                        )
                        for i in range(args.shards)
                    ]
                else:
                    executor = stack.enter_context(MultiprocessingExecutor(workers))
                result = search_mixer(
                    graphs, config, executor=executor, runtime=runtime
                )
        else:
            if args.job_timeout is not None:
                print(
                    "warning: --job-timeout has no effect with the serial "
                    "executor (jobs run inline); use --workers >= 2",
                    file=sys.stderr,
                )
            result = search_mixer(graphs, config, runtime=runtime)
    except ValueError as error:
        if args.shard_index is not None:
            # e.g. more shards than candidates: this process's slice is
            # empty at every depth — a configuration message, not a crash.
            raise SystemExit(str(error)) from error
        raise

    rows = [
        [d.p, str(d.best.tokens), d.best.ratio, f"{d.seconds:.1f}s"]
        for d in result.depth_results
        if d.evaluations  # a shard's slice of a narrow depth can be empty
    ]
    print(render_table(["p", "best mixer", "ratio", "time"], rows))
    print(f"\nwinner: {result.best_tokens} at p={result.best_p} "
          f"(ratio {result.best_ratio:.4f}; "
          f"{result.num_candidates} candidates, {result.total_seconds:.1f}s)")
    if args.cache_dir:
        print(f"cache: {result.config['cache_hits']} hits, "
              f"{result.config['cache_misses']} misses, "
              f"{result.config['restored_depths']} depths restored "
              f"({args.cache_dir})")
    if args.surrogate:
        print(f"surrogate: {result.config['surrogate_kept']} candidates "
              f"evaluated, {result.config['surrogate_skipped']} skipped by "
              f"the ranker")
    if args.shard_index is not None:
        print(f"shard {args.shard_index}/{args.shards}: partial sweep; "
              f"results persisted to the shared cache — merge with a run "
              f"omitting --shard-index")
    elif args.shards > 1:
        dead = result.config.get("dead_shards", [])
        print(f"shards: {args.shards} "
              f"({len(dead)} died{': ' + str(dead) if dead else ''}, "
              f"{result.config.get('jobs_migrated', 0)} candidates migrated)")
    if args.out:
        result.save(args.out)
        print(f"saved to {args.out}")
    return 0


def _parse_mixer(spec: str) -> tuple:
    tokens = tuple(t.strip() for t in spec.split(",") if t.strip())
    if not tokens:
        raise SystemExit(f"empty mixer spec {spec!r}")
    return tokens


def _cmd_evaluate(args) -> int:
    tokens = _parse_mixer(args.mixer)
    graphs = _dataset(args.dataset, args.graphs, args.dataset_seed)
    evaluator = Evaluator(graphs, _eval_config(args))
    result = evaluator.evaluate(tokens, args.p)
    rows = [
        [i, f"{e:.4f}", f"{r:.4f}"]
        for i, (e, r) in enumerate(zip(result.per_graph_energy, result.per_graph_ratio))
    ]
    print(render_table(["graph", "energy", "ratio"], rows))
    print(f"\nmixer {tokens} at p={args.p}: "
          f"mean energy {result.energy:.4f}, mean ratio {result.ratio:.4f} "
          f"({result.nfev} evaluations, {result.seconds:.1f}s)")
    return 0


def _cmd_draw(args) -> int:
    tokens = _parse_mixer(args.mixer)
    print(draw_mixer(tokens, args.qubits))
    return 0


def _cmd_serve(args) -> int:
    # Imported here so the three local subcommands never pay for the
    # service stack (and its async executor) at import time.
    from repro.service.server import serve

    if args.max_concurrent < 1:
        raise SystemExit("--max-concurrent must be >= 1")
    weights: dict[str, float] = {}
    for item in args.tenant_weights:
        name, sep, value = item.partition("=")
        try:
            if not sep or not name:
                raise ValueError
            weights[name] = float(value)
        except ValueError:
            raise SystemExit(
                f"--tenant-weight expects NAME=W (a float), got {item!r}"
            ) from None
    serve(
        args.service_dir,
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
        workers=args.workers or None,
        cache_max_entries=args.cache_max_entries,
        lease_seconds=args.lease_seconds,
        max_attempts=args.max_attempts,
        max_queue_depth=args.max_queue_depth,
        max_queued_per_tenant=args.max_queued_per_tenant,
        max_running_per_tenant=args.max_running_per_tenant,
        tenant_weights=weights or None,
        drain_timeout=args.drain_timeout,
        trace_log=args.trace_log,
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "search": _cmd_search,
        "evaluate": _cmd_evaluate,
        "draw": _cmd_draw,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
