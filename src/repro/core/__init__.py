"""QArchSearch core: predictor → QBuilder → evaluator → reward loop.

This package is the paper's contribution (Fig. 1 / Algorithm 1). The three
modules of §2.1 map to :mod:`~repro.core.predictor` (+
:mod:`~repro.core.controller` for the DNN variant),
:mod:`~repro.core.qbuilder`, and :mod:`~repro.core.evaluator`;
:func:`~repro.core.search.search_mixer` drives them across depths, serial
or parallel.
"""

from repro.core.alphabet import (
    DEFAULT_TOKENS,
    GateAlphabet,
    count_sequences,
    enumerate_search_space,
    gate_sequences,
    paper_space_size,
)
from repro.core.cache import ResultCache, SweepCheckpoint
from repro.core.constraints import (
    ConstrainedPredictor,
    Constraint,
    ConstraintSet,
    ForbiddenTokens,
    MaxGates,
    MaxMixerDepth,
    MinGates,
    NoAdjacentRepeats,
    PredicateConstraint,
    RequiredTokens,
    RequiresParameterizedGate,
)
from repro.core.controller import ControllerPredictor, PolicyController
from repro.core.depth_sweep import DepthPoint, noisy_score, warm_started_sweep
from repro.core.encoding import (
    PAD_INDEX,
    decode_encoding,
    encode_sequence,
    encoding_shape,
    is_valid_encoding,
    random_encoding,
)
from repro.core.evaluator import EvaluationConfig, Evaluator, classical_optima, evaluate_candidate
from repro.core.predictor import (
    EpsilonGreedyPredictor,
    ExhaustivePredictor,
    Predictor,
    RandomPredictor,
)
from repro.core.qbuilder import QBuilder
from repro.core.results import CandidateEvaluation, DepthResult, SearchResult
from repro.core.runtime import RuntimeConfig, SearchRuntime, predicted_cost
from repro.core.search import SearchConfig, search_mixer, search_with_predictor
from repro.core.sharded import ShardedRuntime, ShardFailedError

__all__ = [
    "GateAlphabet",
    "DEFAULT_TOKENS",
    "gate_sequences",
    "count_sequences",
    "enumerate_search_space",
    "paper_space_size",
    "encode_sequence",
    "decode_encoding",
    "encoding_shape",
    "random_encoding",
    "is_valid_encoding",
    "PAD_INDEX",
    "QBuilder",
    "Predictor",
    "RandomPredictor",
    "ExhaustivePredictor",
    "EpsilonGreedyPredictor",
    "PolicyController",
    "ControllerPredictor",
    "EvaluationConfig",
    "Evaluator",
    "classical_optima",
    "evaluate_candidate",
    "ResultCache",
    "SweepCheckpoint",
    "RuntimeConfig",
    "SearchRuntime",
    "ShardedRuntime",
    "ShardFailedError",
    "predicted_cost",
    "SearchConfig",
    "search_mixer",
    "search_with_predictor",
    "CandidateEvaluation",
    "DepthResult",
    "SearchResult",
    "Constraint",
    "ConstraintSet",
    "ConstrainedPredictor",
    "MaxGates",
    "MinGates",
    "ForbiddenTokens",
    "RequiredTokens",
    "RequiresParameterizedGate",
    "NoAdjacentRepeats",
    "MaxMixerDepth",
    "PredicateConstraint",
    "DepthPoint",
    "warm_started_sweep",
    "noisy_score",
]
