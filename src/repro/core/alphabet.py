"""The gate alphabet and the candidate search space.

§3.1 fixes the rotation-gate alphabet ``A_R`` with ``|A_R| = 5`` — the
tokens appearing in the figures are ``rx, ry, rz, h, p`` — and reports
"2500 possible circuit combinations" for depths ``p = 1..4``. That count
pins the interpretation: 2500 = 4 depths x 5^4 length-4 *sequences with
repetition* (a sequence repeating a gate subsumes shorter effective
combinations). :func:`paper_space_size` checks this arithmetic, and the
enumerators below expose the alternative conventions (unordered
combinations, permutations) so the ablation benches can sweep them.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator
from dataclasses import dataclass

from repro.qaoa.mixers import MIXER_TOKENS
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = [
    "DEFAULT_TOKENS",
    "GateAlphabet",
    "gate_sequences",
    "count_sequences",
    "enumerate_search_space",
    "paper_space_size",
]

#: the paper's A_R (|A_R| = 5)
DEFAULT_TOKENS: tuple[str, ...] = ("rx", "ry", "rz", "h", "p")


@dataclass(frozen=True)
class GateAlphabet:
    """An ordered token vocabulary with index maps (the controller needs a
    stable token <-> integer correspondence)."""

    tokens: tuple[str, ...] = DEFAULT_TOKENS

    def __post_init__(self) -> None:
        if not self.tokens:
            raise ValueError("alphabet must contain at least one token")
        if len(set(self.tokens)) != len(self.tokens):
            raise ValueError(f"duplicate tokens in alphabet {self.tokens}")
        unknown = [t for t in self.tokens if t not in MIXER_TOKENS]
        if unknown:
            raise ValueError(
                f"tokens {unknown} are not buildable mixers; valid: {MIXER_TOKENS}"
            )

    @property
    def size(self) -> int:
        return len(self.tokens)

    def index(self, token: str) -> int:
        try:
            return self.tokens.index(token)
        except ValueError:
            raise KeyError(f"token {token!r} not in alphabet {self.tokens}") from None

    def token(self, index: int) -> str:
        if not 0 <= index < self.size:
            raise IndexError(f"token index {index} out of range for size {self.size}")
        return self.tokens[index]

    def sample_sequence(self, length: int, rng) -> tuple[str, ...]:
        """Uniform random token sequence of the given length."""
        rng = as_rng(rng)
        return tuple(self.tokens[i] for i in rng.integers(0, self.size, size=length))

    def __iter__(self):
        return iter(self.tokens)

    def __len__(self) -> int:
        return self.size


def gate_sequences(
    alphabet: GateAlphabet,
    k: int,
    *,
    ordered: bool = True,
    repetition: bool = True,
) -> Iterator[tuple[str, ...]]:
    """All gate tuples of exactly ``k`` gates under the chosen convention.

    ordered+repetition = sequences (``size^k``); ordered only =
    permutations; repetition only = multisets; neither = combinations.
    """
    check_positive(k, "k")
    if ordered and repetition:
        yield from itertools.product(alphabet.tokens, repeat=k)
    elif ordered and not repetition:
        yield from itertools.permutations(alphabet.tokens, k)
    elif not ordered and repetition:
        yield from itertools.combinations_with_replacement(alphabet.tokens, k)
    else:
        yield from itertools.combinations(alphabet.tokens, k)


def count_sequences(size: int, k: int, *, ordered: bool = True, repetition: bool = True) -> int:
    """Closed-form count matching :func:`gate_sequences`."""
    check_positive(size, "size")
    check_positive(k, "k")
    if ordered and repetition:
        return size**k
    if ordered and not repetition:
        return math.perm(size, k) if k <= size else 0
    if not ordered and repetition:
        return math.comb(size + k - 1, k)
    return math.comb(size, k) if k <= size else 0


def enumerate_search_space(
    alphabet: GateAlphabet,
    k_max: int,
    *,
    k_min: int = 1,
    mode: str = "sequences",
    deduplicate: bool = True,
) -> list[tuple[str, ...]]:
    """Every candidate mixer with k_min..k_max gates.

    Modes: ``"sequences"`` (ordered, repetition — the paper's space),
    ``"combinations"`` (unordered, no repetition — the Fig. 7 labels),
    ``"permutations"``. With ``deduplicate`` adjacent-duplicate-free
    canonical forms are kept once (e.g. ``('rx','rx')`` merges to a single
    RX(4 beta) and is retained, but repeated enumeration duplicates are
    dropped). ``k_min=2`` restricts to multi-gate mixers, the space the
    paper's Figs. 6-7 draw candidates from.
    """
    check_positive(k_max, "k_max")
    check_positive(k_min, "k_min")
    if k_min > k_max:
        raise ValueError(f"k_min {k_min} exceeds k_max {k_max}")
    kwargs = {
        "sequences": dict(ordered=True, repetition=True),
        "permutations": dict(ordered=True, repetition=False),
        "combinations": dict(ordered=False, repetition=False),
        "multisets": dict(ordered=False, repetition=True),
    }.get(mode)
    if kwargs is None:
        raise ValueError(
            f"unknown mode {mode!r}; options: sequences, permutations, "
            "combinations, multisets"
        )
    seen = set()
    out: list[tuple[str, ...]] = []
    for k in range(k_min, k_max + 1):
        for seq in gate_sequences(alphabet, k, **kwargs):
            if deduplicate:
                if seq in seen:
                    continue
                seen.add(seq)
            out.append(seq)
    return out


def paper_space_size(
    p_max: int = 4, k: int = 4, alphabet_size: int = 5
) -> int:
    """The §3.1 count: ``p_max`` depths x ``alphabet_size^k`` sequences.

    Defaults reproduce the paper's 2500 (= 4 x 5^4).
    """
    return p_max * count_sequences(alphabet_size, k, ordered=True, repetition=True)
