"""Persistent candidate-result cache and depth-sweep checkpoints.

The search runtime treats a candidate evaluation as a pure function of

* the workload graphs (node/edge/weight content),
* the mixer tokens and QAOA depth ``p``,
* the full :class:`~repro.core.evaluator.EvaluationConfig` — every field,
  including the simulation ``engine`` and its ``array_backend``, so
  switching engines or array libraries (or changing their defaults) can
  never replay a stale result

so its result can be keyed by a stable fingerprint and stored on disk.
Repeat proposals within a search, repeated depths, and whole re-runs then
cost a lookup instead of a training loop. Storage is a single sqlite file
under ``cache_dir`` (WAL mode with a busy timeout, so the usual single
parent writer may be joined by sibling shard processes — see
``--shard-index`` in the CLI — without corruption), which survives kills
and is cheap to ship between machines. Writes are batched: ``put`` buffers
and every ``flush_every``-th put commits one transaction, so wide depths
pay one fsync per batch instead of per evaluation; the cache is therefore
also the **partial-depth checkpoint** — after a mid-depth kill, everything
up to the last flush is recovered by per-candidate lookups on restart.

Since the search service multiplexes N concurrent sweeps over one store,
:class:`ResultCache` is also **multi-tenant**: thread-safe throughout,
size-bounded via ``max_entries`` (LRU eviction that never touches
in-flight keys), and — with ``shared=True`` — coordinating: the first
sweep to claim a missing key evaluates it, every other sweep on the same
workload fingerprint waits for that put instead of duplicating the
training run.

:class:`SweepCheckpoint` lives in the same directory and records finished
*depths* of a sweep keyed by a fingerprint of everything that defines the
depth (workload + config + candidate list + p), so a killed search resumes
exactly where it stopped and a checkpoint can never be replayed against a
different search.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from collections import Counter
from collections.abc import Sequence
from dataclasses import asdict
from pathlib import Path

from repro.core.evaluator import EvaluationConfig
from repro.core.results import CandidateEvaluation, DepthResult
from repro.graphs.generators import Graph
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "ResultCache",
    "SweepCheckpoint",
    "candidate_key",
    "config_fingerprint",
    "depth_fingerprint",
    "workload_fingerprint",
]


def _digest(payload: object) -> str:
    """Stable sha256 hex digest of a JSON-serializable payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def workload_fingerprint(graphs: Sequence[Graph]) -> str:
    """Content hash of the workload: node counts, edges, and weights."""
    return _digest(
        [
            [g.num_nodes, [list(e) for e in g.edges], list(g.weights)]
            for g in graphs
        ]
    )


def config_fingerprint(config: EvaluationConfig) -> str:
    """Hash of every field that fixes how a candidate is trained/scored."""
    return _digest(asdict(config))


def candidate_key(
    workload_fp: str,
    tokens: Sequence[str],
    p: int,
    config_fp: str,
) -> str:
    """Cache key of one candidate evaluation."""
    return _digest([workload_fp, list(tokens), int(p), config_fp])


def depth_fingerprint(
    workload_fp: str,
    config_fp: str,
    candidates: Sequence[Sequence[str]],
    p: int,
) -> str:
    """Checkpoint key of one finished depth of a sweep (order-sensitive)."""
    return _digest([workload_fp, config_fp, [list(c) for c in candidates], int(p)])


# The cache's row payload is the same wire object the HTTP API and the
# result files use — CandidateEvaluation.to_dict/from_dict, one schema.
def _serialize_evaluation(evaluation: CandidateEvaluation) -> dict:
    return evaluation.to_dict()


def _deserialize_evaluation(data: dict) -> CandidateEvaluation:
    return CandidateEvaluation.from_dict(data)


class ResultCache:
    """On-disk candidate-evaluation store with hit/miss/eviction accounting.

    One sqlite file per ``cache_dir``; keys are the fingerprints above, so
    any change to the workload, the tokens, the depth, or the evaluation
    config invalidates naturally (the key changes, nothing is ever stale).

    ``flush_every`` batches commits: puts accumulate in an in-memory
    buffer (reads see them immediately) and every ``flush_every``-th put
    writes the batch in one transaction via ``executemany``. 1 (the
    default) keeps the historic commit-per-put durability; the search
    runtime raises it to amortize fsyncs across wide depths, bounding the
    work a mid-depth kill can lose to ``flush_every - 1`` evaluations.

    **Multi-tenancy.** All access is thread-safe (one lock guards the
    buffer, the counters, and the sqlite handle), so one instance can be
    shared by N concurrent sweeps — the search service's deployment shape.
    Two knobs turn the single-writer store into a shared one:

    * ``max_entries`` bounds the store with LRU eviction: every put stamps
      (and, when bounded, every hit refreshes) a ``last_used`` recency
      column, and each flush deletes the least-recently-used overflow.
      Keys that are **in flight** — claimed for evaluation, explicitly
      :meth:`pin`-ned, or still in the write buffer — are never evicted,
      so a result another tenant is about to read cannot vanish under it.
    * ``shared=True`` enables cross-tenant coordination: a tenant that
      misses calls :meth:`claim` before evaluating; the first claimant
      owns the evaluation and every other tenant :meth:`wait_for`-s the
      result instead of duplicating the training run. ``put`` resolves
      the claim and wakes the waiters; a failed owner calls
      :meth:`unclaim` so waiters fall back to evaluating themselves.
    """

    SCHEMA_VERSION = 1

    def __init__(
        self,
        cache_dir: str | Path,
        *,
        flush_every: int = 1,
        max_entries: int | None = None,
        shared: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.cache_dir / "results.sqlite"
        self.flush_every = int(flush_every)
        self.max_entries = max_entries
        self.shared = bool(shared)
        # check_same_thread=False + self._lock: concurrent sweeps (service
        # threads) and the sharded runtime's parent thread share safely.
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        # Shard processes (CLI --shard-index) share one results file; the
        # busy timeout serializes their commits instead of erroring out.
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " key TEXT PRIMARY KEY,"
            " value TEXT NOT NULL,"
            " schema INTEGER NOT NULL)"
        )
        # Pre-eviction caches lack the recency column; migrate in place
        # (existing rows read as last_used=0, i.e. evicted first — correct,
        # nothing ever recorded using them).
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(results)")
        }
        if "last_used" not in columns:
            self._conn.execute(
                "ALTER TABLE results ADD COLUMN last_used REAL NOT NULL DEFAULT 0"
            )
        self._conn.commit()
        self._lock = threading.RLock()
        self._available = threading.Condition(self._lock)
        self._buffer: dict[str, CandidateEvaluation] = {}
        self._pins: Counter[str] = Counter()
        self._claims: set[str] = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.metrics = metrics
        self._m: dict[str, object] | None = None
        if metrics is not None:
            self._m = {
                "hits": metrics.counter(
                    "repro_cache_hits_total",
                    "Candidate lookups served from the cache",
                ),
                "misses": metrics.counter(
                    "repro_cache_misses_total",
                    "Candidate lookups that required an evaluation",
                ),
                "evictions": metrics.counter(
                    "repro_cache_evictions_total",
                    "Entries removed by LRU overflow eviction",
                ),
                "flush": metrics.histogram(
                    "repro_cache_flush_seconds",
                    "Commit latency of one buffered write batch",
                ),
                "claim_wait": metrics.histogram(
                    "repro_cache_claim_wait_seconds",
                    "Time a tenant waited on another tenant's claimed key",
                ),
            }

    def _count(self, name: str, n: int = 1) -> None:
        """Bump a lifetime counter and, when wired, its metric mirror.
        Callers hold ``self._lock``."""
        setattr(self, name, getattr(self, name) + n)
        if self._m is not None:
            self._m[name].inc(n)

    # -- mapping interface -------------------------------------------------

    def get(self, key: str) -> CandidateEvaluation | None:
        with self._lock:
            buffered = self._buffer.get(key)
            if buffered is not None:
                self._count("hits")
                return buffered
            row = self._conn.execute(
                "SELECT value FROM results WHERE key = ? AND schema = ?",
                (key, self.SCHEMA_VERSION),
            ).fetchone()
            if row is None:
                self._count("misses")
                return None
            self._count("hits")
            if self.max_entries is not None:
                # LRU refresh only matters when eviction is on; unbounded
                # caches keep reads write-free.
                self._conn.execute(
                    "UPDATE results SET last_used = ? WHERE key = ?",
                    (time.time(), key),
                )
                self._conn.commit()
            return _deserialize_evaluation(json.loads(row[0]))

    def count_hit(self) -> None:
        """Record a hit served without a lookup (e.g. an in-depth repeat
        proposal fanned out from one training run)."""
        with self._lock:
            self._count("hits")

    def put(self, key: str, evaluation: CandidateEvaluation) -> None:
        with self._lock:
            self._buffer[key] = evaluation
            self._resolve_claim(key)
            if len(self._buffer) >= self.flush_every:
                self.flush()

    def flush(self) -> None:
        """Commit all buffered puts in one transaction, then evict LRU
        overflow (never in-flight/pinned/buffered keys)."""
        with self._lock:
            if self._buffer:
                t0 = time.perf_counter() if self._m is not None else 0.0
                now = time.time()
                self._conn.executemany(
                    "INSERT OR REPLACE INTO results"
                    " (key, value, schema, last_used) VALUES (?, ?, ?, ?)",
                    [
                        (
                            key,
                            json.dumps(_serialize_evaluation(evaluation)),
                            self.SCHEMA_VERSION,
                            now,
                        )
                        for key, evaluation in self._buffer.items()
                    ],
                )
                written = len(self._buffer)
                self._conn.commit()
                self._buffer.clear()
                if self._m is not None:
                    elapsed = time.perf_counter() - t0
                    self._m["flush"].observe(elapsed)
                    self.metrics.trace_event(
                        "cache_flush", elapsed, entries=written
                    )
            self._evict_overflow()

    # -- multi-tenant coordination -----------------------------------------

    def pin(self, key: str) -> None:
        """Protect ``key`` from eviction until :meth:`unpin` (refcounted)."""
        with self._lock:
            self._pins[key] += 1

    def unpin(self, key: str) -> None:
        with self._lock:
            self._pins[key] -= 1
            if self._pins[key] <= 0:
                del self._pins[key]

    def claim(self, key: str) -> bool:
        """Register intent to evaluate ``key``; True = caller owns it.

        In shared mode the first claimant wins and later claimants get
        False (they should :meth:`wait_for` the owner's put instead of
        re-evaluating). Claimed keys are pinned against eviction. With
        ``shared=False`` there are no competing tenants by contract, so
        every claim trivially succeeds.
        """
        if not self.shared:
            return True
        with self._lock:
            if key in self._claims:
                return False
            self._claims.add(key)
            self._pins[key] += 1
            return True

    def unclaim(self, key: str) -> None:
        """Drop an unfulfilled claim (evaluation failed or was abandoned),
        releasing any tenants waiting on it to fend for themselves."""
        with self._lock:
            self._resolve_claim(key)

    def wait_for(
        self, key: str, timeout: float | None = None
    ) -> CandidateEvaluation | None:
        """Block until ``key``'s claim resolves, then return its value.

        Returns None when the owner abandoned the claim without a put, or
        when ``timeout`` (seconds) expires first — the caller should then
        evaluate the candidate itself.
        """
        t0 = time.monotonic()
        deadline = None if timeout is None else t0 + timeout
        with self._available:
            while key in self._claims:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._available.wait(remaining)
            if self._m is not None:
                elapsed = time.monotonic() - t0
                self._m["claim_wait"].observe(elapsed)
                self.metrics.trace_event("cache_claim_wait", elapsed, key=key)
            return self.get(key)

    def _resolve_claim(self, key: str) -> None:
        # lock held
        if key in self._claims:
            self._claims.remove(key)
            self.unpin(key)
            self._available.notify_all()

    # -- eviction ----------------------------------------------------------

    def _evict_overflow(self) -> None:
        # lock held, buffer already committed
        if self.max_entries is None:
            return
        total = int(
            self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        )
        excess = total - self.max_entries
        if excess <= 0:
            return
        protected = set(self._buffer) | set(self._pins) | set(self._claims)
        victims = [
            key
            for (key,) in self._conn.execute(
                "SELECT key FROM results ORDER BY last_used ASC, rowid ASC"
            )
            if key not in protected
        ][:excess]
        if not victims:
            return
        self._conn.executemany(
            "DELETE FROM results WHERE key = ?", [(key,) for key in victims]
        )
        self._conn.commit()
        self._count("evictions", len(victims))

    # -- sizing / lifecycle ------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            self.flush()
            return int(
                self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
            )

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._buffer:
                return True
            row = self._conn.execute(
                "SELECT 1 FROM results WHERE key = ? AND schema = ?",
                (key, self.SCHEMA_VERSION),
            ).fetchone()
            return row is not None

    def close(self) -> None:
        with self._lock:
            self.flush()
            self._conn.close()

    def __enter__(self) -> ResultCache:
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SweepCheckpoint:
    """Depth-level checkpoint of a sweep, one JSON file per cache dir.

    ``save_depth`` is atomic (write-temp + rename), so a search killed
    mid-write leaves the previous checkpoint intact. Entries are keyed by
    :func:`depth_fingerprint`; loading with a key that does not match —
    because the workload, config, or candidate list changed — simply
    misses, it can never resurrect results for a different search.
    """

    FILENAME = "checkpoint.json"

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.cache_dir / self.FILENAME
        self._entries: dict[str, dict] = {}
        if self.path.exists():
            try:
                data = json.loads(self.path.read_text())
            except (json.JSONDecodeError, OSError):
                data = {}
            if data.get("format") == "repro-sweep-checkpoint-v1":
                self._entries = data.get("depths", {})

    def load_depth(self, key: str) -> DepthResult | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        evaluations = tuple(
            _deserialize_evaluation(e) for e in entry["evaluations"]
        )
        return DepthResult(entry["p"], evaluations, entry.get("seconds", 0.0))

    def save_depth(self, key: str, depth_result: DepthResult) -> None:
        self._entries[key] = {
            "p": depth_result.p,
            "seconds": depth_result.seconds,
            "evaluations": [
                _serialize_evaluation(e) for e in depth_result.evaluations
            ],
        }
        self._flush()

    def clear(self) -> None:
        self._entries = {}
        if self.path.exists():
            self.path.unlink()

    def __len__(self) -> int:
        return len(self._entries)

    def _flush(self) -> None:
        payload = {
            "format": "repro-sweep-checkpoint-v1",
            "depths": self._entries,
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(self.path)
