"""Persistent candidate-result cache and depth-sweep checkpoints.

The search runtime treats a candidate evaluation as a pure function of

* the workload graphs (node/edge/weight content),
* the mixer tokens and QAOA depth ``p``,
* the full :class:`~repro.core.evaluator.EvaluationConfig` — every field,
  including the simulation ``engine`` and its ``array_backend``, so
  switching engines or array libraries (or changing their defaults) can
  never replay a stale result

so its result can be keyed by a stable fingerprint and stored on disk.
Repeat proposals within a search, repeated depths, and whole re-runs then
cost a lookup instead of a training loop. Storage is a single sqlite file
under ``cache_dir`` (WAL mode with a busy timeout, so the usual single
parent writer may be joined by sibling shard processes — see
``--shard-index`` in the CLI — without corruption), which survives kills
and is cheap to ship between machines. Writes are batched: ``put`` buffers
and every ``flush_every``-th put commits one transaction, so wide depths
pay one fsync per batch instead of per evaluation; the cache is therefore
also the **partial-depth checkpoint** — after a mid-depth kill, everything
up to the last flush is recovered by per-candidate lookups on restart.

:class:`SweepCheckpoint` lives in the same directory and records finished
*depths* of a sweep keyed by a fingerprint of everything that defines the
depth (workload + config + candidate list + p), so a killed search resumes
exactly where it stopped and a checkpoint can never be replayed against a
different search.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from collections.abc import Sequence
from dataclasses import asdict
from pathlib import Path

from repro.core.evaluator import EvaluationConfig
from repro.core.results import CandidateEvaluation, DepthResult
from repro.graphs.generators import Graph

__all__ = [
    "ResultCache",
    "SweepCheckpoint",
    "candidate_key",
    "config_fingerprint",
    "depth_fingerprint",
    "workload_fingerprint",
]


def _digest(payload: object) -> str:
    """Stable sha256 hex digest of a JSON-serializable payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def workload_fingerprint(graphs: Sequence[Graph]) -> str:
    """Content hash of the workload: node counts, edges, and weights."""
    return _digest(
        [
            [g.num_nodes, [list(e) for e in g.edges], list(g.weights)]
            for g in graphs
        ]
    )


def config_fingerprint(config: EvaluationConfig) -> str:
    """Hash of every field that fixes how a candidate is trained/scored."""
    return _digest(asdict(config))


def candidate_key(
    workload_fp: str,
    tokens: Sequence[str],
    p: int,
    config_fp: str,
) -> str:
    """Cache key of one candidate evaluation."""
    return _digest([workload_fp, list(tokens), int(p), config_fp])


def depth_fingerprint(
    workload_fp: str,
    config_fp: str,
    candidates: Sequence[Sequence[str]],
    p: int,
) -> str:
    """Checkpoint key of one finished depth of a sweep (order-sensitive)."""
    return _digest([workload_fp, config_fp, [list(c) for c in candidates], int(p)])


def _serialize_evaluation(evaluation: CandidateEvaluation) -> dict:
    return asdict(evaluation) | {"tokens": list(evaluation.tokens)}


def _deserialize_evaluation(data: dict) -> CandidateEvaluation:
    return CandidateEvaluation(
        tokens=tuple(data["tokens"]),
        p=int(data["p"]),
        energy=data["energy"],
        ratio=data["ratio"],
        per_graph_energy=tuple(data.get("per_graph_energy", ())),
        per_graph_ratio=tuple(data.get("per_graph_ratio", ())),
        nfev=data.get("nfev", 0),
        seconds=data.get("seconds", 0.0),
    )


class ResultCache:
    """On-disk candidate-evaluation store with hit/miss accounting.

    One sqlite file per ``cache_dir``; keys are the fingerprints above, so
    any change to the workload, the tokens, the depth, or the evaluation
    config invalidates naturally (the key changes, nothing is ever stale).

    ``flush_every`` batches commits: puts accumulate in an in-memory
    buffer (reads see them immediately) and every ``flush_every``-th put
    writes the batch in one transaction via ``executemany``. 1 (the
    default) keeps the historic commit-per-put durability; the search
    runtime raises it to amortize fsyncs across wide depths, bounding the
    work a mid-depth kill can lose to ``flush_every - 1`` evaluations.
    """

    SCHEMA_VERSION = 1

    def __init__(self, cache_dir: str | Path, *, flush_every: int = 1) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.cache_dir / "results.sqlite"
        self.flush_every = int(flush_every)
        self._conn = sqlite3.connect(str(self.path))
        self._conn.execute("PRAGMA journal_mode=WAL")
        # Shard processes (CLI --shard-index) share one results file; the
        # busy timeout serializes their commits instead of erroring out.
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS results ("
            " key TEXT PRIMARY KEY,"
            " value TEXT NOT NULL,"
            " schema INTEGER NOT NULL)"
        )
        self._conn.commit()
        self._buffer: dict[str, CandidateEvaluation] = {}
        self.hits = 0
        self.misses = 0

    # -- mapping interface -------------------------------------------------

    def get(self, key: str) -> CandidateEvaluation | None:
        buffered = self._buffer.get(key)
        if buffered is not None:
            self.hits += 1
            return buffered
        row = self._conn.execute(
            "SELECT value FROM results WHERE key = ? AND schema = ?",
            (key, self.SCHEMA_VERSION),
        ).fetchone()
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        return _deserialize_evaluation(json.loads(row[0]))

    def put(self, key: str, evaluation: CandidateEvaluation) -> None:
        self._buffer[key] = evaluation
        if len(self._buffer) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Commit all buffered puts in one transaction."""
        if not self._buffer:
            return
        self._conn.executemany(
            "INSERT OR REPLACE INTO results (key, value, schema) VALUES (?, ?, ?)",
            [
                (key, json.dumps(_serialize_evaluation(evaluation)), self.SCHEMA_VERSION)
                for key, evaluation in self._buffer.items()
            ],
        )
        self._conn.commit()
        self._buffer.clear()

    def __len__(self) -> int:
        self.flush()
        return int(self._conn.execute("SELECT COUNT(*) FROM results").fetchone()[0])

    def __contains__(self, key: str) -> bool:
        if key in self._buffer:
            return True
        row = self._conn.execute(
            "SELECT 1 FROM results WHERE key = ? AND schema = ?",
            (key, self.SCHEMA_VERSION),
        ).fetchone()
        return row is not None

    def close(self) -> None:
        self.flush()
        self._conn.close()

    def __enter__(self) -> ResultCache:
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SweepCheckpoint:
    """Depth-level checkpoint of a sweep, one JSON file per cache dir.

    ``save_depth`` is atomic (write-temp + rename), so a search killed
    mid-write leaves the previous checkpoint intact. Entries are keyed by
    :func:`depth_fingerprint`; loading with a key that does not match —
    because the workload, config, or candidate list changed — simply
    misses, it can never resurrect results for a different search.
    """

    FILENAME = "checkpoint.json"

    def __init__(self, cache_dir: str | Path) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.cache_dir / self.FILENAME
        self._entries: dict[str, dict] = {}
        if self.path.exists():
            try:
                data = json.loads(self.path.read_text())
            except (json.JSONDecodeError, OSError):
                data = {}
            if data.get("format") == "repro-sweep-checkpoint-v1":
                self._entries = data.get("depths", {})

    def load_depth(self, key: str) -> DepthResult | None:
        entry = self._entries.get(key)
        if entry is None:
            return None
        evaluations = tuple(
            _deserialize_evaluation(e) for e in entry["evaluations"]
        )
        return DepthResult(entry["p"], evaluations, entry.get("seconds", 0.0))

    def save_depth(self, key: str, depth_result: DepthResult) -> None:
        self._entries[key] = {
            "p": depth_result.p,
            "seconds": depth_result.seconds,
            "evaluations": [
                _serialize_evaluation(e) for e in depth_result.evaluations
            ],
        }
        self._flush()

    def clear(self) -> None:
        self._entries = {}
        if self.path.exists():
            self.path.unlink()

    def __len__(self) -> int:
        return len(self._entries)

    def _flush(self) -> None:
        payload = {
            "format": "repro-sweep-checkpoint-v1",
            "depths": self._entries,
        }
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload))
        tmp.replace(self.path)
