"""Search-space constraints.

§6: "Our software can also incorporate arbitrary constraints in the search
procedure and thus deliver custom architectures that exceed performance of
manually designed ones." This module makes that concrete: a constraint is a
predicate over candidate token sequences, composable into a
:class:`ConstraintSet` that filters enumeration, wraps predictors (rejected
proposals are resampled), and annotates results with why candidates were
excluded.

Built-in constraints cover the practical cases: gate-count budgets,
forbidden/required tokens, alphabet restrictions, parameterized-gate
requirements (a mixer with no trainable gate cannot respond to beta), and
estimated circuit-depth budgets for depth-limited hardware.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field

from repro.core.predictor import Predictor
from repro.qaoa.mixers import ENTANGLER_TOKENS, PARAMETERIZED_TOKENS
from repro.utils.validation import check_positive

__all__ = [
    "Constraint",
    "MaxGates",
    "MinGates",
    "ForbiddenTokens",
    "RequiredTokens",
    "RequiresParameterizedGate",
    "NoAdjacentRepeats",
    "MaxMixerDepth",
    "PredicateConstraint",
    "ConstraintSet",
    "ConstrainedPredictor",
]

Tokens = tuple[str, ...]


class Constraint(abc.ABC):
    """A named predicate over candidate gate sequences."""

    name: str = "constraint"

    @abc.abstractmethod
    def satisfied(self, tokens: Tokens) -> bool:
        """True iff the candidate is admissible."""

    def __call__(self, tokens: Tokens) -> bool:
        return self.satisfied(tokens)


@dataclass(frozen=True)
class MaxGates(Constraint):
    """At most ``limit`` gates in the mixer (resource budget)."""

    limit: int
    name: str = "max_gates"

    def satisfied(self, tokens: Tokens) -> bool:
        return len(tokens) <= self.limit


@dataclass(frozen=True)
class MinGates(Constraint):
    """At least ``limit`` gates (e.g. exclude bare singles, Figs. 6-7)."""

    limit: int
    name: str = "min_gates"

    def satisfied(self, tokens: Tokens) -> bool:
        return len(tokens) >= self.limit


@dataclass(frozen=True)
class ForbiddenTokens(Constraint):
    """Exclude specific gates (e.g. hardware without a native P gate)."""

    tokens: tuple[str, ...]
    name: str = "forbidden_tokens"

    def satisfied(self, tokens: Tokens) -> bool:
        return not (set(tokens) & set(self.tokens))


@dataclass(frozen=True)
class RequiredTokens(Constraint):
    """Require that every listed gate appears somewhere in the candidate."""

    tokens: tuple[str, ...]
    name: str = "required_tokens"

    def satisfied(self, tokens: Tokens) -> bool:
        return set(self.tokens) <= set(tokens)


@dataclass(frozen=True)
class RequiresParameterizedGate(Constraint):
    """The mixer must contain a beta-dependent gate — otherwise the mixer
    slot of Eq. (2) is a constant and the layer cannot be trained."""

    name: str = "requires_parameterized"

    def satisfied(self, tokens: Tokens) -> bool:
        return any(t in PARAMETERIZED_TOKENS for t in tokens)


@dataclass(frozen=True)
class NoAdjacentRepeats(Constraint):
    """Reject ``(..., g, g, ...)``: adjacent same-gate pairs merge into one
    rotation under :func:`repro.circuits.transpile.merge_rotations`, so they
    waste a slot of the sequence budget."""

    name: str = "no_adjacent_repeats"

    def satisfied(self, tokens: Tokens) -> bool:
        return all(a != b for a, b in zip(tokens, tokens[1:]))


@dataclass(frozen=True)
class MaxMixerDepth(Constraint):
    """Bound the *circuit depth* the mixer adds per QAOA layer.

    Single-qubit tokens add one layer each; ring entanglers add two (even /
    odd pairs cannot all be parallel on a ring).
    """

    limit: int
    name: str = "max_mixer_depth"

    def satisfied(self, tokens: Tokens) -> bool:
        depth = 0
        for t in tokens:
            depth += 2 if t in ENTANGLER_TOKENS else 1
        return depth <= self.limit


@dataclass(frozen=True)
class PredicateConstraint(Constraint):
    """Escape hatch: wrap any callable as a constraint."""

    predicate: Callable[[Tokens], bool]
    name: str = "predicate"

    def satisfied(self, tokens: Tokens) -> bool:
        return bool(self.predicate(tokens))


@dataclass
class ConstraintSet:
    """Conjunction of constraints with rejection accounting."""

    constraints: list[Constraint] = field(default_factory=list)
    #: constraint name -> number of candidates it rejected
    rejections: dict = field(default_factory=dict)

    def satisfied(self, tokens: Sequence[str]) -> bool:
        tokens = tuple(tokens)
        for constraint in self.constraints:
            if not constraint.satisfied(tokens):
                self.rejections[constraint.name] = (
                    self.rejections.get(constraint.name, 0) + 1
                )
                return False
        return True

    def filter(self, candidates: Iterable[Sequence[str]]) -> list[Tokens]:
        """Admissible subset of an enumerated candidate list."""
        return [tuple(c) for c in candidates if self.satisfied(c)]

    def violated_by(self, tokens: Sequence[str]) -> list[str]:
        """Names of all constraints the candidate breaks (diagnostics)."""
        tokens = tuple(tokens)
        return [c.name for c in self.constraints if not c.satisfied(tokens)]


class ConstrainedPredictor(Predictor):
    """Wrap any predictor so it only emits admissible candidates.

    Rejected proposals are resampled (up to ``max_resamples`` rounds);
    rewards pass through to the wrapped predictor untouched, so learning
    predictors still see the true signal.
    """

    def __init__(
        self,
        inner: Predictor,
        constraints: ConstraintSet,
        *,
        max_resamples: int = 20,
    ) -> None:
        check_positive(max_resamples, "max_resamples")
        self.inner = inner
        self.constraints = constraints
        self.max_resamples = max_resamples
        self.name = f"constrained({inner.name})"

    def propose(self, num: int) -> list[Tokens]:
        out: list[Tokens] = []
        for _ in range(self.max_resamples):
            needed = num - len(out)
            if needed <= 0:
                break
            batch = self.inner.propose(needed)
            if not batch:
                break  # inner predictor exhausted
            out.extend(t for t in batch if self.constraints.satisfied(t))
        return out[:num]

    def update(self, tokens: Tokens, reward: float) -> None:
        self.inner.update(tokens, reward)

    def exhausted(self) -> bool:
        return self.inner.exhausted()
