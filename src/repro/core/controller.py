"""LSTM policy controller — the "Deep Neural Net" of Fig. 1.

The released paper evaluates random search but its architecture diagram and
future-work section (§4, citing Zoph & Le 2016 and Zhou et al. 2018)
specify a neural predictor trained by reward propagation. This module
implements it: an LSTM emits gate tokens autoregressively, REINFORCE with a
moving baseline and entropy bonus trains it on the evaluator's rewards.

Vocabulary layout: indices ``0..V-1`` are alphabet tokens, ``V`` is END
(stop emitting; masked at step 0 so candidates are non-empty), ``V+1`` is
the START input symbol (never an output).
"""

from __future__ import annotations

import numpy as np

from repro.core.alphabet import GateAlphabet
from repro.core.predictor import Predictor
from repro.ml.activations import softmax
from repro.ml.layers import Dense, Embedding, LSTMCell
from repro.ml.optim import AdamUpdater, clip_gradients
from repro.ml.reinforce import Episode, MovingBaseline
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["PolicyController", "ControllerPredictor"]

_MASK = -1e9


class PolicyController:
    """Autoregressive token policy with manual BPTT.

    Satisfies the policy protocol of
    :class:`repro.ml.reinforce.ReinforceTrainer` and is also usable through
    :class:`ControllerPredictor` in the Algorithm-1 search loop.
    """

    def __init__(
        self,
        alphabet: GateAlphabet,
        max_gates: int = 4,
        *,
        embedding_dim: int = 16,
        hidden_dim: int = 32,
        learning_rate: float = 0.02,
        grad_clip: float = 5.0,
        allow_end: bool = True,
        seed: int = 0,
    ) -> None:
        check_positive(max_gates, "max_gates")
        self.alphabet = alphabet
        self.max_gates = max_gates
        self.allow_end = allow_end
        self.vocab = alphabet.size  # output tokens
        self.end_index = alphabet.size
        self.start_index = alphabet.size + 1
        self.grad_clip = grad_clip
        self.embedding = Embedding(self.vocab + 2, embedding_dim, seed=seed)
        self.lstm = LSTMCell(embedding_dim, hidden_dim, seed=seed + 1)
        self.head = Dense(hidden_dim, self.vocab + 1, seed=seed + 2)  # +1 for END
        self._layers = [self.embedding, self.lstm, self.head]
        self._updater = AdamUpdater(self._layers, lr=learning_rate)

    # -- sampling ----------------------------------------------------------------

    def _mask(self, step: int) -> np.ndarray:
        """Additive logit mask: END is illegal at step 0 or when disabled."""
        mask = np.zeros(self.vocab + 1)
        if step == 0 or not self.allow_end:
            mask[self.end_index] = _MASK
        return mask

    def step_probs(self, prev_token: int, h, c, step: int):
        """One policy step; returns (probs, h, c, caches)."""
        x, e_cache = self.embedding.forward(prev_token)
        h, c, l_cache = self.lstm.forward(x, h, c)
        logits, d_cache = self.head.forward(h)
        probs = softmax(logits + self._mask(step))
        return probs, h, c, (e_cache, l_cache, d_cache, probs)

    def sample_episode(self, rng: np.random.Generator | None = None) -> Episode:
        """Sample a token sequence (END-terminated or max_gates long)."""
        rng = as_rng(rng)
        h, c = self.lstm.initial_state()
        prev = self.start_index
        actions: list[int] = []
        caches = []
        log_prob = 0.0
        for step in range(self.max_gates):
            probs, h, c, cache = self.step_probs(prev, h, c, step)
            action = int(rng.choice(self.vocab + 1, p=probs))
            caches.append(cache + (action,))
            log_prob += float(np.log(probs[action] + 1e-300))
            if action == self.end_index:
                break
            actions.append(action)
            prev = action
        return Episode(tuple(actions), log_prob, tuple(caches))

    def greedy_episode(self) -> tuple[str, ...]:
        """Argmax decoding — the controller's current best guess."""
        h, c = self.lstm.initial_state()
        prev = self.start_index
        tokens: list[str] = []
        for step in range(self.max_gates):
            probs, h, c, _ = self.step_probs(prev, h, c, step)
            action = int(np.argmax(probs))
            if action == self.end_index:
                break
            tokens.append(self.alphabet.token(action))
            prev = action
        return tuple(tokens)

    def tokens_of(self, episode: Episode) -> tuple[str, ...]:
        return tuple(self.alphabet.token(a) for a in episode.actions)

    def episode_log_prob(self, episode: Episode) -> float:
        return episode.log_prob

    # -- training ----------------------------------------------------------------

    def zero_grad(self) -> None:
        self._updater.zero_grad()

    def backprop_episode(
        self, episode: Episode, scale: float, entropy_weight: float = 0.0
    ) -> None:
        """Accumulate gradients of ``scale * log pi(actions)`` minus an
        entropy bonus, via backprop-through-time."""
        dh_next = np.zeros(self.lstm.hidden_dim)
        dc_next = np.zeros(self.lstm.hidden_dim)
        for cache in reversed(episode.caches):
            e_cache, l_cache, d_cache, probs, action = cache
            onehot = np.zeros_like(probs)
            onehot[action] = 1.0
            # d/dlogits of scale*log pi(a): scale * (onehot - probs);
            # entropy bonus H: dH/dlogit_j = -p_j (log p_j + H).
            dlogits = scale * (onehot - probs)
            if entropy_weight:
                safe_log = np.log(np.maximum(probs, 1e-300))
                entropy = -float(probs @ safe_log)
                dlogits += entropy_weight * probs * (safe_log + entropy)
            dh = self.head.backward(dlogits, d_cache) + dh_next
            dx, dh_next, dc_next = self.lstm.backward(dh, dc_next, l_cache)
            self.embedding.backward(dx, e_cache)

    def apply_gradients(self) -> None:
        clip_gradients(self._layers, self.grad_clip)
        self._updater.step()

    @property
    def layers(self):
        return list(self._layers)


class ControllerPredictor(Predictor):
    """Adapts :class:`PolicyController` to the Predictor interface.

    ``propose`` samples episodes; ``update`` buffers (episode, reward)
    pairs and performs one REINFORCE update per full batch — the
    "Reward Propagation" edge of Fig. 1 inside Algorithm 1's loop.
    """

    name = "controller"

    def __init__(
        self,
        controller: PolicyController,
        *,
        batch_size: int = 8,
        entropy_weight: float = 0.01,
        baseline_decay: float = 0.8,
        seed=None,
    ) -> None:
        check_positive(batch_size, "batch_size")
        self.controller = controller
        self.batch_size = batch_size
        self.entropy_weight = entropy_weight
        self.baseline = MovingBaseline(baseline_decay)
        self._rng = as_rng(seed)
        self._pending: list[Episode] = []
        self._batch: list[tuple[Episode, float]] = []
        self.updates = 0

    def propose(self, num: int) -> list[tuple[str, ...]]:
        check_positive(num, "num")
        proposals = []
        for _ in range(num):
            episode = self.controller.sample_episode(self._rng)
            if not episode.actions:  # degenerate: resample once without END
                episode = self.controller.sample_episode(self._rng)
            if not episode.actions:
                continue
            self._pending.append(episode)
            proposals.append(self.controller.tokens_of(episode))
        return proposals

    def update(self, tokens: tuple[str, ...], reward: float) -> None:
        episode = self._pop_pending(tokens)
        if episode is None:
            return
        self._batch.append((episode, reward))
        if len(self._batch) >= self.batch_size:
            self._flush()

    def _pop_pending(self, tokens: tuple[str, ...]) -> Episode | None:
        for i, episode in enumerate(self._pending):
            if self.controller.tokens_of(episode) == tuple(tokens):
                return self._pending.pop(i)
        return None

    def _flush(self) -> None:
        batch, self._batch = self._batch, []
        self.controller.zero_grad()
        n = len(batch)
        for episode, reward in batch:
            advantage = reward - self.baseline.value
            self.controller.backprop_episode(
                episode,
                scale=-advantage / n,
                entropy_weight=self.entropy_weight / n,
            )
        mean_reward = float(np.mean([r for _, r in batch]))
        self.baseline.update(mean_reward)
        self.controller.apply_gradients()
        self.updates += 1
