"""Warm-started depth sweeps and noise-aware candidate scoring.

Two evaluator extensions a production search needs:

* :func:`warm_started_sweep` — train one mixer at p = 1..p_max where each
  depth starts from the INTERP lift of the previous depth's optimum (Zhou
  et al. 2020). Energies are then monotone in p by construction of the
  warm start, which the plain per-depth random-restart protocol cannot
  guarantee. With ``restarts > 1`` the warm start seeds the *first* row of
  a restart population and the remaining rows are random ramps, all
  trained as one batch by :class:`~repro.optimizers.MultiRestart` — a
  batch-native optimizer then evaluates every restart's per-step proposals
  in a single vectorized energy call.
* :func:`noisy_score` — re-score a *trained* candidate under a Kraus noise
  model with the exact density-matrix engine. Short mixers lose less energy
  to noise, so this is the metric under which the paper's "lower resource
  usage" argument (§3.2) becomes quantitative.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.qbuilder import QBuilder
from repro.graphs.generators import Graph
from repro.optimizers import MultiRestart, Optimizer, training_optimizer
from repro.qaoa.energy import AnsatzEnergy
from repro.qaoa.initialization import interp_init, ramp_init
from repro.simulators.expectation import cut_values
from repro.simulators.noise import DensityMatrixSimulator, NoiseModel
from repro.utils.rng import as_rng, stable_seed
from repro.utils.validation import check_positive

__all__ = ["DepthPoint", "noisy_score", "warm_started_sweep"]


@dataclass(frozen=True)
class DepthPoint:
    """One depth of a warm-started sweep."""

    p: int
    energy: float
    params: tuple[float, ...]
    nfev: int


def _sweep_optimizer(name: str, max_steps: int, seed: int) -> Optimizer:
    """Shared budget rules via :func:`repro.optimizers.training_optimizer`;
    the sweep builds its optimizer once for all depths, so the
    per-objective gradient closures adam needs are not available here."""
    if name not in ("cobyla", "nelder_mead", "spsa"):
        raise ValueError(
            f"unknown sweep optimizer {name!r}; options: cobyla, nelder_mead, spsa"
        )
    return training_optimizer(name, max_steps=max_steps, seed=seed)


def warm_started_sweep(
    graph: Graph,
    tokens: Sequence[str],
    p_max: int,
    *,
    max_steps: int = 200,
    seed: int = 0,
    builder: QBuilder | None = None,
    restarts: int = 1,
    optimizer: str = "cobyla",
    batch_mode: str = "auto",
) -> list[DepthPoint]:
    """Train ``tokens`` at p = 1..p_max with INTERP warm starts.

    Depth 1 starts from a ramp; depth p+1 starts from the INTERP lift of
    depth p's optimum and additionally keeps the lifted point itself as a
    fallback, so the reported energy never decreases with depth (up to
    optimizer wobble, which the fallback absorbs). ``restarts`` widens each
    depth into a population whose first row is the warm start (the other
    rows are jittered ramps), trained as one batch when ``optimizer`` is
    batch-native (``"spsa"``/``"nelder_mead"``) and ``batch_mode`` allows.
    """
    check_positive(p_max, "p_max")
    check_positive(restarts, "restarts")
    builder = builder or QBuilder()
    tokens = tuple(tokens)
    points: list[DepthPoint] = []
    previous: np.ndarray | None = None
    meta = MultiRestart(
        _sweep_optimizer(optimizer, max_steps, seed), batch_mode=batch_mode
    )
    for p in range(1, p_max + 1):
        ansatz = builder.build_qaoa(graph, tokens, p)
        energy = AnsatzEnergy(ansatz)
        if previous is None:
            rng = as_rng(stable_seed(seed, "sweep", p, *tokens))
            x0 = ramp_init(p, rng=rng, jitter=0.05)
        else:
            x0 = interp_init(previous)
        # The warm start seeds restart 0; extra restarts draw fresh ramps.
        population = [np.asarray(x0, dtype=float)]
        for restart in range(1, restarts):
            rng = as_rng(stable_seed(seed, "sweep", p, restart, *tokens))
            population.append(ramp_init(p, rng=rng, jitter=0.05))
        negated = energy.negative_objective()
        result = meta.minimize_population(
            negated, np.stack(population), batch_fn=negated.values
        )
        best_x, best_e, nfev = result.x, -result.fun, result.nfev
        # warm-start fallback: the lifted previous optimum is feasible at
        # depth p, so depth p can never report worse than depth p-1
        if previous is not None:
            lifted_energy = energy.value(x0)
            if lifted_energy > best_e:
                best_x, best_e = x0, lifted_energy
        points.append(DepthPoint(p, float(best_e), tuple(best_x), nfev))
        previous = np.asarray(best_x)
    return points


def noisy_score(
    graph: Graph,
    tokens: Sequence[str],
    p: int,
    params: Sequence[float],
    noise_model: NoiseModel,
    *,
    builder: QBuilder | None = None,
) -> float:
    """``<C>`` of the trained candidate under ``noise_model`` (exact
    density-matrix evolution; cost ``4^n``, fine for the 10-node datasets).
    """
    builder = builder or QBuilder()
    ansatz = builder.build_qaoa(graph, tuple(tokens), p)
    bound = ansatz.bind(list(params))
    rho = DensityMatrixSimulator(noise_model).run(bound)
    return DensityMatrixSimulator.expectation(rho, cut_values(graph))
