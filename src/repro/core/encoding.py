"""Tensor encoding of candidate circuits.

The paper's Predictor module "accepts a tensor that represents the rotation
gates and entanglement operators and generates a new circuit representation
that is passed to the quantum builder module" (§2.1). This module defines
that interchange format: a fixed-shape one-hot matrix over the alphabet
plus a PAD/STOP symbol, so predictors of any kind (random, bandit, neural)
emit the same artifact and the QBuilder consumes exactly one format.

Layout: row ``t`` one-hot encodes the token at position ``t``; column 0 is
PAD (sequence ended), columns ``1..V`` are alphabet tokens in order.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.alphabet import GateAlphabet

__all__ = [
    "PAD_INDEX",
    "encoding_shape",
    "encode_sequence",
    "decode_encoding",
    "random_encoding",
    "is_valid_encoding",
]

PAD_INDEX = 0


def encoding_shape(alphabet: GateAlphabet, max_gates: int) -> tuple[int, int]:
    """``(max_gates, alphabet size + 1)`` — +1 for the PAD column."""
    return (max_gates, alphabet.size + 1)


def encode_sequence(
    tokens: Sequence[str], alphabet: GateAlphabet, max_gates: int
) -> np.ndarray:
    """One-hot encode ``tokens``, padding with PAD rows to ``max_gates``."""
    if len(tokens) > max_gates:
        raise ValueError(f"sequence of {len(tokens)} gates exceeds max_gates={max_gates}")
    out = np.zeros(encoding_shape(alphabet, max_gates), dtype=np.float64)
    for t, token in enumerate(tokens):
        out[t, alphabet.index(token) + 1] = 1.0
    for t in range(len(tokens), max_gates):
        out[t, PAD_INDEX] = 1.0
    return out


def decode_encoding(encoding: np.ndarray, alphabet: GateAlphabet) -> tuple[str, ...]:
    """Inverse of :func:`encode_sequence`; validates shape and one-hotness.

    Rows after the first PAD are ignored (PAD is a stop symbol), matching
    how a sampling controller terminates sequences early.
    """
    if not is_valid_encoding(encoding, alphabet):
        raise ValueError("not a valid one-hot circuit encoding for this alphabet")
    tokens: list[str] = []
    for row in encoding:
        idx = int(np.argmax(row))
        if idx == PAD_INDEX:
            break
        tokens.append(alphabet.token(idx - 1))
    return tuple(tokens)


def is_valid_encoding(encoding: np.ndarray, alphabet: GateAlphabet) -> bool:
    """Shape ``(*, V+1)``, rows one-hot, entries in {0, 1}."""
    encoding = np.asarray(encoding)
    if encoding.ndim != 2 or encoding.shape[1] != alphabet.size + 1:
        return False
    if not np.all((encoding == 0.0) | (encoding == 1.0)):
        return False
    return bool(np.all(encoding.sum(axis=1) == 1.0))


def random_encoding(
    alphabet: GateAlphabet, max_gates: int, rng, *, min_gates: int = 1
) -> np.ndarray:
    """A uniformly random valid encoding (random length, random tokens)."""
    length = int(rng.integers(min_gates, max_gates + 1))
    tokens = alphabet.sample_sequence(length, rng)
    return encode_sequence(tokens, alphabet, max_gates)
