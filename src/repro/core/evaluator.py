"""The Evaluator module: train a candidate ansatz, emit its reward.

§2.1: "responsible for training the generated quantum circuit on the QAOA
cost function in Equation 1. The trained circuit is then evaluated and the
reward is propagated back to the predictor module." Training follows the
paper exactly by default — COBYLA for 200 steps — and the reward is the
approximation ratio of Eq. (3).

The module-level :func:`evaluate_candidate` is the unit of work the
parallel search fans out: it is picklable (plain function + dataclass
arguments), deterministic given its config seed, and self-contained so a
worker process needs no shared state.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.qbuilder import QBuilder
from repro.core.results import CandidateEvaluation
from repro.graphs.generators import Graph
from repro.optimizers import BATCH_MODES, MultiRestart, Optimizer, training_optimizer
from repro.qaoa.energy import ENGINES, AnsatzEnergy
from repro.qaoa.maxcut import approximation_ratio
from repro.simulators.backends import available_array_backends
from repro.utils.rng import as_rng, stable_seed
from repro.utils.validation import check_positive
from repro.workloads import available_workloads, get_workload

__all__ = [
    "EvaluationConfig",
    "Evaluator",
    "INIT_STRATEGIES",
    "classical_optima",
    "evaluate_candidate",
]

#: initial-parameter strategies the evaluator accepts; "interp" seeds
#: restart 0 from the INTERP lift of the previous depth's optimum when the
#: runtime threads one through (repro.qaoa.initialization.interp_init) and
#: falls back to ramp draws otherwise
INIT_STRATEGIES = ("uniform", "ramp", "interp")


def classical_optima(
    graphs: Sequence[Graph], workload: str = "maxcut"
) -> tuple[float, ...]:
    """The workload's exact classical optimum of every instance.

    This is the expensive, candidate-independent part of scoring (``2^n``
    per graph): compute it once per search and ship the values to workers
    instead of paying it inside every candidate evaluation. The oracle is
    per-workload (brute force over the objective table by default).
    """
    oracle = get_workload(workload)
    return tuple(oracle.classical_optimum(g) for g in graphs)


@dataclass(frozen=True)
class EvaluationConfig:
    """Everything that fixes how one candidate is trained and scored."""

    #: classical optimizer: cobyla (paper), nelder_mead, spsa, adam
    optimizer: str = "cobyla"
    #: optimizer evaluation budget (paper: 200)
    max_steps: int = 200
    #: independent optimizer restarts per graph; best result kept
    restarts: int = 1
    #: simulation engine: "compiled" (pre-lowered array program, the fast
    #: default), "statevector" (per-gate dense oracle), or "qtensor"
    engine: str = "compiled"
    #: array backend the compiled engine runs under: "numpy" (default),
    #: "mock_gpu" (metered CPU stand-in), or "cupy" when installed — see
    #: repro.simulators.backends; part of the cache fingerprint like engine
    array_backend: str = "numpy"
    #: base seed for initial-parameter draws (stably combined per graph/restart)
    seed: int = 7
    #: prepend the Hadamard column vs. starting from |+>^n
    initial_hadamard: bool = True
    #: scale of the uniform initial-parameter window
    init_scale: float = 0.5
    #: how Eq. (3)'s ratio is scored: "energy" uses the trained <C>;
    #: "best_sampled" uses E[best cut of `shots` measurements] — the
    #: paper's "<C_max> ... largest cut discovered" reading, which places
    #: ratios in its reported 0.98..1.0 band
    metric: str = "energy"
    #: measurement budget for the best_sampled metric
    shots: int = 128
    #: initial-parameter strategy: "uniform" (paper), "ramp" (annealing
    #: schedule; better conditioned at depth, see repro.qaoa.initialization),
    #: or "interp" (warm-start each depth from the INTERP lift of the
    #: previous depth's optimum when the runtime provides one, ramp draws
    #: for the remaining restarts)
    init_strategy: str = "uniform"
    #: how restart populations train: "auto" batches all restarts' per-step
    #: proposals into single vectorized energy calls whenever the optimizer
    #: is batch-native (spsa, nelder_mead, adam), "batched" forces the
    #: population path, "serial" forces one optimizer run per restart
    batch_mode: str = "auto"
    #: which problem the candidates optimize — a repro.workloads registry
    #: key. Part of the cache fingerprint (like engine/array_backend), so
    #: two workloads can never share cached candidate results.
    workload: str = "maxcut"

    def __post_init__(self) -> None:
        check_positive(self.max_steps, "max_steps")
        check_positive(self.restarts, "restarts")
        check_positive(self.shots, "shots")
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; options: {ENGINES}"
            )
        if self.array_backend not in available_array_backends():
            raise ValueError(
                f"unknown array backend {self.array_backend!r}; "
                f"options: {available_array_backends()}"
            )
        if self.batch_mode not in BATCH_MODES:
            raise ValueError(
                f"unknown batch mode {self.batch_mode!r}; "
                f"options: {BATCH_MODES}"
            )
        if self.metric not in ("energy", "best_sampled"):
            raise ValueError(
                f"unknown metric {self.metric!r}; options: energy, best_sampled"
            )
        if self.init_strategy not in INIT_STRATEGIES:
            raise ValueError(
                f"unknown init strategy {self.init_strategy!r}; "
                f"options: {', '.join(INIT_STRATEGIES)}"
            )
        if self.workload not in available_workloads():
            raise ValueError(
                f"unknown workload {self.workload!r}; "
                f"options: {available_workloads()}"
            )
        if self.engine == "qtensor" and self.workload != "maxcut":
            raise ValueError(
                "the qtensor engine only evaluates the maxcut workload; "
                f"got workload={self.workload!r}"
            )


def _make_optimizer(config: EvaluationConfig, energy: AnsatzEnergy) -> Optimizer:
    return training_optimizer(
        config.optimizer,
        max_steps=config.max_steps,
        seed=config.seed,
        gradient=lambda x: -energy.gradient(x),
        gradient_batch=lambda X: -energy.gradients(X),
    )


class Evaluator:
    """Scores candidate mixers on a workload of graphs.

    Classical optima (brute force) are computed once per graph and cached;
    an in-memory result cache makes repeat proposals free, which matters
    for the RL controller (it re-proposes good sequences often).
    """

    def __init__(
        self,
        graphs: Sequence[Graph],
        config: EvaluationConfig = EvaluationConfig(),
        *,
        builder: QBuilder | None = None,
        classical_values: Sequence[float] | None = None,
    ) -> None:
        if not graphs:
            raise ValueError("evaluator needs at least one graph")
        self.graphs = list(graphs)
        self.config = config
        self.builder = builder or QBuilder()
        self._workload = get_workload(config.workload)
        if classical_values is not None:
            if len(classical_values) != len(self.graphs):
                raise ValueError(
                    f"got {len(classical_values)} classical values for "
                    f"{len(self.graphs)} graphs"
                )
            self._classical = [float(v) for v in classical_values]
        else:
            self._classical = list(classical_optima(self.graphs, config.workload))
        self._cache: dict[tuple, CandidateEvaluation] = {}
        self.cache_hits = 0

    # -- public API ---------------------------------------------------------------

    def evaluate(
        self,
        tokens: Sequence[str],
        p: int,
        warm_start: Sequence[Sequence[float]] | None = None,
    ) -> CandidateEvaluation:
        """Train the candidate on every graph; return aggregate record.

        ``warm_start`` optionally carries one per-graph parameter vector
        from depth ``p - 1`` (the runtime's INTERP hand-off): with
        ``init_strategy="interp"`` each graph's restart 0 starts from the
        :func:`~repro.qaoa.initialization.interp_init` lift of its vector.
        """
        tokens = tuple(tokens)
        warm = self._check_warm_start(warm_start, p)
        key = (tokens, int(p), warm)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        start = time.perf_counter()
        energies: list[float] = []
        ratios: list[float] = []
        best_params: list[tuple[float, ...]] = []
        nfev = 0
        for graph_index, graph in enumerate(self.graphs):
            # One ansatz (and one compiled program) per graph evaluation:
            # training and best_sampled scoring share it instead of each
            # rebuilding the identical circuit for (graph, tokens, p).
            ansatz = self.builder.build_qaoa(
                graph,
                tokens,
                p,
                initial_hadamard=self.config.initial_hadamard,
                workload=self.config.workload,
            )
            objective = AnsatzEnergy(
                ansatz,
                engine=self.config.engine,
                array_backend=self.config.array_backend,
            )
            energy, best_x, evals = self._train_one(
                objective,
                graph_index,
                p,
                tokens,
                warm[graph_index] if warm is not None else None,
            )
            energies.append(energy)
            best_params.append(tuple(float(v) for v in best_x))
            if self.config.metric == "best_sampled":
                numerator = self._best_sampled_value(objective, best_x)
            else:
                numerator = energy
            ratios.append(
                approximation_ratio(
                    numerator, graph, classical_value=self._classical[graph_index]
                )
            )
            nfev += evals
        result = CandidateEvaluation(
            tokens=tokens,
            p=int(p),
            energy=float(np.mean(energies)),
            ratio=float(np.mean(ratios)),
            per_graph_energy=tuple(energies),
            per_graph_ratio=tuple(ratios),
            nfev=nfev,
            seconds=time.perf_counter() - start,
            best_params=tuple(best_params),
        )
        self._cache[key] = result
        return result

    def _check_warm_start(
        self, warm_start: Sequence[Sequence[float]] | None, p: int
    ) -> tuple[tuple[float, ...], ...] | None:
        """Normalize the INTERP hand-off; discard shapes that cannot seed
        depth ``p`` (wrong graph count or not a depth ``p - 1`` vector)."""
        if warm_start is None or self.config.init_strategy != "interp":
            return None
        if len(warm_start) != len(self.graphs) or p < 2:
            return None
        rows = tuple(tuple(float(v) for v in row) for row in warm_start)
        if any(len(row) != 2 * (p - 1) for row in rows):
            return None
        return rows

    def reward(self, tokens: Sequence[str], p: int) -> float:
        """Scalar reward for predictor feedback (mean approximation ratio)."""
        return self.evaluate(tokens, p).reward

    # -- internals ------------------------------------------------------------------

    def _initial_points(
        self,
        num_parameters: int,
        graph_index: int,
        p: int,
        tokens: tuple[str, ...],
        warm_row: tuple[float, ...] | None = None,
    ) -> np.ndarray:
        """The restart population's start points, one seeded row per
        restart (the same draws the serial path has always used). Under
        ``init_strategy="interp"`` a validated ``warm_row`` (the previous
        depth's optimum) replaces restart 0 with its INTERP lift; fresh
        rows fall back to ramp draws, which condition well at depth."""
        from repro.qaoa.initialization import interp_init, ramp_init

        rows = []
        for restart in range(self.config.restarts):
            rng = as_rng(
                stable_seed(self.config.seed, "init", graph_index, p, restart, *tokens)
            )
            if restart == 0 and warm_row is not None:
                rows.append(np.asarray(interp_init(np.asarray(warm_row)), dtype=float))
            elif self.config.init_strategy in ("ramp", "interp"):
                rows.append(ramp_init(p, rng=rng, jitter=0.05))
            else:
                rows.append(
                    rng.uniform(
                        -self.config.init_scale,
                        self.config.init_scale,
                        num_parameters,
                    )
                )
        return np.stack(rows)

    def _train_one(
        self,
        objective: AnsatzEnergy,
        graph_index: int,
        p: int,
        tokens: tuple[str, ...],
        warm_row: tuple[float, ...] | None = None,
    ) -> tuple[float, np.ndarray, int]:
        """Best trained energy over the restart population for one graph.

        All restarts train as one population through :class:`MultiRestart`:
        with a batch-native optimizer (and ``batch_mode`` "auto"/"batched")
        every step's proposals across restarts ride a single vectorized
        energy call; otherwise the population falls back to one serial
        optimizer run per restart — identical results, point for point.
        """
        X0 = self._initial_points(
            objective.ansatz.num_parameters, graph_index, p, tokens, warm_row
        )
        optimizer = MultiRestart(
            _make_optimizer(self.config, objective),
            batch_mode=self.config.batch_mode,
        )
        negated = objective.negative_objective()
        result = optimizer.minimize_population(
            negated, X0, batch_fn=negated.values
        )
        return float(-result.fun), result.x, result.nfev

    def _best_sampled_value(
        self, objective: AnsatzEnergy, params: np.ndarray
    ) -> float:
        """Eq. (3) numerator: exact E[best objective value over `shots`
        measurements] of the trained circuit's output distribution, against
        the workload's table. Reuses the objective (and its compiled
        program) that training just used."""
        from repro.qaoa.maxcut import expected_best_value

        state = objective.final_state(params)
        return expected_best_value(
            np.abs(state) ** 2,
            self._workload.objective_values(objective.ansatz.graph),
            self.config.shots,
        )


def evaluate_candidate(
    graphs: Sequence[Graph],
    tokens: Sequence[str],
    p: int,
    config: EvaluationConfig,
    classical_values: Sequence[float] | None = None,
    warm_start: Sequence[Sequence[float]] | None = None,
) -> CandidateEvaluation:
    """Stateless worker entry point for process pools (Fig. 3's unit of
    parallel work): builds a fresh Evaluator and scores one candidate.

    Pass ``classical_values`` (from :func:`classical_optima`, computed once
    in the parent) to spare every worker the per-candidate brute-force
    solve, and optionally ``warm_start`` — per-graph depth ``p - 1``
    optima the runtime threads through for ``init_strategy="interp"``.
    """
    return Evaluator(graphs, config, classical_values=classical_values).evaluate(
        tokens, p, warm_start=warm_start
    )
