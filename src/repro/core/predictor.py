"""Predictor module: proposes candidate circuits, consumes rewards.

The released paper's search is "an instance of random search which has
shown to be a strong baseline in neural architecture search [Li &
Talwalkar 2020]" (§2.1) — :class:`RandomPredictor`. The serial profiling
run of §3.1 examines *every* combination — :class:`ExhaustivePredictor`.
:class:`EpsilonGreedyPredictor` adds a cheap bandit between random search
and the full RL controller (:mod:`repro.core.controller`).

The interface is deliberately tiny: ``propose(n)`` yields token tuples,
``update(tokens, reward)`` closes Fig. 1's reward-propagation arrow.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.alphabet import GateAlphabet, enumerate_search_space
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = [
    "PREDICTORS",
    "Predictor",
    "RandomPredictor",
    "ExhaustivePredictor",
    "EpsilonGreedyPredictor",
    "make_predictor",
]


class Predictor(abc.ABC):
    """Candidate-architecture proposal strategy."""

    name: str = "abstract"

    @abc.abstractmethod
    def propose(self, num: int) -> list[tuple[str, ...]]:
        """Next ``num`` candidate token sequences (may repeat across calls)."""

    def update(self, tokens: tuple[str, ...], reward: float) -> None:
        """Feed back the evaluator's reward (no-op for open-loop searches)."""

    def exhausted(self) -> bool:
        """True when the predictor has nothing new to propose."""
        return False


class RandomPredictor(Predictor):
    """Uniform random search over sequences of 1..k_max alphabet gates."""

    name = "random"

    def __init__(self, alphabet: GateAlphabet, k_max: int, *, seed=None) -> None:
        check_positive(k_max, "k_max")
        self.alphabet = alphabet
        self.k_max = k_max
        self._rng = as_rng(seed)

    def propose(self, num: int) -> list[tuple[str, ...]]:
        check_positive(num, "num")
        out = []
        for _ in range(num):
            length = int(self._rng.integers(1, self.k_max + 1))
            out.append(self.alphabet.sample_sequence(length, self._rng))
        return out


class ExhaustivePredictor(Predictor):
    """Enumerates the full search space once, in a deterministic order."""

    name = "exhaustive"

    def __init__(
        self,
        alphabet: GateAlphabet,
        k_max: int,
        *,
        mode: str = "sequences",
    ) -> None:
        self._space = enumerate_search_space(alphabet, k_max, mode=mode)
        self._cursor = 0

    @property
    def space_size(self) -> int:
        return len(self._space)

    def propose(self, num: int) -> list[tuple[str, ...]]:
        check_positive(num, "num")
        batch = self._space[self._cursor : self._cursor + num]
        self._cursor += len(batch)
        return list(batch)

    def exhausted(self) -> bool:
        return self._cursor >= len(self._space)

    def reset(self) -> None:
        self._cursor = 0


class EpsilonGreedyPredictor(Predictor):
    """Positional bandit: per (position, token) running mean rewards.

    With probability epsilon a position is explored uniformly; otherwise
    the best-scoring token so far is chosen. Lengths are drawn from the
    empirical distribution of rewards by length. A lightweight learner to
    sit between random search and the LSTM controller in the predictor
    ablation.
    """

    name = "epsilon_greedy"

    def __init__(
        self,
        alphabet: GateAlphabet,
        k_max: int,
        *,
        epsilon: float = 0.3,
        seed=None,
    ) -> None:
        check_positive(k_max, "k_max")
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.alphabet = alphabet
        self.k_max = k_max
        self.epsilon = epsilon
        self._rng = as_rng(seed)
        self._sum = np.zeros((k_max, alphabet.size))
        self._count = np.zeros((k_max, alphabet.size), dtype=np.int64)
        self._length_sum = np.zeros(k_max)
        self._length_count = np.zeros(k_max, dtype=np.int64)

    def _pick_length(self) -> int:
        if self._rng.random() < self.epsilon or not self._length_count.any():
            return int(self._rng.integers(1, self.k_max + 1))
        means = np.where(
            self._length_count > 0, self._length_sum / np.maximum(self._length_count, 1), -np.inf
        )
        return int(np.argmax(means)) + 1

    def _pick_token(self, position: int) -> str:
        if self._rng.random() < self.epsilon or not self._count[position].any():
            return self.alphabet.token(int(self._rng.integers(self.alphabet.size)))
        means = np.where(
            self._count[position] > 0,
            self._sum[position] / np.maximum(self._count[position], 1),
            -np.inf,
        )
        return self.alphabet.token(int(np.argmax(means)))

    def propose(self, num: int) -> list[tuple[str, ...]]:
        check_positive(num, "num")
        out = []
        for _ in range(num):
            length = self._pick_length()
            out.append(tuple(self._pick_token(t) for t in range(length)))
        return out

    def update(self, tokens: tuple[str, ...], reward: float) -> None:
        length = len(tokens)
        if not 1 <= length <= self.k_max:
            return
        self._length_sum[length - 1] += reward
        self._length_count[length - 1] += 1
        for position, token in enumerate(tokens):
            idx = self.alphabet.index(token)
            self._sum[position, idx] += reward
            self._count[position, idx] += 1


# -- registry ---------------------------------------------------------------


def _make_random(alphabet: GateAlphabet, k_max: int, *, seed=None) -> Predictor:
    return RandomPredictor(alphabet, k_max, seed=seed)


def _make_exhaustive(alphabet: GateAlphabet, k_max: int, *, seed=None) -> Predictor:
    return ExhaustivePredictor(alphabet, k_max)


def _make_epsilon_greedy(
    alphabet: GateAlphabet, k_max: int, *, seed=None
) -> Predictor:
    return EpsilonGreedyPredictor(alphabet, k_max, seed=seed)


def _make_surrogate_ranked(
    alphabet: GateAlphabet, k_max: int, *, seed=None
) -> Predictor:
    # Imported lazily: repro.surrogate depends on this module for the
    # Predictor base class.
    from repro.surrogate.config import SurrogateConfig
    from repro.surrogate.ranking import SurrogateRankedPredictor

    return SurrogateRankedPredictor(
        RandomPredictor(alphabet, k_max, seed=seed),
        config=SurrogateConfig(enabled=True, seed=int(seed or 0)),
    )


#: every registered proposal strategy, by :attr:`Predictor.name` — the
#: contract test suite runs each factory against the protocol invariants
PREDICTORS = {
    "random": _make_random,
    "exhaustive": _make_exhaustive,
    "epsilon_greedy": _make_epsilon_greedy,
    "surrogate_ranked": _make_surrogate_ranked,
}


def make_predictor(
    name: str, alphabet: GateAlphabet, k_max: int, *, seed=None
) -> Predictor:
    """Instantiate a registered predictor by name (seeded when it samples)."""
    try:
        factory = PREDICTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; registered: {sorted(PREDICTORS)}"
        ) from None
    return factory(alphabet, k_max, seed=seed)
