"""The Quantum Builder (QBuilder) module.

§2.1: "accepts the encoded tensor representation from the predictor module
and generates the appropriate quantum circuit in an available quantum
computing software" — here, :mod:`repro.circuits` instead of Qiskit. The
builder owns the two constructions of Algorithm 1:

* ``BUILD_MIXER_CKT(G, gate_comb)`` — the mixer layer over the graph's
  nodes with the shared beta parameter;
* ``BUILD_QAOA_CKT(U_B, p)`` — the full p-layer ansatz around that mixer.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.core.alphabet import GateAlphabet
from repro.core.encoding import decode_encoding
from repro.graphs.generators import Graph
from repro.qaoa.ansatz import QAOAAnsatz, build_qaoa_ansatz
from repro.qaoa.mixers import mixer_layer

__all__ = ["QBuilder"]


@dataclass(frozen=True)
class QBuilder:
    """Turns predictor output (token tuples or encoded tensors) into
    circuits."""

    alphabet: GateAlphabet = GateAlphabet()

    def validate_tokens(self, tokens: Sequence[str]) -> tuple[str, ...]:
        tokens = tuple(tokens)
        for t in tokens:
            self.alphabet.index(t)  # raises KeyError on foreign tokens
        if not tokens:
            raise ValueError("cannot build a mixer from an empty gate sequence")
        return tokens

    # -- Algorithm 1, line 6 ----------------------------------------------------

    def build_mixer(self, graph: Graph, tokens: Sequence[str]) -> QuantumCircuit:
        """``BUILD_MIXER_CKT``: the candidate mixer over the graph's nodes,
        with a fresh shared ``beta`` symbol."""
        tokens = self.validate_tokens(tokens)
        return mixer_layer(graph.num_nodes, tokens, Parameter("beta"))

    # -- Algorithm 1, line 7 ----------------------------------------------------

    def build_qaoa(
        self,
        graph: Graph,
        tokens: Sequence[str],
        p: int,
        *,
        initial_hadamard: bool = True,
        workload: str = "maxcut",
    ) -> QAOAAnsatz:
        """``BUILD_QAOA_CKT``: the full Eq. (2) ansatz around the mixer.

        ``workload`` selects the phase separator from the
        :mod:`repro.workloads` registry (default: the paper's MaxCut).
        """
        tokens = self.validate_tokens(tokens)
        return build_qaoa_ansatz(
            graph, p, tokens, initial_hadamard=initial_hadamard, workload=workload
        )

    # -- tensor interchange -------------------------------------------------------

    def from_encoding(
        self,
        encoding: np.ndarray,
        graph: Graph,
        p: int,
        *,
        initial_hadamard: bool = True,
        workload: str = "maxcut",
    ) -> QAOAAnsatz:
        """Decode a predictor tensor and build the ansatz in one step."""
        tokens = decode_encoding(encoding, self.alphabet)
        return self.build_qaoa(
            graph, tokens, p, initial_hadamard=initial_hadamard, workload=workload
        )
