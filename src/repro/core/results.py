"""Result records for evaluations and searches, with JSON persistence.

Everything the experiment harness reports is assembled from these records,
and every figure in EXPERIMENTS.md can be regenerated from a saved JSON
run without re-simulating.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["CandidateEvaluation", "DepthResult", "SearchResult"]


@dataclass(frozen=True)
class CandidateEvaluation:
    """One trained candidate mixer on one workload (graph or dataset)."""

    tokens: tuple[str, ...]
    p: int
    #: mean trained max-cut energy over the workload graphs
    energy: float
    #: mean approximation ratio (Eq. 3) over the workload graphs
    ratio: float
    #: per-graph trained energies
    per_graph_energy: tuple[float, ...] = ()
    #: per-graph approximation ratios
    per_graph_ratio: tuple[float, ...] = ()
    #: total objective evaluations spent training this candidate
    nfev: int = 0
    #: wall-clock seconds spent training this candidate
    seconds: float = 0.0

    @property
    def reward(self) -> float:
        """The scalar the search maximizes (the approximation ratio — scale
        free across graphs, unlike raw energy)."""
        return self.ratio


@dataclass(frozen=True)
class DepthResult:
    """Algorithm 1's inner loop at one depth p: all candidates, ranked."""

    p: int
    evaluations: tuple[CandidateEvaluation, ...]
    seconds: float = 0.0

    @property
    def best(self) -> CandidateEvaluation:
        if not self.evaluations:
            raise ValueError(f"no evaluations recorded at p={self.p}")
        return max(self.evaluations, key=lambda e: e.reward)

    def ranked(self) -> list[CandidateEvaluation]:
        return sorted(self.evaluations, key=lambda e: -e.reward)


@dataclass
class SearchResult:
    """Full output of Algorithm 1 (``U_B^best`` and ``<C_best>``)."""

    best_tokens: tuple[str, ...]
    best_p: int
    best_energy: float
    best_ratio: float
    depth_results: list[DepthResult] = field(default_factory=list)
    total_seconds: float = 0.0
    config: dict = field(default_factory=dict)

    @property
    def num_candidates(self) -> int:
        return sum(len(d.evaluations) for d in self.depth_results)

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": "repro-search-result-v1",
            "best_tokens": list(self.best_tokens),
            "best_p": self.best_p,
            "best_energy": self.best_energy,
            "best_ratio": self.best_ratio,
            "total_seconds": self.total_seconds,
            "config": self.config,
            "depth_results": [
                {
                    "p": d.p,
                    "seconds": d.seconds,
                    "evaluations": [asdict(e) | {"tokens": list(e.tokens)} for e in d.evaluations],
                }
                for d in self.depth_results
            ],
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> SearchResult:
        data = json.loads(Path(path).read_text())
        if data.get("format") != "repro-search-result-v1":
            raise ValueError(f"unrecognized search result format in {path}")
        depth_results = []
        for d in data["depth_results"]:
            evals = tuple(
                CandidateEvaluation(
                    tokens=tuple(e["tokens"]),
                    p=e["p"],
                    energy=e["energy"],
                    ratio=e["ratio"],
                    per_graph_energy=tuple(e.get("per_graph_energy", ())),
                    per_graph_ratio=tuple(e.get("per_graph_ratio", ())),
                    nfev=e.get("nfev", 0),
                    seconds=e.get("seconds", 0.0),
                )
                for e in d["evaluations"]
            )
            depth_results.append(DepthResult(d["p"], evals, d.get("seconds", 0.0)))
        return cls(
            best_tokens=tuple(data["best_tokens"]),
            best_p=data["best_p"],
            best_energy=data["best_energy"],
            best_ratio=data["best_ratio"],
            depth_results=depth_results,
            total_seconds=data.get("total_seconds", 0.0),
            config=data.get("config", {}),
        )
