"""Result records for evaluations and searches, with JSON persistence.

Everything the experiment harness reports is assembled from these records,
and every figure in EXPERIMENTS.md can be regenerated from a saved JSON
run without re-simulating.

**Wire format.** Every record has symmetric ``to_dict``/``from_dict``, and
the dict *is* the wire object: the result cache stores it, ``save``/
``load`` write it to disk, and the search service's HTTP API returns it
verbatim from ``/result/{id}`` — one schema, three transports. The current
format is ``repro-search-result-v3``: v3 adds the per-evaluation trained
parameters (``best_params``), the per-depth OpenQASM export of the winning
candidate (``best_qasm``), and the workload key inside ``config``. v1 and
v2 files written by earlier releases load transparently — every v3 field
defaults when absent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "CandidateEvaluation",
    "DepthResult",
    "SearchResult",
    "WIRE_FORMAT_V2",
    "WIRE_FORMAT_V3",
]

#: format tags, newest first; ``from_dict`` accepts any of them
WIRE_FORMAT_V3 = "repro-search-result-v3"
WIRE_FORMAT_V2 = "repro-search-result-v2"
_WIRE_FORMAT_V1 = "repro-search-result-v1"
_ACCEPTED_FORMATS = (WIRE_FORMAT_V3, WIRE_FORMAT_V2, _WIRE_FORMAT_V1)


@dataclass(frozen=True)
class CandidateEvaluation:
    """One trained candidate mixer on one workload (graph or dataset)."""

    tokens: tuple[str, ...]
    p: int
    #: mean trained max-cut energy over the workload graphs
    energy: float
    #: mean approximation ratio (Eq. 3) over the workload graphs
    ratio: float
    #: per-graph trained energies
    per_graph_energy: tuple[float, ...] = ()
    #: per-graph approximation ratios
    per_graph_ratio: tuple[float, ...] = ()
    #: total objective evaluations spent training this candidate
    nfev: int = 0
    #: wall-clock seconds spent training this candidate
    seconds: float = 0.0
    #: per-graph trained parameter vectors ``[gammas..., betas...]`` (v3) —
    #: feeds the INTERP depth hand-off and the per-depth QASM export
    best_params: tuple[tuple[float, ...], ...] = ()

    @property
    def reward(self) -> float:
        """The scalar the search maximizes (the approximation ratio — scale
        free across graphs, unlike raw energy)."""
        return self.ratio

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "tokens": list(self.tokens),
            "p": self.p,
            "energy": self.energy,
            "ratio": self.ratio,
            "per_graph_energy": list(self.per_graph_energy),
            "per_graph_ratio": list(self.per_graph_ratio),
            "nfev": self.nfev,
            "seconds": self.seconds,
            "best_params": [list(row) for row in self.best_params],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> CandidateEvaluation:
        return cls(
            tokens=tuple(data["tokens"]),
            p=int(data["p"]),
            energy=data["energy"],
            ratio=data["ratio"],
            per_graph_energy=tuple(data.get("per_graph_energy", ())),
            per_graph_ratio=tuple(data.get("per_graph_ratio", ())),
            nfev=data.get("nfev", 0),
            seconds=data.get("seconds", 0.0),
            best_params=tuple(
                tuple(float(v) for v in row)
                for row in data.get("best_params", ())
            ),
        )


@dataclass(frozen=True)
class DepthResult:
    """Algorithm 1's inner loop at one depth p: all candidates, ranked."""

    p: int
    evaluations: tuple[CandidateEvaluation, ...]
    seconds: float = 0.0
    #: OpenQASM 2.0 export of this depth's winning candidate, bound with
    #: its trained parameters on the first workload graph (v3) — the exit
    #: path to downstream toolchains; None when export is unavailable
    best_qasm: str | None = None

    @property
    def best(self) -> CandidateEvaluation:
        if not self.evaluations:
            raise ValueError(f"no evaluations recorded at p={self.p}")
        return max(self.evaluations, key=lambda e: e.reward)

    def ranked(self) -> list[CandidateEvaluation]:
        return sorted(self.evaluations, key=lambda e: -e.reward)

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "p": self.p,
            "seconds": self.seconds,
            "evaluations": [e.to_dict() for e in self.evaluations],
            "best_qasm": self.best_qasm,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> DepthResult:
        return cls(
            int(data["p"]),
            tuple(CandidateEvaluation.from_dict(e) for e in data["evaluations"]),
            data.get("seconds", 0.0),
            data.get("best_qasm"),
        )


@dataclass
class SearchResult:
    """Full output of Algorithm 1 (``U_B^best`` and ``<C_best>``)."""

    best_tokens: tuple[str, ...]
    best_p: int
    best_energy: float
    best_ratio: float
    depth_results: list[DepthResult] = field(default_factory=list)
    total_seconds: float = 0.0
    config: dict = field(default_factory=dict)

    @property
    def num_candidates(self) -> int:
        return sum(len(d.evaluations) for d in self.depth_results)

    # -- wire format / persistence -----------------------------------------

    def to_dict(self) -> dict:
        """The v3 wire object: file payload and HTTP payload alike."""
        return {
            "format": WIRE_FORMAT_V3,
            "best_tokens": list(self.best_tokens),
            "best_p": self.best_p,
            "best_energy": self.best_energy,
            "best_ratio": self.best_ratio,
            "total_seconds": self.total_seconds,
            "config": self.config,
            "depth_results": [d.to_dict() for d in self.depth_results],
        }

    @classmethod
    def from_dict(cls, data: dict) -> SearchResult:
        """Inverse of :meth:`to_dict`; accepts v1, v2, and v3 payloads
        (the nested record shape is shared — older versions merely lack
        the fields newer ones added, all of which default)."""
        fmt = data.get("format")
        if fmt not in _ACCEPTED_FORMATS:
            raise ValueError(
                f"unrecognized search result format {fmt!r}; "
                f"accepted: {', '.join(_ACCEPTED_FORMATS)}"
            )
        return cls(
            best_tokens=tuple(data["best_tokens"]),
            best_p=data["best_p"],
            best_energy=data["best_energy"],
            best_ratio=data["best_ratio"],
            depth_results=[DepthResult.from_dict(d) for d in data["depth_results"]],
            total_seconds=data.get("total_seconds", 0.0),
            config=data.get("config", {}),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> SearchResult:
        try:
            return cls.from_dict(json.loads(Path(path).read_text()))
        except ValueError as error:
            raise ValueError(f"{error} (in {path})") from None
