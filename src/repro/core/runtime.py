"""The fault-tolerant, cache-aware search runtime (Algorithm 1's engine).

``search_mixer``/``search_with_predictor`` used to drive a blocking
``starmap`` batch per depth: no result reuse across depths or runs, no
checkpointing, and a single lost worker stalled the sweep. This module is
the replacement substrate:

* **Streaming execution** — candidate evaluations go through
  :class:`~repro.parallel.jobs.JobScheduler` (``submit`` + as-completed)
  with per-job retry and timeout, so worker failures cost one job's
  latency, not the search.
* **Persistent result cache** — with a ``cache_dir``, every evaluation is
  stored in :class:`~repro.core.cache.ResultCache` keyed by
  workload/tokens/p/config fingerprints. Repeat proposals (RL predictors
  re-propose good sequences constantly), repeated depths, and whole
  re-runs are lookups instead of training loops.
* **Checkpoint/resume, at two granularities** — each finished depth is
  checkpointed (atomically); a killed search restarted with
  ``resume=True`` skips the depths it already completed. *Within* a
  depth, every evaluation is persisted to the result cache as it streams
  back (commits batched every ``cache_flush_every`` evaluations), so a
  kill in the middle of a wide depth costs at most the unflushed tail:
  the restart re-submits only the candidates that never reached the
  cache, not the whole depth.
* **Sharding** — ``RuntimeConfig(shards=K)`` partitions each depth's
  candidate bag across K shards (greedy least-loaded by predicted cost)
  run by :class:`~repro.core.sharded.ShardedRuntime`, the Fig. 2 outer
  level made real: per-shard schedulers, dead shards re-shard their
  unfinished candidates onto survivors, cache/stats merge in the parent.
  ``RuntimeConfig(shards=K, shard_index=i)`` instead makes *this* process
  node ``i`` of a multi-process deployment: it evaluates only its shard
  of every depth into the shared cache (see the CLI's ``--shard-index``).
* **Hoisted classical optima** — the workload's brute-force oracle (the
  candidate-independent ``2^n`` part of scoring, per-problem via
  :mod:`repro.workloads`) runs once per search and ships to workers in
  the job payload instead of once per candidate.
* **INTERP warm starts** — with ``EvaluationConfig(init_strategy=
  "interp")`` the runtime threads each candidate's previous-depth optimum
  through the job payload, so depth ``p`` trains from the INTERP lift of
  depth ``p - 1`` (Zhou et al. 2020) instead of cold draws. Warm-started
  evaluations get warm-aware cache keys, so they never alias cold ones.
* **Compiled fast path** — job payloads carry the full
  :class:`~repro.core.evaluator.EvaluationConfig`, so workers train on
  whatever ``config.engine`` selects (default: the compiled engine) under
  whatever ``config.array_backend`` selects (default NumPy; CuPy or the
  metered mock GPU via :mod:`repro.simulators.backends`). Both are part
  of the config fingerprint, which keeps cached results from one
  engine/backend from ever being replayed as another's.

The runtime is deliberately independent of how candidates are chosen: the
search front-ends hand it a per-depth candidate list and an optional
predictor to feed rewards back to.

.. seealso::

   :class:`~repro.core.sharded.ShardedRuntime`
       the Fig. 2 outer level stacked on this substrate (``shards=K``).
   :mod:`repro.core.cache`
       the fingerprint scheme behind the cache/checkpoint guarantees.
   ``docs/architecture.md``
       where this layer sits in the evaluation pipeline;
       ``docs/cli.md`` documents the flags (``--cache-dir``,
       ``--resume``, ``--retries``, ``--job-timeout``) that drive it.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.circuits.qasm import QasmError, to_qasm
from repro.core.cache import (
    ResultCache,
    SweepCheckpoint,
    candidate_key,
    config_fingerprint,
    depth_fingerprint,
    workload_fingerprint,
)
from repro.core.evaluator import classical_optima, evaluate_candidate
from repro.core.predictor import Predictor
from repro.core.results import CandidateEvaluation, DepthResult, SearchResult
from repro.graphs.generators import Graph
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import SweepProgress
from repro.parallel.cluster import least_loaded_partition
from repro.parallel.executor import Executor, SerialExecutor
from repro.parallel.jobs import JobScheduler
from repro.qaoa.ansatz import build_qaoa_ansatz

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (search imports us)
    from repro.core.search import SearchConfig

__all__ = [
    "CancellationToken",
    "RuntimeConfig",
    "SearchRuntime",
    "SweepCancelled",
    "predicted_cost",
]


class SweepCancelled(RuntimeError):
    """The sweep's :class:`CancellationToken` fired; work stopped early."""


class CancellationToken:
    """Cooperative cancellation signal threaded through a sweep.

    The runtime never interrupts a candidate mid-training; it checks the
    token between units of work (each depth batch, and between streamed
    evaluations inside a depth) and raises :class:`SweepCancelled` at the
    first checkpoint after :meth:`cancel` — so cancellation lands within
    one depth batch, with every already-finished evaluation persisted.
    ``cancel()`` is thread-safe and idempotent; any thread (an HTTP
    handler, a lease heartbeat that learned the job was cancelled) may
    fire it while the sweep runs on another.
    """

    def __init__(self, reason: str = "cancelled") -> None:
        self._event = threading.Event()
        self.reason = reason

    def cancel(self, reason: str | None = None) -> None:
        if reason is not None:
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise SweepCancelled(self.reason)


def predicted_cost(tokens: Sequence[str], p: int) -> float:
    """Relative training cost of one candidate: parameters scale with
    ``p * (len(tokens) + 1)`` and the optimizer budget rides along, so a
    longer mixer at a deeper p is proportionally more work. Used to
    balance shard placement; only ratios matter, not units."""
    return float(p) * (len(tokens) + 1)


@dataclass(frozen=True)
class RuntimeConfig:
    """Fault-tolerance, persistence, and sharding knobs of one search run."""

    #: directory for the result cache + checkpoint; None disables both
    cache_dir: str | None = None
    #: restore finished depths from the checkpoint in ``cache_dir``
    resume: bool = False
    #: extra attempts per candidate evaluation after the first
    max_retries: int = 2
    #: per-attempt wall-clock limit in seconds (None = unlimited)
    job_timeout: float | None = None
    #: shards each depth's candidate bag is partitioned into (the Fig. 2
    #: outer level); 1 = the single-node runtime
    shards: int = 1
    #: evaluate only shard ``shard_index`` of every depth in this process
    #: (multi-process deployments launch one process per index, sharing
    #: ``cache_dir``); None = run all shards here
    shard_index: int | None = None
    #: cache commits are batched: one sqlite transaction per this many
    #: evaluations (1 = commit per evaluation; also the most a mid-depth
    #: kill can lose, minus one)
    cache_flush_every: int = 8
    #: LRU bound on the result cache (None = unbounded, the historical
    #: behaviour); in-flight keys are never evicted
    cache_max_entries: int | None = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shard_index is not None and not (
            0 <= self.shard_index < self.shards
        ):
            raise ValueError(
                f"shard_index must be in [0, {self.shards}), got {self.shard_index}"
            )
        if self.cache_flush_every < 1:
            raise ValueError(
                f"cache_flush_every must be >= 1, got {self.cache_flush_every}"
            )
        if self.cache_max_entries is not None and self.cache_max_entries < 1:
            raise ValueError(
                f"cache_max_entries must be >= 1, got {self.cache_max_entries}"
            )


class SearchRuntime:
    """Runs depth sweeps of Algorithm 1 on top of cache + job scheduler.

    One instance corresponds to one workload + evaluation config; its
    classical optima are computed exactly once, and its cache handles stay
    open across depths. Use as a context manager (or call :meth:`close`)
    so the sqlite handle is released deterministically.
    """

    def __init__(
        self,
        graphs: Sequence[Graph],
        config: SearchConfig,
        *,
        executor: Executor | None = None,
        runtime: RuntimeConfig = RuntimeConfig(),
        cache: ResultCache | None = None,
        cancel: CancellationToken | None = None,
        metrics: MetricsRegistry | None = None,
        progress: SweepProgress | None = None,
    ) -> None:
        if not graphs:
            raise ValueError("search runtime needs at least one graph")
        self.graphs = list(graphs)
        self.config = config
        self.runtime = runtime
        self.cancel = cancel
        self.metrics = metrics
        self.progress = progress
        self.executor = executor or SerialExecutor()
        self.scheduler = JobScheduler(
            self.executor,
            max_retries=runtime.max_retries,
            timeout=runtime.job_timeout,
            metrics=metrics,
        )
        # Hot-path fix: the candidate-independent brute-force solve happens
        # here, once, per the configured workload's oracle, and rides along
        # in every job payload.
        self.classical_values = classical_optima(
            self.graphs, config.evaluation.workload
        )
        self._workload_fp = workload_fingerprint(self.graphs)
        self._config_fp = config_fingerprint(config.evaluation)
        # INTERP depth hand-off state: tokens -> (p, per-graph best params)
        # harvested from each assembled depth (cache hits included, so the
        # chain is deterministic for a given sweep).
        self._interp = config.evaluation.init_strategy == "interp"
        self._warm: dict[tuple[str, ...], tuple[int, tuple]] = {}
        if self._interp and runtime.shard_index is not None:
            # A shard process only sees its slice of depth p-1, so sibling
            # processes would train the same depth-p key from different
            # (or missing) warm starts and poison the shared cache.
            raise ValueError(
                "init_strategy='interp' cannot run under shard_index: the "
                "INTERP hand-off needs every previous-depth result in one "
                "process"
            )
        # Surrogate-assisted ranking: train on each finished depth's
        # results, pre-rank the next depth's pool, evaluate only the
        # predicted-top slice (plus the exploration floor). Candidate cache
        # keys stay surrogate-independent — an evaluation is a pure
        # function of the evaluation config — but depth *checkpoints*
        # record which candidates a depth ran, so their fingerprint folds
        # the surrogate settings in: a surrogate-assisted sweep never
        # restores (or is restored by) a plain sweep's checkpoints.
        self.surrogate = None
        self._depth_config_fp = self._config_fp
        if config.surrogate.enabled:
            if runtime.shard_index is not None:
                # Same failure mode as INTERP: ranking needs the full
                # result stream of depth p-1 in one process, and sibling
                # shard processes would prune different slices of the bag.
                raise ValueError(
                    "surrogate ranking cannot run under shard_index: the "
                    "ranker trains on every previous-depth result, and "
                    "sibling shard processes would prune divergent slices"
                )
            from repro.surrogate.ranking import SurrogateAssistant

            self.surrogate = SurrogateAssistant(
                config.alphabet, config.surrogate, metrics=metrics
            )
            self._depth_config_fp = (
                f"{self._config_fp}:surrogate-{config.surrogate.fingerprint()}"
            )
        self.cache: ResultCache | None = None
        self.checkpoint: SweepCheckpoint | None = None
        # An externally-owned cache (the service's shared, multi-tenant
        # store) outlives this sweep: use it, never close it. A cache_dir
        # instead makes this runtime the owner of a private store.
        self._owns_cache = cache is None
        if cache is not None:
            self.cache = cache
        elif runtime.cache_dir is not None:
            self.cache = ResultCache(
                runtime.cache_dir,
                flush_every=runtime.cache_flush_every,
                max_entries=runtime.cache_max_entries,
                metrics=metrics,
            )
            self.checkpoint = SweepCheckpoint(runtime.cache_dir)
        self.restored_depths = 0
        # Per-sweep hit/miss accounting: counters on a *shared* cache
        # aggregate every tenant, so the sweep tracks its own view (for a
        # privately-owned cache the two are identical).
        self._sweep_hits = 0
        self._sweep_misses = 0

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self.cache is not None and self._owns_cache:
            self.cache.close()
        elif self.cache is not None:
            self.cache.flush()

    def __enter__(self) -> SearchRuntime:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accounting --------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return self._sweep_hits

    @property
    def cache_misses(self) -> int:
        return self._sweep_misses

    @property
    def cache_evictions(self) -> int:
        """Store-level evictions (shared across tenants of one cache)."""
        return self.cache.evictions if self.cache is not None else 0

    # -- the sweep ---------------------------------------------------------

    def run(
        self,
        candidates_per_depth: (
            Sequence[Sequence[tuple[str, ...]]]
            | Callable[[int], Sequence[tuple[str, ...]]]
        ),
        *,
        num_depths: int | None = None,
        predictor: Predictor | None = None,
    ) -> SearchResult:
        """Algorithm 1's depth loop.

        ``candidates_per_depth`` is either concrete per-depth candidate
        lists, or a callable ``depth_index -> candidates`` evaluated lazily
        *after* the previous depth's rewards were fed back — the closed
        loop that lets a learning predictor steer its own later proposals
        (pass ``num_depths`` in that case).
        """
        if callable(candidates_per_depth):
            if num_depths is None:
                raise ValueError("num_depths is required with a candidate provider")
            if self.runtime.shard_index is not None:
                # Sibling shard processes must slice the *same* list, but a
                # provider's proposals depend on the rewards fed back —
                # which in shard mode are only this process's slice, so
                # sibling proposals would silently diverge and the shards
                # would neither cover the bag nor stay disjoint.
                raise ValueError(
                    "shard_index requires concrete per-depth candidate "
                    "lists; predictor-driven proposals diverge between "
                    "shard processes"
                )
            provider = candidates_per_depth
            depth_count = num_depths
        else:
            concrete = [list(c) for c in candidates_per_depth]
            provider = concrete.__getitem__
            depth_count = len(concrete)

        best: CandidateEvaluation | None = None
        depth_results: list[DepthResult] = []
        total_start = time.perf_counter()
        if self.progress is not None:
            self.progress.begin_sweep(depth_count)

        for depth_index in range(depth_count):
            # Cancellation checkpoint: a cancelled sweep stops before
            # starting the next depth batch; finished depths (and every
            # evaluation already streamed into the cache) are kept.
            if self.cancel is not None:
                self.cancel.raise_if_cancelled()
            p = depth_index + 1
            candidates = list(provider(depth_index))
            if self.surrogate is not None:
                # Rank this depth's pool with everything completed so far
                # (the assistant trains lazily at the top of select) and
                # forward only the predicted-top slice + exploration floor.
                candidates = self.surrogate.select(candidates, p)
            depth_result = self._run_depth(p, candidates)
            depth_results.append(depth_result)
            if self.surrogate is not None:
                # Train-before-next-rank: the finished depth's evaluations
                # (cache hits included, keeping the stream deterministic)
                # reach the models before depth p+1 is ranked.
                self.surrogate.observe(depth_result.evaluations)
            if self._interp:
                # Harvest the depth's trained optima (cache hits included,
                # keeping the hand-off chain deterministic) so depth p+1
                # can warm-start from them.
                for evaluation in depth_result.evaluations:
                    if evaluation.best_params:
                        self._warm[evaluation.tokens] = (
                            evaluation.p,
                            evaluation.best_params,
                        )
            if predictor is not None:
                # Checkpointed/cached evaluations feed the predictor too:
                # after a kill its in-memory state is gone, so replaying
                # recorded rewards is what reconstructs it on resume.
                for evaluation in depth_result.evaluations:
                    predictor.update(evaluation.tokens, evaluation.reward)
            if depth_result.evaluations:
                depth_best = depth_result.best
                # Line 10: SELECT_BEST against the best of previous depths.
                if best is None or depth_best.reward > best.reward:
                    best = depth_best

        if best is None:
            if self.runtime.shard_index is not None:
                raise ValueError(
                    f"shard {self.runtime.shard_index}/{self.runtime.shards} "
                    "received no candidates at any depth (more shards than "
                    "candidates?)"
                )
            raise ValueError("search produced no evaluations (empty candidate sets)")
        if self.progress is not None:
            self.progress.finish_sweep()
        return SearchResult(
            best_tokens=best.tokens,
            best_p=best.p,
            best_energy=best.energy,
            best_ratio=best.ratio,
            depth_results=depth_results,
            total_seconds=time.perf_counter() - total_start,
            config=self._result_config(predictor),
        )

    # -- internals ---------------------------------------------------------

    def _run_depth(self, p: int, candidates: list[tuple[str, ...]]) -> DepthResult:
        depth_fp = depth_fingerprint(
            self._workload_fp, self._depth_config_fp, candidates, p
        )
        if self.runtime.resume and self.checkpoint is not None:
            restored = self.checkpoint.load_depth(depth_fp)
            if restored is not None:
                self.restored_depths += 1
                if self.progress is not None:
                    done = len(restored.evaluations)
                    self.progress.begin_depth(p, total=done, cached=done)
                    self.progress.finish_depth(p)
                return restored
        if self.runtime.shard_index is not None:
            # This process is one node of a multi-process deployment: it
            # owns a deterministic slice of the full bag (every sibling
            # computes the same partition of the same list) and its
            # results meet the others' in the shared cache. The depth
            # checkpoint stays untouched — it describes full depths only.
            mine = least_loaded_partition(
                [predicted_cost(tokens, p) for tokens in candidates],
                self.runtime.shards,
            )[self.runtime.shard_index]
            candidates = [candidates[i] for i in sorted(mine)]

        depth_start = time.perf_counter()
        evaluations: list[CandidateEvaluation | None] = [None] * len(candidates)
        # key -> positions awaiting its result; repeat proposals within a
        # depth (RL predictors re-propose good sequences constantly) are
        # trained once and fanned out. Insertion order doubles as job order.
        miss_positions: dict[str, list[int]] = {}
        for position, tokens in enumerate(candidates):
            key = self._candidate_key(tokens, p)
            if key in miss_positions:
                miss_positions[key].append(position)
                self._sweep_hits += 1  # repeat served without retraining
                if self.cache is not None:
                    self.cache.count_hit()
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                self._sweep_hits += 1
                evaluations[position] = cached
            else:
                self._sweep_misses += 1
                miss_positions[key] = [position]

        if self.progress is not None:
            # Positions already filled by lookups count as done from the
            # start; repeats awaiting a miss land with that miss below.
            self.progress.begin_depth(
                p,
                total=len(candidates),
                cached=sum(1 for e in evaluations if e is not None),
            )

        # Against a shared cache, claim each miss: the first tenant to
        # claim a key evaluates it, the others collect its put below
        # instead of duplicating the training run.
        owned_keys: list[str] = []
        foreign_keys: list[str] = []
        for key in miss_positions:
            if self.cache is None or self.cache.claim(key):
                owned_keys.append(key)
            else:
                foreign_keys.append(key)

        if owned_keys:
            jobs = [self._job_payload(candidates[miss_positions[key][0]], p)
                    for key in owned_keys]
            unresolved = set(owned_keys)
            try:
                # Every result is persisted as it streams back (the cache
                # batches commits), so a mid-depth kill only loses work that
                # had not reached the last flush — that is the partial-depth
                # checkpoint the restart recovers from, candidate by
                # candidate.
                for key, result in self._execute(p, owned_keys, jobs):
                    for position in miss_positions[key]:
                        evaluations[position] = result
                    if self.cache is not None:
                        self.cache.put(key, result)
                    unresolved.discard(key)
                    if self.progress is not None:
                        self.progress.record(p, len(miss_positions[key]))
                    # Mid-depth cancellation checkpoint: every streamed
                    # result above is already persisted, and the finally
                    # below releases the claims we never delivered.
                    if self.cancel is not None:
                        self.cancel.raise_if_cancelled()
            finally:
                # A failed/aborted sweep must not strand tenants waiting on
                # its claims — release whatever it never delivered.
                if self.cache is not None:
                    for key in unresolved:
                        self.cache.unclaim(key)
            if self.cache is not None:
                self.cache.flush()

        for key in foreign_keys:
            # Another sweep owns this evaluation; block until its put lands
            # (bounded by the per-job deadline when one is configured). A
            # None means the owner failed or timed out — evaluate it
            # ourselves rather than losing the candidate.
            result = self.cache.wait_for(key, timeout=self.runtime.job_timeout)
            if result is None:
                tokens = candidates[miss_positions[key][0]]
                for _, result in self._execute(
                    p, [key], [self._job_payload(tokens, p)]
                ):
                    self.cache.put(key, result)
            else:
                # Served by a concurrent sweep's work: reclassify the
                # provisional miss recorded at lookup time as a hit.
                self._sweep_misses -= 1
                self._sweep_hits += 1
            for position in miss_positions[key]:
                evaluations[position] = result
            if self.progress is not None:
                self.progress.record(p, len(miss_positions[key]))
        if foreign_keys and self.cache is not None:
            self.cache.flush()

        if self.progress is not None:
            self.progress.finish_depth(p)
        completed = tuple(e for e in evaluations if e is not None)
        depth_result = DepthResult(
            p,
            completed,
            time.perf_counter() - depth_start,
            self._depth_qasm(p, completed),
        )
        if self.checkpoint is not None and self.runtime.shard_index is None:
            self.checkpoint.save_depth(depth_fp, depth_result)
        return depth_result

    def _warm_start_for(self, tokens: Sequence[str], p: int) -> tuple | None:
        """The per-graph depth ``p - 1`` optima for ``tokens``, when the
        INTERP hand-off is active and the previous depth recorded them."""
        if not self._interp:
            return None
        entry = self._warm.get(tuple(tokens))
        if entry is None or entry[0] != p - 1:
            return None
        rows = entry[1]
        if len(rows) != len(self.graphs) or any(
            len(row) != 2 * (p - 1) for row in rows
        ):
            return None
        return rows

    def _candidate_key(self, tokens: Sequence[str], p: int) -> str:
        """The candidate's cache key; warm-started evaluations fold the
        warm start into the key so they never alias cold-started ones."""
        config_fp = self._config_fp
        warm = self._warm_start_for(tokens, p)
        if warm is not None:
            blob = json.dumps(warm, sort_keys=True, separators=(",", ":"))
            digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
            config_fp = f"{config_fp}:warm-{digest}"
        return candidate_key(self._workload_fp, tokens, p, config_fp)

    def _depth_qasm(
        self, p: int, evaluations: tuple[CandidateEvaluation, ...]
    ) -> str | None:
        """OpenQASM 2.0 of the depth winner, bound with its trained
        parameters on the first workload graph — the downstream-toolchain
        exit path every result payload now carries. ``None`` when the
        winner has no recorded parameters (pre-v3 cache entries) or uses a
        gate QASM cannot express."""
        if not evaluations:
            return None
        best = max(evaluations, key=lambda e: e.reward)
        if not best.best_params:
            return None
        try:
            ansatz = build_qaoa_ansatz(
                self.graphs[0],
                p,
                best.tokens,
                initial_hadamard=self.config.evaluation.initial_hadamard,
                workload=self.config.evaluation.workload,
            )
            return to_qasm(ansatz.bind(list(best.best_params[0])))
        except (QasmError, ValueError):
            return None

    def _job_payload(self, tokens: Sequence[str], p: int) -> tuple:
        """One picklable unit of work for ``evaluate_candidate``. Element 1
        must stay the token tuple — the sharded runtime's cost partitioner
        indexes it."""
        return (
            self.graphs,
            tokens,
            p,
            self.config.evaluation,
            self.classical_values,
            self._warm_start_for(tokens, p),
        )

    def _predicted_cost(self, tokens: Sequence[str], p: int) -> float:
        """Placement cost of one candidate: the surrogate's fitted cost
        model (measured seconds) when one is active, the static
        :func:`predicted_cost` heuristic otherwise. ``shard_index``
        slicing deliberately bypasses this — sibling processes must
        compute identical partitions from the static formula alone."""
        if self.surrogate is not None:
            return self.surrogate.predicted_cost(tokens, p)
        return predicted_cost(tokens, p)

    def _execute(
        self, p: int, keys: list[str], jobs: list[tuple]
    ) -> Iterator[tuple[str, CandidateEvaluation]]:
        """Stream ``(key, evaluation)`` pairs for the depth's cache misses.

        The single-node runtime drains one scheduler;
        :class:`~repro.core.sharded.ShardedRuntime` overrides this with
        the sharded outer level.
        """
        for job_index, result in self.scheduler.as_completed(
            evaluate_candidate, jobs
        ):
            yield keys[job_index], result

    def _result_config(self, predictor: Predictor | None) -> dict:
        stats = self.scheduler.stats
        return {
            "p_max": self.config.p_max,
            "k_max": self.config.k_max,
            "mode": self.config.mode,
            "num_samples": self.config.num_samples,
            "workload": self.config.evaluation.workload,
            "init_strategy": self.config.evaluation.init_strategy,
            "optimizer": self.config.evaluation.optimizer,
            "max_steps": self.config.evaluation.max_steps,
            "engine": self.config.evaluation.engine,
            "executor": self.executor.name,
            "num_workers": self.executor.num_workers,
            "predictor": predictor.name if predictor is not None else "exhaustive",
            "cache_dir": self.runtime.cache_dir,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "restored_depths": self.restored_depths,
            "shards": self.runtime.shards,
            "shard_index": self.runtime.shard_index,
            "jobs_submitted": stats.submitted,
            "jobs_retried": stats.retried,
            "surrogate": self.config.surrogate.enabled,
            "surrogate_kept": (
                self.surrogate.kept if self.surrogate is not None else 0
            ),
            "surrogate_skipped": (
                self.surrogate.skipped if self.surrogate is not None else 0
            ),
        }
