"""The fault-tolerant, cache-aware search runtime (Algorithm 1's engine).

``search_mixer``/``search_with_predictor`` used to drive a blocking
``starmap`` batch per depth: no result reuse across depths or runs, no
checkpointing, and a single lost worker stalled the sweep. This module is
the replacement substrate:

* **Streaming execution** — candidate evaluations go through
  :class:`~repro.parallel.jobs.JobScheduler` (``submit`` + as-completed)
  with per-job retry and timeout, so worker failures cost one job's
  latency, not the search.
* **Persistent result cache** — with a ``cache_dir``, every evaluation is
  stored in :class:`~repro.core.cache.ResultCache` keyed by
  workload/tokens/p/config fingerprints. Repeat proposals (RL predictors
  re-propose good sequences constantly), repeated depths, and whole
  re-runs are lookups instead of training loops.
* **Checkpoint/resume** — each finished depth is checkpointed
  (atomically); a killed search restarted with ``resume=True`` skips the
  depths it already completed.
* **Hoisted classical optima** — the brute-force max-cut solve (the
  candidate-independent ``2^n`` part of scoring) runs once per search and
  ships to workers in the job payload instead of once per candidate.
* **Compiled fast path** — job payloads carry the full
  :class:`~repro.core.evaluator.EvaluationConfig`, so workers train on
  whatever ``config.engine`` selects (default: the compiled NumPy engine).
  The engine is part of the config fingerprint, which keeps cached results
  from one engine from ever being replayed as another's.

The runtime is deliberately independent of how candidates are chosen: the
search front-ends hand it a per-depth candidate list and an optional
predictor to feed rewards back to.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.cache import (
    ResultCache,
    SweepCheckpoint,
    candidate_key,
    config_fingerprint,
    depth_fingerprint,
    workload_fingerprint,
)
from repro.core.evaluator import classical_optima, evaluate_candidate
from repro.core.predictor import Predictor
from repro.core.results import CandidateEvaluation, DepthResult, SearchResult
from repro.graphs.generators import Graph
from repro.parallel.executor import Executor, SerialExecutor
from repro.parallel.jobs import JobScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (search imports us)
    from repro.core.search import SearchConfig

__all__ = ["RuntimeConfig", "SearchRuntime"]


@dataclass(frozen=True)
class RuntimeConfig:
    """Fault-tolerance and persistence knobs of one search run."""

    #: directory for the result cache + checkpoint; None disables both
    cache_dir: str | None = None
    #: restore finished depths from the checkpoint in ``cache_dir``
    resume: bool = False
    #: extra attempts per candidate evaluation after the first
    max_retries: int = 2
    #: per-attempt wall-clock limit in seconds (None = unlimited)
    job_timeout: float | None = None


class SearchRuntime:
    """Runs depth sweeps of Algorithm 1 on top of cache + job scheduler.

    One instance corresponds to one workload + evaluation config; its
    classical optima are computed exactly once, and its cache handles stay
    open across depths. Use as a context manager (or call :meth:`close`)
    so the sqlite handle is released deterministically.
    """

    def __init__(
        self,
        graphs: Sequence[Graph],
        config: SearchConfig,
        *,
        executor: Executor | None = None,
        runtime: RuntimeConfig = RuntimeConfig(),
    ) -> None:
        if not graphs:
            raise ValueError("search runtime needs at least one graph")
        self.graphs = list(graphs)
        self.config = config
        self.runtime = runtime
        self.executor = executor or SerialExecutor()
        self.scheduler = JobScheduler(
            self.executor,
            max_retries=runtime.max_retries,
            timeout=runtime.job_timeout,
        )
        # Hot-path fix: the candidate-independent brute-force solve happens
        # here, once, and rides along in every job payload.
        self.classical_values = classical_optima(self.graphs)
        self._workload_fp = workload_fingerprint(self.graphs)
        self._config_fp = config_fingerprint(config.evaluation)
        self.cache: ResultCache | None = None
        self.checkpoint: SweepCheckpoint | None = None
        if runtime.cache_dir is not None:
            self.cache = ResultCache(runtime.cache_dir)
            self.checkpoint = SweepCheckpoint(runtime.cache_dir)
        self.restored_depths = 0

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self.cache is not None:
            self.cache.close()

    def __enter__(self) -> SearchRuntime:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accounting --------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    @property
    def cache_misses(self) -> int:
        return self.cache.misses if self.cache is not None else 0

    # -- the sweep ---------------------------------------------------------

    def run(
        self,
        candidates_per_depth: (
            Sequence[Sequence[tuple[str, ...]]]
            | Callable[[int], Sequence[tuple[str, ...]]]
        ),
        *,
        num_depths: int | None = None,
        predictor: Predictor | None = None,
    ) -> SearchResult:
        """Algorithm 1's depth loop.

        ``candidates_per_depth`` is either concrete per-depth candidate
        lists, or a callable ``depth_index -> candidates`` evaluated lazily
        *after* the previous depth's rewards were fed back — the closed
        loop that lets a learning predictor steer its own later proposals
        (pass ``num_depths`` in that case).
        """
        if callable(candidates_per_depth):
            if num_depths is None:
                raise ValueError("num_depths is required with a candidate provider")
            provider = candidates_per_depth
            depth_count = num_depths
        else:
            concrete = [list(c) for c in candidates_per_depth]
            provider = concrete.__getitem__
            depth_count = len(concrete)

        best: CandidateEvaluation | None = None
        depth_results: list[DepthResult] = []
        total_start = time.perf_counter()

        for depth_index in range(depth_count):
            p = depth_index + 1
            depth_result = self._run_depth(p, list(provider(depth_index)))
            depth_results.append(depth_result)
            if predictor is not None:
                # Checkpointed/cached evaluations feed the predictor too:
                # after a kill its in-memory state is gone, so replaying
                # recorded rewards is what reconstructs it on resume.
                for evaluation in depth_result.evaluations:
                    predictor.update(evaluation.tokens, evaluation.reward)
            if depth_result.evaluations:
                depth_best = depth_result.best
                # Line 10: SELECT_BEST against the best of previous depths.
                if best is None or depth_best.reward > best.reward:
                    best = depth_best

        if best is None:
            raise ValueError("search produced no evaluations (empty candidate sets)")
        return SearchResult(
            best_tokens=best.tokens,
            best_p=best.p,
            best_energy=best.energy,
            best_ratio=best.ratio,
            depth_results=depth_results,
            total_seconds=time.perf_counter() - total_start,
            config=self._result_config(predictor),
        )

    # -- internals ---------------------------------------------------------

    def _run_depth(self, p: int, candidates: list[tuple[str, ...]]) -> DepthResult:
        depth_fp = depth_fingerprint(
            self._workload_fp, self._config_fp, candidates, p
        )
        if self.runtime.resume and self.checkpoint is not None:
            restored = self.checkpoint.load_depth(depth_fp)
            if restored is not None:
                self.restored_depths += 1
                return restored

        depth_start = time.perf_counter()
        evaluations: list[CandidateEvaluation | None] = [None] * len(candidates)
        # key -> positions awaiting its result; repeat proposals within a
        # depth (RL predictors re-propose good sequences constantly) are
        # trained once and fanned out. Insertion order doubles as job order.
        miss_positions: dict[str, list[int]] = {}
        for position, tokens in enumerate(candidates):
            key = candidate_key(self._workload_fp, tokens, p, self._config_fp)
            if key in miss_positions:
                miss_positions[key].append(position)
                if self.cache is not None:
                    self.cache.hits += 1  # repeat served without retraining
                continue
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                evaluations[position] = cached
            else:
                miss_positions[key] = [position]

        if miss_positions:
            miss_keys = list(miss_positions)
            jobs = [
                (
                    self.graphs,
                    candidates[miss_positions[key][0]],
                    p,
                    self.config.evaluation,
                    self.classical_values,
                )
                for key in miss_keys
            ]
            for job_index, result in self.scheduler.as_completed(
                evaluate_candidate, jobs
            ):
                key = miss_keys[job_index]
                for position in miss_positions[key]:
                    evaluations[position] = result
                if self.cache is not None:
                    self.cache.put(key, result)

        depth_result = DepthResult(
            p,
            tuple(e for e in evaluations if e is not None),
            time.perf_counter() - depth_start,
        )
        if self.checkpoint is not None:
            self.checkpoint.save_depth(depth_fp, depth_result)
        return depth_result

    def _result_config(self, predictor: Predictor | None) -> dict:
        stats = self.scheduler.stats
        return {
            "p_max": self.config.p_max,
            "k_max": self.config.k_max,
            "mode": self.config.mode,
            "num_samples": self.config.num_samples,
            "optimizer": self.config.evaluation.optimizer,
            "max_steps": self.config.evaluation.max_steps,
            "engine": self.config.evaluation.engine,
            "executor": self.executor.name,
            "num_workers": self.executor.num_workers,
            "predictor": predictor.name if predictor is not None else "exhaustive",
            "cache_dir": self.runtime.cache_dir,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "restored_depths": self.restored_depths,
            "jobs_submitted": stats.submitted,
            "jobs_retried": stats.retried,
        }
