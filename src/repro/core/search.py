"""Algorithm 1: the QArchSearch driver loop.

For each depth ``p = 1..p_max``: obtain candidate gate combinations from
the predictor (line 5), build + train each on the workload graphs (lines
6–8; the Evaluator), collect energies (line 9), and keep the best mixer
seen across depths (line 10). Candidate evaluations within a depth are
independent, which is exactly the parallelism of Fig. 3 — ``executor``
decides whether they run serially or fan out over a process pool.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.alphabet import GateAlphabet, enumerate_search_space
from repro.core.constraints import ConstraintSet
from repro.core.evaluator import EvaluationConfig, Evaluator, evaluate_candidate
from repro.core.predictor import ExhaustivePredictor, Predictor, RandomPredictor
from repro.core.results import CandidateEvaluation, DepthResult, SearchResult
from repro.graphs.generators import Graph
from repro.parallel.executor import Executor, SerialExecutor
from repro.utils.validation import check_positive

__all__ = ["SearchConfig", "search_mixer", "search_with_predictor"]


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of Algorithm 1."""

    alphabet: GateAlphabet = GateAlphabet()
    #: maximum QAOA depth swept (paper: 4)
    p_max: int = 4
    #: maximum gates per mixer combination (paper: 4)
    k_max: int = 4
    #: minimum gates per mixer (2 restricts to the Figs. 6-7 pair space)
    k_min: int = 1
    #: candidate enumeration convention (see enumerate_search_space)
    mode: str = "sequences"
    #: candidates per depth for sampling predictors; None = whole space
    num_samples: Optional[int] = None
    #: seed for sampling predictors
    seed: int = 11
    evaluation: EvaluationConfig = field(default_factory=EvaluationConfig)
    #: optional admissibility constraints (§6's "arbitrary constraints")
    constraints: Optional[ConstraintSet] = None

    def __post_init__(self) -> None:
        check_positive(self.p_max, "p_max")
        check_positive(self.k_max, "k_max")


def search_mixer(
    graphs: Sequence[Graph],
    config: SearchConfig = SearchConfig(),
    *,
    executor: Optional[Executor] = None,
) -> SearchResult:
    """Exhaustive Algorithm 1 (the paper's profiled configuration).

    Every candidate in the space is trained at every depth; with a parallel
    executor the per-depth candidate bag fans out across workers.
    """
    candidates = enumerate_search_space(
        config.alphabet, config.k_max, k_min=config.k_min, mode=config.mode
    )
    if config.constraints is not None:
        candidates = config.constraints.filter(candidates)
    if config.num_samples is not None:
        candidates = candidates[: config.num_samples]
    return _run_depth_sweep(graphs, config, [list(candidates)] * config.p_max, executor)


def search_with_predictor(
    graphs: Sequence[Graph],
    predictor: Predictor,
    config: SearchConfig = SearchConfig(),
    *,
    candidates_per_depth: int = 32,
    executor: Optional[Executor] = None,
) -> SearchResult:
    """Algorithm 1 with a closed-loop predictor (random / bandit / RL).

    The predictor proposes ``candidates_per_depth`` sequences per depth and
    receives every reward back, so learning predictors improve across the
    depth sweep. Proposals are deduplicated within a depth (the evaluator
    cache would make repeats free anyway, but rewards should not be
    double-counted by learners).
    """
    check_positive(candidates_per_depth, "candidates_per_depth")
    per_depth: List[List[Tuple[str, ...]]] = []
    for _ in range(config.p_max):
        proposals = predictor.propose(candidates_per_depth)
        unique = list(dict.fromkeys(proposals))
        if config.constraints is not None:
            unique = config.constraints.filter(unique)
        per_depth.append(unique)
    return _run_depth_sweep(graphs, config, per_depth, executor, predictor=predictor)


def _run_depth_sweep(
    graphs: Sequence[Graph],
    config: SearchConfig,
    candidates_per_depth: Sequence[Sequence[Tuple[str, ...]]],
    executor: Optional[Executor],
    *,
    predictor: Optional[Predictor] = None,
) -> SearchResult:
    executor = executor or SerialExecutor()
    graphs = list(graphs)
    best: Optional[CandidateEvaluation] = None
    depth_results: List[DepthResult] = []
    total_start = time.perf_counter()

    for depth_index in range(config.p_max):
        p = depth_index + 1
        candidates = list(candidates_per_depth[depth_index])
        depth_start = time.perf_counter()
        jobs = [(graphs, tokens, p, config.evaluation) for tokens in candidates]
        evaluations: List[CandidateEvaluation] = executor.starmap(evaluate_candidate, jobs)
        depth_seconds = time.perf_counter() - depth_start

        if predictor is not None:
            for evaluation in evaluations:
                predictor.update(evaluation.tokens, evaluation.reward)

        depth_result = DepthResult(p, tuple(evaluations), depth_seconds)
        depth_results.append(depth_result)
        if evaluations:
            depth_best = depth_result.best
            # Line 10: SELECT_BEST against the best of previous depths.
            if best is None or depth_best.reward > best.reward:
                best = depth_best

    if best is None:
        raise ValueError("search produced no evaluations (empty candidate sets)")
    return SearchResult(
        best_tokens=best.tokens,
        best_p=best.p,
        best_energy=best.energy,
        best_ratio=best.ratio,
        depth_results=depth_results,
        total_seconds=time.perf_counter() - total_start,
        config={
            "p_max": config.p_max,
            "k_max": config.k_max,
            "mode": config.mode,
            "num_samples": config.num_samples,
            "optimizer": config.evaluation.optimizer,
            "max_steps": config.evaluation.max_steps,
            "engine": config.evaluation.engine,
            "executor": executor.name,
            "num_workers": executor.num_workers,
            "predictor": predictor.name if predictor is not None else "exhaustive",
        },
    )
