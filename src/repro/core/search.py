"""Algorithm 1: the QArchSearch driver loop.

For each depth ``p = 1..p_max``: obtain candidate gate combinations from
the predictor (line 5), build + train each on the workload graphs (lines
6–8; the Evaluator), collect energies (line 9), and keep the best mixer
seen across depths (line 10). Candidate evaluations within a depth are
independent, which is exactly the parallelism of Fig. 3 — ``executor``
decides whether they run serially or fan out over a process pool.

Execution itself lives in :class:`~repro.core.runtime.SearchRuntime`:
evaluations stream back as they complete with per-job retry/timeout, and a
``runtime=RuntimeConfig(cache_dir=...)`` makes results persistent (repeat
runs are cache lookups) and the sweep checkpointed/resumable — at both
depth and single-evaluation granularity. ``RuntimeConfig(shards=K)``
upgrades execution to :class:`~repro.core.sharded.ShardedRuntime`, the
Fig. 2 outer level: per-depth candidate bags are partitioned across K
shards (pass a sequence of K executors for one pool per shard) with
dead-shard migration onto survivors.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.alphabet import GateAlphabet, enumerate_search_space
from repro.core.cache import ResultCache
from repro.core.constraints import ConstraintSet
from repro.core.evaluator import EvaluationConfig
from repro.core.predictor import Predictor
from repro.core.results import SearchResult
from repro.core.runtime import CancellationToken, RuntimeConfig, SearchRuntime
from repro.core.sharded import ShardedRuntime
from repro.graphs.generators import Graph
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import SweepProgress
from repro.parallel.executor import Executor
from repro.surrogate.config import SurrogateConfig
from repro.utils.validation import check_positive

__all__ = ["SearchConfig", "search_mixer", "search_with_predictor"]


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of Algorithm 1."""

    alphabet: GateAlphabet = GateAlphabet()
    #: maximum QAOA depth swept (paper: 4)
    p_max: int = 4
    #: maximum gates per mixer combination (paper: 4)
    k_max: int = 4
    #: minimum gates per mixer (2 restricts to the Figs. 6-7 pair space)
    k_min: int = 1
    #: candidate enumeration convention (see enumerate_search_space)
    mode: str = "sequences"
    #: candidates per depth for sampling predictors; None = whole space
    num_samples: int | None = None
    #: seed for sampling predictors
    seed: int = 11
    evaluation: EvaluationConfig = field(default_factory=EvaluationConfig)
    #: optional admissibility constraints (§6's "arbitrary constraints")
    constraints: ConstraintSet | None = None
    #: surrogate-assisted ranking (off by default: every candidate is
    #: evaluated, the exact pre-surrogate behaviour)
    surrogate: SurrogateConfig = field(default_factory=SurrogateConfig)

    def __post_init__(self) -> None:
        check_positive(self.p_max, "p_max")
        check_positive(self.k_max, "k_max")


def _make_runtime(
    graphs: Sequence[Graph],
    config: SearchConfig,
    executor: Executor | Sequence[Executor] | None,
    runtime: RuntimeConfig | None,
    cache: ResultCache | None = None,
    cancel: CancellationToken | None = None,
    metrics: MetricsRegistry | None = None,
    progress: SweepProgress | None = None,
) -> SearchRuntime:
    """Pick the execution substrate from the runtime config.

    ``shards > 1`` (without a ``shard_index`` pinning this process to one
    shard) selects :class:`ShardedRuntime`; ``executor`` may then be a
    sequence of per-shard executors. Everything else runs single-node.
    ``cache`` injects an externally-owned (typically shared, multi-tenant)
    result store in place of a private ``runtime.cache_dir`` one;
    ``metrics``/``progress`` opt the run into the observability layer.
    """
    runtime = runtime or RuntimeConfig()
    sequence_given = executor is not None and not isinstance(executor, Executor)
    if (runtime.shards > 1 or sequence_given) and runtime.shard_index is None:
        return ShardedRuntime(
            graphs, config, executors=executor, runtime=runtime, cache=cache,
            cancel=cancel, metrics=metrics, progress=progress,
        )
    if sequence_given:
        raise ValueError(
            "a sequence of executors requires sharded execution "
            "(RuntimeConfig without shard_index)"
        )
    return SearchRuntime(
        graphs, config, executor=executor, runtime=runtime, cache=cache,
        cancel=cancel, metrics=metrics, progress=progress,
    )


def search_mixer(
    graphs: Sequence[Graph],
    config: SearchConfig = SearchConfig(),
    *,
    executor: Executor | Sequence[Executor] | None = None,
    runtime: RuntimeConfig | None = None,
    cache: ResultCache | None = None,
    cancel: CancellationToken | None = None,
    metrics: MetricsRegistry | None = None,
    progress: SweepProgress | None = None,
) -> SearchResult:
    """Exhaustive Algorithm 1 (the paper's profiled configuration).

    Every candidate in the space is trained at every depth; with a parallel
    executor the per-depth candidate bag fans out across workers. Pass
    ``runtime`` to enable the persistent cache and checkpoint/resume, or
    ``cache`` to run against an externally-owned (shared) result store —
    the search service passes its multi-tenant cache here.
    """
    candidates = enumerate_search_space(
        config.alphabet, config.k_max, k_min=config.k_min, mode=config.mode
    )
    if config.constraints is not None:
        candidates = config.constraints.filter(candidates)
    if config.num_samples is not None:
        candidates = candidates[: config.num_samples]
    return _run_depth_sweep(
        graphs,
        config,
        [list(candidates)] * config.p_max,
        executor,
        runtime=runtime,
        cache=cache,
        cancel=cancel,
        metrics=metrics,
        progress=progress,
    )


def search_with_predictor(
    graphs: Sequence[Graph],
    predictor: Predictor,
    config: SearchConfig = SearchConfig(),
    *,
    candidates_per_depth: int = 32,
    executor: Executor | Sequence[Executor] | None = None,
    runtime: RuntimeConfig | None = None,
) -> SearchResult:
    """Algorithm 1 with a closed-loop predictor (random / bandit / RL).

    The predictor proposes ``candidates_per_depth`` sequences per depth and
    receives every reward back *before the next depth proposes*, so
    learning predictors steer their own later proposals within one sweep.
    Proposals are deduplicated within a depth (the result cache makes
    repeats free anyway, but rewards should not be double-counted by
    learners).
    """
    check_positive(candidates_per_depth, "candidates_per_depth")

    def propose_depth(_depth_index: int) -> list[tuple[str, ...]]:
        proposals = predictor.propose(candidates_per_depth)
        unique = list(dict.fromkeys(proposals))
        if config.constraints is not None:
            unique = config.constraints.filter(unique)
        return unique

    with _make_runtime(graphs, config, executor, runtime) as search_runtime:
        return search_runtime.run(
            propose_depth, num_depths=config.p_max, predictor=predictor
        )


def _run_depth_sweep(
    graphs: Sequence[Graph],
    config: SearchConfig,
    candidates_per_depth: Sequence[Sequence[tuple[str, ...]]],
    executor: Executor | Sequence[Executor] | None,
    *,
    predictor: Predictor | None = None,
    runtime: RuntimeConfig | None = None,
    cache: ResultCache | None = None,
    cancel: CancellationToken | None = None,
    metrics: MetricsRegistry | None = None,
    progress: SweepProgress | None = None,
) -> SearchResult:
    with _make_runtime(
        graphs, config, executor, runtime, cache, cancel,
        metrics=metrics, progress=progress,
    ) as search_runtime:
        return search_runtime.run(candidates_per_depth, predictor=predictor)
