"""The sharded search runtime: Fig. 2's outer level made real.

The paper's Polaris deployment distributes the search at two levels —
candidate bags across *nodes* (outer), gate combinations across each
node's CPUs (inner). :class:`~repro.core.runtime.SearchRuntime` (the
inner level) streams one depth's candidates through one
:class:`~repro.parallel.jobs.JobScheduler`; :class:`ShardedRuntime` adds
the outer level on top of the identical cache/checkpoint substrate:

* each depth's cache misses are partitioned into ``runtime.shards``
  shards by **greedy least-loaded placement on predicted cost** — the
  same :func:`~repro.parallel.cluster.least_loaded_partition` rule the
  :class:`~repro.parallel.cluster.ClusterModel` uses, so the model and
  the real scheduler can never disagree about balancing;
* every shard drains through its **own scheduler** (own retry budget,
  own deadlines, own executor — one process pool per shard models one
  node), concurrently, from its own drain thread;
* a shard whose drain dies of a *node-level* fault — its executor
  refuses submissions, or a candidate exhausts its retries purely on
  timeouts (workers unreachable or hanging) — is marked **dead** and its
  unfinished candidates are re-partitioned onto the surviving shards in
  the next round; the search only fails (:class:`ShardFailedError`) when
  no shard survives. A *candidate-level* terminal failure (the worker
  ran ``evaluate_candidate`` and it raised on every retry) is not blamed
  on the node: it aborts the search with the scheduler's
  :class:`~repro.parallel.jobs.JobFailedError`, exactly like the
  single-node runtime, instead of cascading a poisoned candidate
  through every shard's retry budget;
* results funnel through one queue back to the parent thread, which owns
  the cache (single writer, commits batched) and the merged statistics.

Because candidate evaluation is deterministic given its config seed, a
sharded run returns the *same* ``SearchResult`` (best tokens/p/energy,
every evaluation) as the single-node runtime — sharding changes where
work runs, never what it computes. (The same contract holds one layer
down for the evaluator's ``engine`` and ``array_backend`` knobs — see
:mod:`repro.simulators.backends` — which is what makes the three axes
freely composable: shards x engines x array backends all hit the same
fingerprinted cache entries only for genuinely identical configs.)

Real multi-process deployments set ``RuntimeConfig(shards=K,
shard_index=i)`` — one process per shard, meeting in a shared cache
directory; the worked recipe is in ``docs/cli.md``.

.. seealso::

   :class:`~repro.core.runtime.SearchRuntime`
       the inner level: one depth's candidates through one scheduler.
   :func:`~repro.parallel.cluster.least_loaded_partition`
       the placement rule shared with the analytic
       :class:`~repro.parallel.cluster.ClusterModel`.
   ``docs/architecture.md``
       this layer in the pipeline; ``benchmarks/bench_sharded_runtime.py``
       gates shard scaling and the partial-resume win in CI.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Iterator, Sequence
from typing import TYPE_CHECKING

from repro.core.cache import ResultCache
from repro.core.evaluator import evaluate_candidate
from repro.core.results import CandidateEvaluation
from repro.core.runtime import (
    CancellationToken,
    RuntimeConfig,
    SearchRuntime,
)
from repro.graphs.generators import Graph
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.progress import SweepProgress
from repro.parallel.cluster import least_loaded_partition
from repro.parallel.executor import Executor, SerialExecutor
from repro.parallel.jobs import JobFailedError, JobScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (search imports us)
    from repro.core.search import SearchConfig

__all__ = ["ShardFailedError", "ShardedRuntime"]


class ShardFailedError(RuntimeError):
    """Every shard died with candidates still unfinished."""

    def __init__(self, num_shards: int, cause: BaseException | None) -> None:
        super().__init__(
            f"all {num_shards} shard(s) died with work unfinished"
            + (f"; last cause: {cause!r}" if cause is not None else "")
        )
        self.num_shards = num_shards
        self.cause = cause


class _Shard:
    """One outer-level failure domain: an executor + its scheduler."""

    def __init__(self, index: int, executor: Executor, scheduler: JobScheduler) -> None:
        self.index = index
        self.executor = executor
        self.scheduler = scheduler
        self.alive = True
        self.cause: BaseException | None = None


class ShardedRuntime(SearchRuntime):
    """Depth sweeps sharded across outer-level failure domains.

    Parameters
    ----------
    executors:
        ``None`` — every shard gets its own :class:`SerialExecutor`
        (tests, modelling); a single :class:`Executor` — all shards share
        one pool (separate failure domains, common workers); a sequence
        of ``runtime.shards`` executors — one per shard, the real
        one-pool-per-node deployment.
    runtime:
        Must carry ``shards >= 1`` and no ``shard_index`` (a process that
        runs *all* shards cannot also be a single shard of a larger run).
    """

    def __init__(
        self,
        graphs: Sequence[Graph],
        config: SearchConfig,
        *,
        executors: Executor | Sequence[Executor] | None = None,
        runtime: RuntimeConfig = RuntimeConfig(shards=2),
        cache: ResultCache | None = None,
        cancel: CancellationToken | None = None,
        metrics: MetricsRegistry | None = None,
        progress: SweepProgress | None = None,
    ) -> None:
        if runtime.shard_index is not None:
            raise ValueError(
                "ShardedRuntime runs every shard; shard_index is for "
                "single-shard SearchRuntime processes"
            )
        if executors is None:
            shard_executors: list[Executor] = [
                SerialExecutor() for _ in range(runtime.shards)
            ]
        elif isinstance(executors, Executor):
            shard_executors = [executors] * runtime.shards
        else:
            shard_executors = list(executors)
            if len(shard_executors) != runtime.shards:
                raise ValueError(
                    f"got {len(shard_executors)} executors for "
                    f"{runtime.shards} shards"
                )
        super().__init__(
            graphs, config, executor=shard_executors[0], runtime=runtime,
            cache=cache, cancel=cancel, metrics=metrics, progress=progress,
        )
        self.shard_states = [
            _Shard(
                index,
                executor,
                JobScheduler(
                    executor,
                    max_retries=runtime.max_retries,
                    timeout=runtime.job_timeout,
                    metrics=metrics,
                ),
            )
            for index, executor in enumerate(shard_executors)
        ]
        self.dead_shards: list[int] = []
        self.jobs_migrated = 0
        self._last_cause: BaseException | None = None
        self._m_shard: Counter | None = None
        if metrics is not None:
            self._m_shard = metrics.counter(
                "repro_shard_candidates_total",
                "Candidate evaluations completed, by shard",
                labels=("shard",),
            )

    # -- the sharded outer level -------------------------------------------

    def _execute(
        self, p: int, keys: list[str], jobs: list[tuple]
    ) -> Iterator[tuple[str, CandidateEvaluation]]:
        """Rounds of (partition -> drain shards concurrently -> migrate).

        The first round shards all misses across every live shard; each
        later round exists only if shards died mid-drain, and re-shards
        exactly their unfinished candidates onto the survivors. Results
        are yielded from the parent thread as shards push them, so the
        caller's incremental cache persistence sees them immediately.
        """
        remaining = dict(zip(keys, jobs))
        first_round = True
        while remaining:
            alive = [shard for shard in self.shard_states if shard.alive]
            if not alive:
                error = ShardFailedError(len(self.shard_states), self._last_cause)
                error.__cause__ = self._last_cause
                raise error
            if not first_round:
                self.jobs_migrated += len(remaining)
            round_keys = list(remaining)
            # _predicted_cost: the surrogate's fitted cost model (measured
            # seconds) when active, the static heuristic otherwise — all
            # shards are placed by this parent process, so a learned model
            # cannot desynchronise siblings the way shard_index would.
            bins = least_loaded_partition(
                [self._predicted_cost(remaining[key][1], p) for key in round_keys],
                len(alive),
            )
            events: queue.Queue = queue.Queue()
            threads: list[threading.Thread] = []
            for shard, indices in zip(alive, bins):
                if not indices:
                    continue
                shard_keys = [round_keys[i] for i in indices]
                thread = threading.Thread(
                    target=self._drain_shard,
                    args=(shard, shard_keys, [remaining[k] for k in shard_keys], events),
                    name=f"shard-{shard.index}-p{p}",
                    daemon=True,
                )
                threads.append(thread)
                thread.start()

            active = len(threads)
            while active:
                kind, shard, payload = events.get()
                if kind == "result":
                    key, result = payload
                    del remaining[key]
                    if self.progress is not None:
                        self.progress.record_shard(shard.index)
                    if self._m_shard is not None:
                        self._m_shard.labels(shard=str(shard.index)).inc()
                    yield key, result
                elif kind == "fatal":
                    # Candidate-level terminal failure: the node is fine,
                    # the candidate is poisoned. Abort like the
                    # single-node runtime would — migrating it would just
                    # burn every surviving shard's retry budget.
                    raise payload
                elif kind == "dead":
                    shard.alive = False
                    shard.cause = payload
                    self.dead_shards.append(shard.index)
                    self._last_cause = payload
                    active -= 1
                else:  # "done"
                    active -= 1
            for thread in threads:
                thread.join()
            first_round = False

    @staticmethod
    def _drain_shard(
        shard: _Shard,
        shard_keys: list[str],
        shard_jobs: list[tuple],
        events: queue.Queue,
    ) -> None:
        """Drain one shard's scheduler, reporting results/death upstream.

        A *node-level* fault — the executor refuses submissions (pool
        gone), or retries exhaust purely on timeouts (workers unreachable
        or hanging) — kills the *shard*, not the search; the scheduler
        has already yielded every success it drained before the error, so
        only genuinely unfinished candidates migrate. A ``JobFailedError``
        whose cause is the candidate's own exception is *fatal*: the node
        executed the work and the work failed, so migrating would only
        cascade the poisoned candidate through every shard.
        """
        try:
            for job_index, result in shard.scheduler.as_completed(
                evaluate_candidate, shard_jobs
            ):
                events.put(("result", shard, (shard_keys[job_index], result)))
        except JobFailedError as exc:
            if isinstance(exc.cause, TimeoutError):
                events.put(("dead", shard, exc))
            else:
                events.put(("fatal", shard, exc))
        except Exception as exc:  # noqa: BLE001 - shard death is survivable
            events.put(("dead", shard, exc))
        else:
            events.put(("done", shard, None))

    # -- merged accounting -------------------------------------------------

    def _result_config(self, predictor) -> dict:
        merged = super()._result_config(predictor)
        schedulers = [shard.scheduler for shard in self.shard_states]
        # A shared executor appears once, not once per shard.
        unique_executors = list(
            {id(s.executor): s.executor for s in self.shard_states}.values()
        )
        merged.update(
            {
                "executor": "sharded["
                + ",".join(dict.fromkeys(e.name for e in unique_executors))
                + "]",
                "num_workers": sum(e.num_workers for e in unique_executors),
                "jobs_submitted": sum(s.stats.submitted for s in schedulers),
                "jobs_retried": sum(s.stats.retried for s in schedulers),
                "dead_shards": list(self.dead_shards),
                "jobs_migrated": self.jobs_migrated,
            }
        )
        return merged
