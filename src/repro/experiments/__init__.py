"""Experiment harness: one driver per paper figure, shared rendering and
records. The benchmarks/ scripts are thin wrappers over these drivers."""

from repro.experiments.comparison import (
    BASELINE_MIXER,
    QNAS_MIXER,
    MixerComparison,
    run_fig8,
    run_fig9,
)
from repro.experiments.discovery import (
    PAPER_FIG7_MIXERS,
    Fig6Result,
    Fig7Result,
    draw_mixer,
    run_fig6,
    run_fig7,
)
from repro.experiments.figures import render_bars, render_grouped_bars, render_series, render_table
from repro.experiments.profiling import (
    Fig4Result,
    Fig5Result,
    candidate_bag,
    measure_candidate_durations,
    run_fig4,
    run_fig5,
)
from repro.experiments.records import ExperimentRecord, default_results_dir
from repro.experiments.scale import SCALES, ExperimentScale, get_scale

__all__ = [
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "MixerComparison",
    "candidate_bag",
    "measure_candidate_durations",
    "draw_mixer",
    "PAPER_FIG7_MIXERS",
    "BASELINE_MIXER",
    "QNAS_MIXER",
    "render_table",
    "render_bars",
    "render_grouped_bars",
    "render_series",
    "ExperimentRecord",
    "default_results_dir",
    "ExperimentScale",
    "SCALES",
    "get_scale",
]
