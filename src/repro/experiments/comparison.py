"""Baseline-vs-searched mixer drivers: Figs. 8 and 9 (§3.2).

Fig. 8 — mean approximation ratio of the baseline X mixer vs the searched
("qnas") mixer on the ER dataset, averaged over p = 1, 2, 3; the searched
mixer wins (both land in the ~0.986–1.0 band).

Fig. 9 — the same comparison broken out per p on the 10-node 4-regular
dataset; the two mixers perform comparably (aggregates equal ~1.0).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.evaluator import EvaluationConfig, Evaluator
from repro.graphs.generators import Graph

__all__ = [
    "BASELINE_MIXER",
    "QNAS_MIXER",
    "MixerComparison",
    "run_fig8",
    "run_fig9",
]

#: the default max-cut QAOA mixer
BASELINE_MIXER: tuple[str, ...] = ("rx",)
#: the mixer QArchSearch discovers (Fig. 6)
QNAS_MIXER: tuple[str, ...] = ("rx", "ry")


@dataclass
class MixerComparison:
    """Ratios of two mixers over a dataset and a set of depths."""

    p_values: list[int]
    #: mixer name -> per-p mean ratio
    per_p: dict[str, list[float]]
    #: mixer name -> ratio averaged over p (the Fig. 8 bar)
    aggregated: dict[str, float]
    #: mixer name -> per-p per-graph ratios, for distribution plots
    per_graph: dict[str, list[tuple[float, ...]]] = field(default_factory=dict)

    def winner(self) -> str:
        return max(self.aggregated, key=self.aggregated.get)


def _compare(
    graphs: Sequence[Graph],
    mixers: dict[str, tuple[str, ...]],
    p_values: Sequence[int],
    config: EvaluationConfig,
) -> MixerComparison:
    evaluator = Evaluator(graphs, config)
    per_p: dict[str, list[float]] = {name: [] for name in mixers}
    per_graph: dict[str, list[tuple[float, ...]]] = {name: [] for name in mixers}
    for name, tokens in mixers.items():
        for p in p_values:
            evaluation = evaluator.evaluate(tokens, p)
            per_p[name].append(evaluation.ratio)
            per_graph[name].append(evaluation.per_graph_ratio)
    aggregated = {name: float(np.mean(vals)) for name, vals in per_p.items()}
    return MixerComparison(
        p_values=list(p_values),
        per_p=per_p,
        aggregated=aggregated,
        per_graph=per_graph,
    )


def run_fig8(
    er_graphs: Sequence[Graph],
    *,
    baseline: tuple[str, ...] = BASELINE_MIXER,
    qnas: tuple[str, ...] = QNAS_MIXER,
    p_values: Sequence[int] = (1, 2, 3),
    config: EvaluationConfig = EvaluationConfig(),
) -> MixerComparison:
    """Baseline vs searched mixer on ER graphs, averaged over p=1,2,3."""
    return _compare(
        er_graphs, {"baseline": baseline, "qnas": qnas}, p_values, config
    )


def run_fig9(
    regular_graphs: Sequence[Graph],
    *,
    baseline: tuple[str, ...] = BASELINE_MIXER,
    qnas: tuple[str, ...] = QNAS_MIXER,
    p_values: Sequence[int] = (1, 2, 3),
    config: EvaluationConfig = EvaluationConfig(),
) -> MixerComparison:
    """Same comparison, per-p, on the 4-regular dataset (values ~1.0)."""
    return _compare(
        regular_graphs, {"baseline": baseline, "qnas": qnas}, p_values, config
    )
