"""Discovered-circuit drivers: Figs. 6 and 7 (§3.2).

Fig. 6 — the best mixer the search finds, drawn as a circuit
(paper: ``RX(2 beta) RY(2 beta)`` on every qubit).

Fig. 7 — approximation ratios at p=1 of four two-gate mixers —
``('ry','p'), ('rx','h'), ('h','p'), ('rx','ry')`` — on the 4-regular
evaluation dataset, with ``('rx','ry')`` winning.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.parameters import Parameter
from repro.core.evaluator import EvaluationConfig, Evaluator
from repro.core.results import SearchResult
from repro.core.search import SearchConfig, search_mixer
from repro.graphs.generators import Graph
from repro.parallel.executor import Executor
from repro.qaoa.mixers import mixer_label, mixer_layer

__all__ = [
    "PAPER_FIG7_MIXERS",
    "Fig6Result",
    "Fig7Result",
    "run_fig6",
    "run_fig7",
    "draw_mixer",
]

#: the four candidates Fig. 7 plots, in the paper's order
PAPER_FIG7_MIXERS: tuple[tuple[str, ...], ...] = (
    ("ry", "p"),
    ("rx", "h"),
    ("h", "p"),
    ("rx", "ry"),
)


def draw_mixer(tokens: Sequence[str], num_qubits: int = 10) -> str:
    """ASCII rendering of a mixer layer on ``num_qubits`` qubits (Fig. 6)."""
    return mixer_layer(num_qubits, tuple(tokens), Parameter("beta")).draw()


@dataclass
class Fig6Result:
    """Search outcome plus the winning circuit's drawing."""

    search: SearchResult
    drawing: str

    @property
    def best_tokens(self) -> tuple[str, ...]:
        return self.search.best_tokens


def run_fig6(
    train_graphs: Sequence[Graph],
    *,
    config: SearchConfig,
    executor: Executor | None = None,
    draw_qubits: int = 10,
) -> Fig6Result:
    """Run Algorithm 1 on the training (ER) dataset and draw the winner."""
    search = search_mixer(train_graphs, config, executor=executor)
    return Fig6Result(search, draw_mixer(search.best_tokens, draw_qubits))


@dataclass
class Fig7Result:
    """Per-mixer mean approximation ratios at fixed p."""

    p: int
    mixers: list[tuple[str, ...]]
    ratios: list[float]
    per_graph: dict[tuple[str, ...], tuple[float, ...]] = field(default_factory=dict)

    @property
    def labels(self) -> list[str]:
        return [mixer_label(m) for m in self.mixers]

    @property
    def winner(self) -> tuple[str, ...]:
        return self.mixers[int(np.argmax(self.ratios))]


def run_fig7(
    eval_graphs: Sequence[Graph],
    *,
    mixers: Sequence[tuple[str, ...]] = PAPER_FIG7_MIXERS,
    p: int = 1,
    config: EvaluationConfig = EvaluationConfig(),
) -> Fig7Result:
    """Score each candidate mixer on the 4-regular evaluation dataset."""
    evaluator = Evaluator(eval_graphs, config)
    ratios: list[float] = []
    per_graph: dict[tuple[str, ...], tuple[float, ...]] = {}
    for tokens in mixers:
        evaluation = evaluator.evaluate(tokens, p)
        ratios.append(evaluation.ratio)
        per_graph[tuple(tokens)] = evaluation.per_graph_ratio
    return Fig7Result(p=p, mixers=[tuple(m) for m in mixers], ratios=ratios, per_graph=per_graph)
