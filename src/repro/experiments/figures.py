"""Terminal rendering of experiment results.

The paper's figures are matplotlib plots; offline we render the same data
as aligned tables and ASCII bar charts so the benches' stdout *is* the
figure. Every renderer takes plain data and returns a string (callers
decide whether to print or persist).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["render_table", "render_bars", "render_grouped_bars", "render_series"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    float_format: str = "{:.4f}",
) -> str:
    """Monospace table with per-column alignment."""

    def fmt(cell) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in str_rows), default=0))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    value_format: str = "{:.4f}",
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return "(no data)"
    lo = min(values) if vmin is None else vmin
    hi = max(values) if vmax is None else vmax
    span = hi - lo or 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round((value - lo) / span * width))
        bar = "█" * filled + "░" * (width - filled)
        lines.append(f"{label.ljust(label_width)}  {bar}  {value_format.format(value)}")
    return "\n".join(lines)


def render_grouped_bars(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 30,
    value_format: str = "{:.4f}",
    vmin: float | None = None,
    vmax: float | None = None,
) -> str:
    """Grouped horizontal bars (Fig. 9 style: one group per p, one bar per
    mixer)."""
    all_values = [v for vs in series.values() for v in vs]
    if not all_values:
        return "(no data)"
    lo = min(all_values) if vmin is None else vmin
    hi = max(all_values) if vmax is None else vmax
    span = hi - lo or 1.0
    name_width = max(len(n) for n in series)
    lines = []
    for g_idx, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[g_idx]
            filled = int(round((value - lo) / span * width))
            bar = "█" * filled + "░" * (width - filled)
            lines.append(
                f"  {name.ljust(name_width)}  {bar}  {value_format.format(value)}"
            )
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    *,
    float_format: str = "{:.3f}",
) -> str:
    """Multi-series table: one row per x, one column per series (the data
    behind a line plot like Fig. 4 / Fig. 5)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [vs[i] for vs in series.values()])
    return render_table(headers, rows, float_format=float_format)
