"""Performance-profiling drivers: Figs. 4 and 5 (§3.1).

Fig. 4 — "Time to simulate circuits with serial and parallel quantum NAS
procedure", depth on the x-axis, averaged over five runs on different ER
graphs. Both arms really execute here: the serial arm uses
:class:`SerialExecutor`, the parallel arm ``Pool.starmap_async`` via
:class:`MultiprocessingExecutor`.

Fig. 5 — "Time to simulate a graph with p = 2 with different number of
cores" (8..64 in steps of 8) against a dashed serial line. Core counts
beyond this machine are *replayed* through the measured-duration scheduler
(see DESIGN.md substitutions); the worker counts that do exist here are
cross-validated against real pool runs.

Both figures train through :func:`evaluate_candidate` with the config's
simulation engine (default: the compiled NumPy engine of
:mod:`repro.simulators.compiled`), so profiling numbers track the same
fast path the search itself runs on.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.alphabet import GateAlphabet, enumerate_search_space
from repro.core.evaluator import EvaluationConfig, classical_optima, evaluate_candidate
from repro.graphs.generators import Graph
from repro.parallel.executor import MultiprocessingExecutor, SerialExecutor, available_cores
from repro.parallel.scheduler import OverheadModel, simulate_core_sweep, simulate_makespan

__all__ = [
    "Fig4Result",
    "Fig5Result",
    "candidate_bag",
    "measure_candidate_durations",
    "run_fig4",
    "run_fig5",
]


def candidate_bag(
    alphabet: GateAlphabet, k_max: int, num_candidates: int | None
) -> list[tuple[str, ...]]:
    """The fixed, deterministic candidate set a profiling run sweeps.

    Full enumeration (the paper's serial profiling examined "every possible
    rotation gate combination") truncated to ``num_candidates`` for the
    scaled presets.
    """
    space = enumerate_search_space(alphabet, k_max, mode="sequences")
    return space if num_candidates is None else space[:num_candidates]


def measure_candidate_durations(
    graph: Graph,
    p: int,
    candidates: Sequence[tuple[str, ...]],
    config: EvaluationConfig,
) -> list[float]:
    """Serial per-candidate training times — the task bag Fig. 5 replays."""
    classical = classical_optima([graph])
    durations = []
    for tokens in candidates:
        start = time.perf_counter()
        evaluate_candidate([graph], tokens, p, config, classical)
        durations.append(time.perf_counter() - start)
    return durations


@dataclass
class Fig4Result:
    """Mean serial/parallel search times per depth."""

    p_values: list[int]
    serial_seconds: list[float]  # mean over runs
    parallel_seconds: list[float]
    num_workers: int
    per_run_serial: list[list[float]] = field(default_factory=list)  # [run][p]
    per_run_parallel: list[list[float]] = field(default_factory=list)

    @property
    def improvement(self) -> list[float]:
        """Fractional time reduction per depth (paper: >50%)."""
        return [
            1.0 - par / ser if ser > 0 else 0.0
            for ser, par in zip(self.serial_seconds, self.parallel_seconds)
        ]


def run_fig4(
    run_graphs: Sequence[Graph],
    *,
    p_values: Sequence[int] = (1, 2, 3, 4),
    candidates: Sequence[tuple[str, ...]],
    config: EvaluationConfig,
    num_workers: int | None = None,
) -> Fig4Result:
    """Time the depth sweep serially and in parallel, one run per graph.

    Matches the paper's protocol: each run is the NAS inner loop on a
    different ER graph; reported times are means across runs.
    """
    num_workers = num_workers or available_cores()
    per_run_serial: list[list[float]] = []
    per_run_parallel: list[list[float]] = []

    serial = SerialExecutor()
    for graph in run_graphs:
        # Hoisted once per graph — the brute-force solve is candidate-
        # independent and must not be re-paid inside every task.
        classical = classical_optima([graph])
        row = []
        for p in p_values:
            jobs = [([graph], tokens, p, config, classical) for tokens in candidates]
            start = time.perf_counter()
            serial.starmap(evaluate_candidate, jobs)
            row.append(time.perf_counter() - start)
        per_run_serial.append(row)

    with MultiprocessingExecutor(num_workers) as pool:
        for graph in run_graphs:
            classical = classical_optima([graph])
            row = []
            for p in p_values:
                jobs = [
                    ([graph], tokens, p, config, classical) for tokens in candidates
                ]
                start = time.perf_counter()
                pool.starmap(evaluate_candidate, jobs)
                row.append(time.perf_counter() - start)
            per_run_parallel.append(row)

    return Fig4Result(
        p_values=list(p_values),
        serial_seconds=list(np.mean(per_run_serial, axis=0)),
        parallel_seconds=list(np.mean(per_run_parallel, axis=0)),
        num_workers=num_workers,
        per_run_serial=per_run_serial,
        per_run_parallel=per_run_parallel,
    )


@dataclass
class Fig5Result:
    """Measured serial time plus simulated (and validated) core scaling."""

    core_counts: list[int]
    simulated_seconds: list[float]
    serial_seconds: float  # the dashed red line
    #: real pool validation points: workers -> (measured, simulated)
    validation: dict[int, tuple[float, float]] = field(default_factory=dict)

    @property
    def best_fraction_of_serial(self) -> float:
        """min simulated time / serial time (paper quotes 0.76x faster)."""
        return min(self.simulated_seconds) / self.serial_seconds


def run_fig5(
    graph: Graph,
    *,
    p: int = 2,
    candidates: Sequence[tuple[str, ...]],
    config: EvaluationConfig,
    core_counts: Sequence[int] = (8, 16, 24, 32, 40, 48, 56, 64),
    overhead: OverheadModel = OverheadModel(worker_startup=0.15, dispatch_per_task=0.002),
    validate_workers: Sequence[int] | None = None,
) -> Fig5Result:
    """Measure the p=2 task bag once, replay it on each core count.

    ``validate_workers`` (default: every count <= the machine's cores) also
    runs the real process pool so the simulator's prediction can be checked
    against reality where reality exists.
    """
    durations = measure_candidate_durations(graph, p, candidates, config)
    serial_seconds = float(np.sum(durations))
    sweep = simulate_core_sweep(durations, core_counts, overhead=overhead)
    simulated = [r.makespan for r in sweep]

    if validate_workers is None:
        validate_workers = [w for w in (2,) if w <= available_cores()]
    classical = classical_optima([graph])
    validation: dict[int, tuple[float, float]] = {}
    for workers in validate_workers:
        jobs = [([graph], tokens, p, config, classical) for tokens in candidates]
        start = time.perf_counter()
        with MultiprocessingExecutor(workers) as pool:
            pool.starmap(evaluate_candidate, jobs)
        measured = time.perf_counter() - start
        predicted = simulate_makespan(durations, workers, overhead=overhead).makespan
        validation[workers] = (measured, predicted)

    return Fig5Result(
        core_counts=list(core_counts),
        simulated_seconds=simulated,
        serial_seconds=serial_seconds,
        validation=validation,
    )
