"""Persistent experiment records.

Each bench run writes an :class:`ExperimentRecord` JSON next to its output
so EXPERIMENTS.md's paper-vs-measured tables can be rebuilt from saved runs
(and so CI diffs catch behavioural drift in the harness itself).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["ExperimentRecord", "default_results_dir"]


def default_results_dir() -> Path:
    """``benchmarks/results`` relative to the repo root, created on demand."""
    root = Path(__file__).resolve().parents[3]
    out = root / "benchmarks" / "results"
    out.mkdir(parents=True, exist_ok=True)
    return out


@dataclass
class ExperimentRecord:
    """One figure-reproduction run: inputs, outputs, and the paper's claim."""

    experiment: str  # e.g. "fig4"
    #: what the paper reports (shape/claim being reproduced)
    paper_claim: str
    #: workload parameters actually used in this run
    parameters: dict[str, Any] = field(default_factory=dict)
    #: measured series/values
    measured: dict[str, Any] = field(default_factory=dict)
    #: one-line verdict on whether the shape holds
    verdict: str = ""
    timestamp: float = field(default_factory=time.time)

    def save(self, directory: Path | None = None) -> Path:
        directory = directory or default_results_dir()
        path = Path(directory) / f"{self.experiment}.json"
        path.write_text(json.dumps(asdict(self), indent=2, default=str))
        return path

    @classmethod
    def load(cls, experiment: str, directory: Path | None = None) -> ExperimentRecord:
        directory = directory or default_results_dir()
        data = json.loads((Path(directory) / f"{experiment}.json").read_text())
        return cls(**data)
