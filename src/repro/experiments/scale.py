"""Workload scaling presets for the benches.

The paper's workloads (20 graphs x 2500 candidates x 200 COBYLA steps) ran
on Polaris nodes; regenerating every figure at that scale on a laptop CI
box would take days. Each bench therefore reads a scale preset:

* ``ci``      — minutes on 2 cores; enough to reproduce every *shape*;
* ``laptop``  — tens of minutes; tighter statistics;
* ``paper``   — the full §3 workload (needs a real node).

Select via the ``QARCH_BENCH_SCALE`` environment variable (default ``ci``).
EXPERIMENTS.md records which preset produced the committed numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "ExperimentScale",
    "get_scale",
    "measure_array_backends",
    "paper_probe_workload",
    "seconds_per_eval",
    "SCALES",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Per-figure workload knobs."""

    name: str
    #: graphs per dataset (paper: 20)
    num_graphs: int
    #: optimizer steps per candidate (paper: 200)
    max_steps: int
    #: candidate mixers per depth in profiling runs (paper: 625 sequences)
    num_candidates: int
    #: independent repetitions for averaged figures (paper: 5)
    num_runs: int
    #: maximum QAOA depth in the Fig. 4 sweep (paper: 4)
    p_max: int


SCALES = {
    "ci": ExperimentScale(
        name="ci", num_graphs=3, max_steps=30, num_candidates=10, num_runs=2, p_max=3
    ),
    "laptop": ExperimentScale(
        name="laptop", num_graphs=8, max_steps=60, num_candidates=40, num_runs=3, p_max=4
    ),
    "paper": ExperimentScale(
        name="paper", num_graphs=20, max_steps=200, num_candidates=625, num_runs=5, p_max=4
    ),
}


def paper_probe_workload():
    """The single-candidate probe the engine benches time: a 10-qubit ER
    graph with the winning ``('rx', 'ry')`` mixer at p=4, plus a fixed
    probe parameter vector.

    Shared by ``benchmarks/bench_compiled_engine.py`` (the CI speedup
    gate) and ``scripts/bench_report.py`` (the committed throughput
    artifact) so the two can never drift onto different workloads.
    Returns ``(graph, ansatz, x)``.
    """
    import numpy as np

    from repro.graphs.generators import erdos_renyi_graph
    from repro.qaoa.ansatz import build_qaoa_ansatz

    graph = erdos_renyi_graph(10, 0.5, seed=3, require_connected=True)
    ansatz = build_qaoa_ansatz(graph, 4, ("rx", "ry"))
    x = np.random.default_rng(0).uniform(-1.0, 1.0, ansatz.num_parameters)
    return graph, ansatz, x


def seconds_per_eval(energy, x, rounds: int) -> float:
    """Shared per-evaluation timing loop for the engine benches: one
    warm-up call (which also triggers any lazy compilation), then
    ``rounds`` timed calls. Lives next to :func:`paper_probe_workload` so
    the CI speedup gate and the throughput report measure the same way.
    """
    import time

    energy.value(x)
    start = time.perf_counter()
    for _ in range(rounds):
        energy.value(x)
    return (time.perf_counter() - start) / rounds


def measure_array_backends(ansatz, x, timed_evals: int) -> dict:
    """Compiled-engine per-eval timing for every registered array backend.

    The per-backend axis the engine benches share: ``numpy`` is the gated
    baseline, ``mock_gpu`` proves the dispatch seam stays exercised (and
    bit-identical) on CPU-only runners, and a box with CuPy installed
    contributes a ``cupy`` row with no bench change — the GPU trajectory
    ``BENCH_evaluator.json`` exists to track. Every backend must
    reproduce the numpy backend's probe energy to 1e-10 or this raises.
    Timings bracket with ``synchronize`` so devices are charged for
    work, not launches. One definition, called by both
    ``benchmarks/bench_compiled_engine.py`` and
    ``scripts/bench_report.py``, so the row shape can never drift
    between the gate and the committed artifact.
    """
    from repro.qaoa.energy import AnsatzEnergy
    from repro.simulators.backends import available_array_backends, get_array_backend

    rows: dict = {}
    reference = None
    for name in available_array_backends():
        backend = get_array_backend(name)
        energy = AnsatzEnergy(ansatz, engine="compiled", array_backend=backend)
        value = energy.value(x)
        if reference is None:
            reference = value  # "numpy" registers first
        drift = abs(value - reference)
        assert drift < 1e-10, (
            f"array backend {name!r} disagrees with the numpy backend at "
            f"the probe point (|delta|={drift:.3g}) — the dispatch seam "
            "is broken"
        )
        backend.synchronize()
        seconds = seconds_per_eval(energy, x, timed_evals)
        backend.synchronize()
        rows[name] = {
            "seconds_per_eval": seconds,
            "evals_per_sec": 1.0 / seconds,
            "energy_at_probe": value,
            "stats": backend.stats(),
        }
    return rows


def get_scale(override: str | None = None) -> ExperimentScale:
    """Resolve the active preset (env ``QARCH_BENCH_SCALE`` unless overridden)."""
    name = override or os.environ.get("QARCH_BENCH_SCALE", "ci")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; options: {sorted(SCALES)}"
        ) from None
