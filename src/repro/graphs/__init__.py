"""Graph substrate: generators, paper datasets, and serialization.

The paper's evaluation uses two datasets of simple undirected graphs:

* 20 ten-node Erdős–Rényi graphs with varying connectivity (profiling, §3.1
  and Fig. 8), and
* 20 ten-node random 4-regular graphs (discovered-circuit evaluation,
  Figs. 7 and 9).

:mod:`repro.graphs.generators` implements both models from scratch (with
networkx used only in tests as a cross-check), and
:mod:`repro.graphs.datasets` pins the exact seeded instances used by the
experiment harness.
"""

from repro.graphs.datasets import (
    DATASET_FAMILIES,
    paper_er_dataset,
    paper_maxsat_dataset,
    paper_regular_dataset,
    paper_spin_glass_dataset,
    paper_weighted_dataset,
    profiling_graph,
)
from repro.graphs.generators import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    random_regular_graph,
    star_graph,
)
from repro.graphs.io import graph_from_dict, graph_to_dict, load_graphs, save_graphs

__all__ = [
    "Graph",
    "erdos_renyi_graph",
    "random_regular_graph",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
    "DATASET_FAMILIES",
    "paper_er_dataset",
    "paper_regular_dataset",
    "paper_weighted_dataset",
    "paper_maxsat_dataset",
    "paper_spin_glass_dataset",
    "profiling_graph",
    "graph_from_dict",
    "graph_to_dict",
    "load_graphs",
    "save_graphs",
]
