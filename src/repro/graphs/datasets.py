"""The pinned graph datasets used by the paper's experiments.

§3.1: "All search profiling was performed on a dataset of 20, 10-node
Erdos-Renyi graphs with varying degrees of connectivity."
§3.2: "... evaluated the possible discovered combinations of the mixer layer
on a separate dataset of 20, 10 node random 4-regular graphs."

The authors do not publish their instances, so we fix seeded equivalents:
deterministic functions of a dataset seed, stable across processes and
sessions. "Varying degrees of connectivity" is realized by sweeping the ER
edge probability over a ladder spanning sparse-but-connected to dense.
"""

from __future__ import annotations

from repro.graphs.generators import Graph, erdos_renyi_graph, random_regular_graph
from repro.utils.rng import as_rng, stable_seed
from repro.utils.validation import check_positive

__all__ = [
    "DATASET_FAMILIES",
    "paper_er_dataset",
    "paper_regular_dataset",
    "paper_weighted_dataset",
    "paper_maxsat_dataset",
    "paper_spin_glass_dataset",
    "profiling_graph",
]

#: Edge-probability ladder for "varying degrees of connectivity". 20 graphs
#: cycle through these 5 densities four times (with different seeds).
ER_PROBABILITIES = (0.3, 0.4, 0.5, 0.6, 0.7)


def paper_er_dataset(
    num_graphs: int = 20,
    num_nodes: int = 10,
    *,
    dataset_seed: int = 2023,
) -> list[Graph]:
    """The 20 ten-node Erdős–Rényi profiling/comparison graphs (§3.1, Fig. 8).

    Graph ``i`` uses edge probability ``ER_PROBABILITIES[i % 5]`` and a seed
    derived stably from ``(dataset_seed, "er", i)``. All instances are
    required to be connected so max-cut energies are comparable.
    """
    check_positive(num_graphs, "num_graphs")
    check_positive(num_nodes, "num_nodes")
    graphs = []
    for i in range(num_graphs):
        p = ER_PROBABILITIES[i % len(ER_PROBABILITIES)]
        graphs.append(
            erdos_renyi_graph(
                num_nodes,
                p,
                seed=stable_seed(dataset_seed, "er", i),
                require_connected=True,
            )
        )
    return graphs


def paper_regular_dataset(
    num_graphs: int = 20,
    num_nodes: int = 10,
    degree: int = 4,
    *,
    dataset_seed: int = 2023,
) -> list[Graph]:
    """The 20 ten-node random 4-regular evaluation graphs (§3.2, Figs. 7, 9)."""
    check_positive(num_graphs, "num_graphs")
    check_positive(num_nodes, "num_nodes")
    return [
        random_regular_graph(
            num_nodes,
            degree,
            seed=stable_seed(dataset_seed, "regular", degree, i),
        )
        for i in range(num_graphs)
    ]


def _reweighted(graph: Graph, weights) -> Graph:
    """The same topology with new edge weights (canonical edge order)."""
    return Graph(graph.num_nodes, graph.edges, tuple(float(w) for w in weights))


def paper_weighted_dataset(
    num_graphs: int = 20,
    num_nodes: int = 10,
    *,
    dataset_seed: int = 2023,
) -> list[Graph]:
    """Weighted-MaxCut instances: the ER topologies of
    :func:`paper_er_dataset` with i.i.d. uniform edge weights in
    ``[0.25, 1.75]`` (mean 1, so energies stay comparable with the
    unweighted dataset). Weight draws are keyed by
    ``(dataset_seed, "wmaxcut", i)`` — stable across processes.
    """
    graphs = []
    for i, base in enumerate(
        paper_er_dataset(num_graphs, num_nodes, dataset_seed=dataset_seed)
    ):
        rng = as_rng(stable_seed(dataset_seed, "wmaxcut", i))
        graphs.append(_reweighted(base, rng.uniform(0.25, 1.75, base.num_edges)))
    return graphs


def paper_maxsat_dataset(
    num_graphs: int = 20,
    num_nodes: int = 10,
    *,
    dataset_seed: int = 2023,
) -> list[Graph]:
    """Max-2-SAT instances: connected ER interaction graphs whose edges are
    read as 2-literal clauses (polarities derived stably per edge by the
    workload), with clause weights uniform in ``[0.5, 1.5]``.
    """
    check_positive(num_graphs, "num_graphs")
    check_positive(num_nodes, "num_nodes")
    graphs = []
    for i in range(num_graphs):
        p = ER_PROBABILITIES[i % len(ER_PROBABILITIES)]
        base = erdos_renyi_graph(
            num_nodes,
            p,
            seed=stable_seed(dataset_seed, "maxsat", i),
            require_connected=True,
        )
        rng = as_rng(stable_seed(dataset_seed, "maxsat", "weights", i))
        graphs.append(_reweighted(base, rng.uniform(0.5, 1.5, base.num_edges)))
    return graphs


def paper_spin_glass_dataset(
    num_graphs: int = 20,
    num_nodes: int = 10,
    *,
    dataset_seed: int = 2023,
) -> list[Graph]:
    """Spin-glass Ising instances: connected ER topologies with signed
    couplings ``J_e`` uniform in ``[-1, 1]`` (ferro- and antiferromagnetic
    bonds mixed, the portfolio-Ising regime).
    """
    check_positive(num_graphs, "num_graphs")
    check_positive(num_nodes, "num_nodes")
    graphs = []
    for i in range(num_graphs):
        p = ER_PROBABILITIES[i % len(ER_PROBABILITIES)]
        base = erdos_renyi_graph(
            num_nodes,
            p,
            seed=stable_seed(dataset_seed, "ising", i),
            require_connected=True,
        )
        rng = as_rng(stable_seed(dataset_seed, "ising", "couplings", i))
        graphs.append(_reweighted(base, rng.uniform(-1.0, 1.0, base.num_edges)))
    return graphs


#: Dataset family -> (implied workload registry key, instance factory).
#: The single source of truth for every spec-string surface (``repro.api``
#: workload specs, the CLI's ``--dataset`` choices, the service's submit
#: validation). Factories share the ``(num_graphs, num_nodes=..., *,
#: dataset_seed=...)`` calling convention.
DATASET_FAMILIES = {
    "er": ("maxcut", paper_er_dataset),
    "regular": ("maxcut", paper_regular_dataset),
    "wmaxcut": ("wmaxcut", paper_weighted_dataset),
    "maxsat": ("maxsat", paper_maxsat_dataset),
    "ising": ("ising", paper_spin_glass_dataset),
}


def profiling_graph(*, dataset_seed: int = 2023) -> Graph:
    """The single ER graph used for the Fig. 5 core-count sweep.

    The paper profiles "a graph" at p=2; we pin the first instance of the ER
    dataset so the Fig. 4 and Fig. 5 benches share a workload.
    """
    return paper_er_dataset(1, dataset_seed=dataset_seed)[0]
