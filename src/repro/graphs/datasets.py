"""The pinned graph datasets used by the paper's experiments.

§3.1: "All search profiling was performed on a dataset of 20, 10-node
Erdos-Renyi graphs with varying degrees of connectivity."
§3.2: "... evaluated the possible discovered combinations of the mixer layer
on a separate dataset of 20, 10 node random 4-regular graphs."

The authors do not publish their instances, so we fix seeded equivalents:
deterministic functions of a dataset seed, stable across processes and
sessions. "Varying degrees of connectivity" is realized by sweeping the ER
edge probability over a ladder spanning sparse-but-connected to dense.
"""

from __future__ import annotations

from repro.graphs.generators import Graph, erdos_renyi_graph, random_regular_graph
from repro.utils.rng import stable_seed
from repro.utils.validation import check_positive

__all__ = ["paper_er_dataset", "paper_regular_dataset", "profiling_graph"]

#: Edge-probability ladder for "varying degrees of connectivity". 20 graphs
#: cycle through these 5 densities four times (with different seeds).
ER_PROBABILITIES = (0.3, 0.4, 0.5, 0.6, 0.7)


def paper_er_dataset(
    num_graphs: int = 20,
    num_nodes: int = 10,
    *,
    dataset_seed: int = 2023,
) -> list[Graph]:
    """The 20 ten-node Erdős–Rényi profiling/comparison graphs (§3.1, Fig. 8).

    Graph ``i`` uses edge probability ``ER_PROBABILITIES[i % 5]`` and a seed
    derived stably from ``(dataset_seed, "er", i)``. All instances are
    required to be connected so max-cut energies are comparable.
    """
    check_positive(num_graphs, "num_graphs")
    check_positive(num_nodes, "num_nodes")
    graphs = []
    for i in range(num_graphs):
        p = ER_PROBABILITIES[i % len(ER_PROBABILITIES)]
        graphs.append(
            erdos_renyi_graph(
                num_nodes,
                p,
                seed=stable_seed(dataset_seed, "er", i),
                require_connected=True,
            )
        )
    return graphs


def paper_regular_dataset(
    num_graphs: int = 20,
    num_nodes: int = 10,
    degree: int = 4,
    *,
    dataset_seed: int = 2023,
) -> list[Graph]:
    """The 20 ten-node random 4-regular evaluation graphs (§3.2, Figs. 7, 9)."""
    check_positive(num_graphs, "num_graphs")
    check_positive(num_nodes, "num_nodes")
    return [
        random_regular_graph(
            num_nodes,
            degree,
            seed=stable_seed(dataset_seed, "regular", degree, i),
        )
        for i in range(num_graphs)
    ]


def profiling_graph(*, dataset_seed: int = 2023) -> Graph:
    """The single ER graph used for the Fig. 5 core-count sweep.

    The paper profiles "a graph" at p=2; we pin the first instance of the ER
    dataset so the Fig. 4 and Fig. 5 benches share a workload.
    """
    return paper_er_dataset(1, dataset_seed=dataset_seed)[0]
