"""Simple undirected graphs and random graph generators.

A tiny immutable-ish graph type is enough for QAOA max-cut: nodes are the
integers ``0..n-1`` and edges carry optional weights. We implement the two
random models the paper samples from — G(n, p) Erdős–Rényi and uniform
random d-regular graphs (pairing model with rejection) — so the package has
no runtime dependency on networkx; tests cross-validate the generators
against networkx on distributional properties.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_integer, check_positive, check_probability

__all__ = [
    "Graph",
    "erdos_renyi_graph",
    "random_regular_graph",
    "complete_graph",
    "cycle_graph",
    "path_graph",
    "star_graph",
]

Edge = tuple[int, int]


@dataclass(frozen=True)
class Graph:
    """An undirected graph on nodes ``0..num_nodes-1`` with weighted edges.

    Edges are stored canonically as ``(u, v)`` with ``u < v``; self-loops are
    rejected because they are meaningless for max-cut (a self-loop can never
    be cut). The class is hashable and order-insensitive so graphs can be
    used as cache keys by the evaluator.
    """

    num_nodes: int
    edges: tuple[Edge, ...]
    weights: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        check_positive(self.num_nodes, "num_nodes", strict=False)
        canonical: list[Edge] = []
        seen: set[Edge] = set()
        weights = self.weights if self.weights else tuple(1.0 for _ in self.edges)
        if len(weights) != len(self.edges):
            raise ValueError(
                f"got {len(weights)} weights for {len(self.edges)} edges"
            )
        canon_weights: list[float] = []
        for (u, v), w in zip(self.edges, weights):
            u = check_integer(u, "edge endpoint")
            v = check_integer(v, "edge endpoint")
            if u == v:
                raise ValueError(f"self-loop ({u}, {v}) not allowed")
            if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
                raise ValueError(
                    f"edge ({u}, {v}) out of range for {self.num_nodes} nodes"
                )
            e = (u, v) if u < v else (v, u)
            if e in seen:
                raise ValueError(f"duplicate edge {e}")
            seen.add(e)
            canonical.append(e)
            canon_weights.append(float(w))
        order = sorted(range(len(canonical)), key=lambda i: canonical[i])
        object.__setattr__(self, "edges", tuple(canonical[i] for i in order))
        object.__setattr__(self, "weights", tuple(canon_weights[i] for i in order))

    # -- basic queries ----------------------------------------------------

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def degree(self, node: int) -> int:
        """Number of edges incident to ``node``."""
        check_integer(node, "node")
        return sum(1 for u, v in self.edges if node in (u, v))

    def degrees(self) -> np.ndarray:
        """Degree of every node as an int array, vectorized over edges."""
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        if self.edges:
            arr = np.asarray(self.edges, dtype=np.int64)
            np.add.at(deg, arr[:, 0], 1)
            np.add.at(deg, arr[:, 1], 1)
        return deg

    def neighbors(self, node: int) -> list[int]:
        """Sorted neighbours of ``node``."""
        out = [v if u == node else u for u, v in self.edges if node in (u, v)]
        return sorted(out)

    def has_edge(self, u: int, v: int) -> bool:
        e = (u, v) if u < v else (v, u)
        return e in set(self.edges)

    def adjacency_matrix(self) -> np.ndarray:
        """Dense symmetric weighted adjacency matrix."""
        adj = np.zeros((self.num_nodes, self.num_nodes))
        for (u, v), w in zip(self.edges, self.weights):
            adj[u, v] = w
            adj[v, u] = w
        return adj

    def edge_array(self) -> np.ndarray:
        """Edges as an ``(m, 2)`` int array (empty-safe)."""
        if not self.edges:
            return np.zeros((0, 2), dtype=np.int64)
        return np.asarray(self.edges, dtype=np.int64)

    def weight_array(self) -> np.ndarray:
        return np.asarray(self.weights, dtype=np.float64)

    def total_weight(self) -> float:
        return float(sum(self.weights))

    def is_connected(self) -> bool:
        """Breadth-first connectivity check (isolated graphs allowed for n<=1)."""
        if self.num_nodes <= 1:
            return True
        adj: dict[int, list[int]] = {i: [] for i in range(self.num_nodes)}
        for u, v in self.edges:
            adj[u].append(v)
            adj[v].append(u)
        seen = {0}
        frontier = [0]
        while frontier:
            nxt: list[int] = []
            for node in frontier:
                for nb in adj[node]:
                    if nb not in seen:
                        seen.add(nb)
                        nxt.append(nb)
            frontier = nxt
        return len(seen) == self.num_nodes

    def __iter__(self) -> Iterator[Edge]:
        return iter(self.edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"


# -- random models ---------------------------------------------------------


def erdos_renyi_graph(
    num_nodes: int,
    edge_prob: float,
    *,
    seed=None,
    require_connected: bool = False,
    max_tries: int = 1000,
) -> Graph:
    """Sample a G(n, p) Erdős–Rényi graph.

    Each of the ``n(n-1)/2`` possible edges is present independently with
    probability ``edge_prob``. Sampling is vectorized: one uniform draw per
    candidate edge. With ``require_connected`` the draw is rejected and
    repeated until the graph is connected (the paper's 10-node instances
    with "varying degrees of connectivity" are dense enough that rejection
    is cheap).
    """
    n = check_positive(num_nodes, "num_nodes")
    p = check_probability(edge_prob, "edge_prob")
    rng = as_rng(seed)
    iu, ju = np.triu_indices(n, k=1)
    for _ in range(max_tries):
        mask = rng.random(iu.shape[0]) < p
        edges = tuple(zip(iu[mask].tolist(), ju[mask].tolist()))
        graph = Graph(n, edges)
        if not require_connected or graph.is_connected():
            return graph
    raise RuntimeError(
        f"failed to sample a connected G({n}, {p}) graph in {max_tries} tries"
    )


def random_regular_graph(
    num_nodes: int,
    degree: int,
    *,
    seed=None,
    max_tries: int = 1000,
) -> Graph:
    """Sample a uniformly random ``degree``-regular simple graph.

    Uses the configuration/pairing model with restart-on-collision: ``d``
    half-edge stubs per node are shuffled and paired; a pairing containing a
    self-loop or multi-edge is discarded and redrawn. For the paper's
    (n=10, d=4) instances the acceptance probability is high, and restarts
    keep the distribution exactly uniform over simple d-regular graphs.
    """
    n = check_positive(num_nodes, "num_nodes")
    d = check_positive(degree, "degree", strict=False)
    if d >= n:
        raise ValueError(f"degree {d} must be < num_nodes {n}")
    if (n * d) % 2 != 0:
        raise ValueError(f"n*d must be even, got n={n}, d={d}")
    if d == 0:
        return Graph(n, ())
    rng = as_rng(seed)
    stubs = np.repeat(np.arange(n), d)
    for _ in range(max_tries):
        perm = rng.permutation(stubs)
        pairs = perm.reshape(-1, 2)
        u = np.minimum(pairs[:, 0], pairs[:, 1])
        v = np.maximum(pairs[:, 0], pairs[:, 1])
        if np.any(u == v):
            continue  # self-loop
        keys = u.astype(np.int64) * n + v
        if np.unique(keys).shape[0] != keys.shape[0]:
            continue  # multi-edge
        return Graph(n, tuple(zip(u.tolist(), v.tolist())))
    raise RuntimeError(
        f"failed to sample a simple {d}-regular graph on {n} nodes "
        f"in {max_tries} tries"
    )


# -- deterministic families (tests, examples) -------------------------------


def complete_graph(num_nodes: int) -> Graph:
    """K_n."""
    n = check_positive(num_nodes, "num_nodes")
    return Graph(n, tuple((i, j) for i in range(n) for j in range(i + 1, n)))


def cycle_graph(num_nodes: int) -> Graph:
    """C_n (n >= 3)."""
    n = check_positive(num_nodes, "num_nodes")
    if n < 3:
        raise ValueError("cycle needs at least 3 nodes")
    return Graph(n, tuple((i, (i + 1) % n) for i in range(n)))


def path_graph(num_nodes: int) -> Graph:
    """P_n."""
    n = check_positive(num_nodes, "num_nodes")
    return Graph(n, tuple((i, i + 1) for i in range(n - 1)))


def star_graph(num_nodes: int) -> Graph:
    """Star with node 0 at the centre."""
    n = check_positive(num_nodes, "num_nodes")
    return Graph(n, tuple((0, i) for i in range(1, n)))
