"""Graph (de)serialization.

Experiment records persist their workloads so a figure can be regenerated
from the saved run without re-deriving seeds. The format is plain JSON —
small graphs, human-inspectable, no pickle across versions.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from repro.graphs.generators import Graph

__all__ = ["graph_to_dict", "graph_from_dict", "save_graphs", "load_graphs"]


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    """JSON-safe dict representation of a graph."""
    out: dict[str, Any] = {
        "num_nodes": graph.num_nodes,
        "edges": [list(e) for e in graph.edges],
    }
    if any(w != 1.0 for w in graph.weights):
        out["weights"] = list(graph.weights)
    return out


def graph_from_dict(data: dict[str, Any]) -> Graph:
    """Inverse of :func:`graph_to_dict`."""
    edges = tuple((int(u), int(v)) for u, v in data["edges"])
    weights = tuple(float(w) for w in data.get("weights", ()))
    return Graph(int(data["num_nodes"]), edges, weights)


def save_graphs(graphs: Sequence[Graph], path: str | Path) -> None:
    """Write a list of graphs as a JSON document."""
    payload = {"format": "repro-graphs-v1", "graphs": [graph_to_dict(g) for g in graphs]}
    Path(path).write_text(json.dumps(payload, indent=2))


def load_graphs(path: str | Path) -> list[Graph]:
    """Read graphs written by :func:`save_graphs`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-graphs-v1":
        raise ValueError(f"unrecognized graph file format in {path}")
    return [graph_from_dict(g) for g in payload["graphs"]]
