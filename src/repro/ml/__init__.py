"""NumPy-only deep-learning substrate for the DNN predictor.

Layers with hand-written backward passes (:mod:`~repro.ml.layers`),
parameter-dict optimizers (:mod:`~repro.ml.optim`), and REINFORCE
(:mod:`~repro.ml.reinforce`). No autograd framework is available offline,
so gradients are manual and finite-difference-tested.
"""

from repro.ml.activations import dsigmoid, dtanh, log_softmax, sigmoid, softmax, tanh
from repro.ml.layers import Dense, Embedding, LSTMCell
from repro.ml.optim import SGD, AdamUpdater, clip_gradients, global_grad_norm
from repro.ml.reinforce import Episode, MovingBaseline, ReinforceTrainer

__all__ = [
    "Dense",
    "Embedding",
    "LSTMCell",
    "SGD",
    "AdamUpdater",
    "clip_gradients",
    "global_grad_norm",
    "Episode",
    "MovingBaseline",
    "ReinforceTrainer",
    "sigmoid",
    "dsigmoid",
    "tanh",
    "dtanh",
    "softmax",
    "log_softmax",
]
