"""Numerically-stable activations and their derivatives.

Minimal by design: the controller needs softmax sampling, tanh/sigmoid for
the LSTM gates, and log-softmax for REINFORCE losses. Everything is
vectorized over leading batch axes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sigmoid", "dsigmoid", "tanh", "dtanh", "softmax", "log_softmax"]


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic function, stable for large |x| (no overflow in exp)."""
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    exp_x = np.exp(x[~pos])
    out[~pos] = exp_x / (1.0 + exp_x)
    return out


def dsigmoid(y: np.ndarray) -> np.ndarray:
    """Derivative in terms of the *output* ``y = sigmoid(x)``."""
    return y * (1.0 - y)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def dtanh(y: np.ndarray) -> np.ndarray:
    """Derivative in terms of the *output* ``y = tanh(x)``."""
    return 1.0 - y**2


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Shift-invariant softmax along ``axis``."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """``log softmax`` computed without forming the ratio (stable)."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
