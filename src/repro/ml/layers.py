"""NumPy neural-network layers with manual backward passes.

Just enough deep learning to run the paper's Fig. 1 loop — an LSTM
controller emitting gate tokens, trained by policy gradient. Layers own
their parameters and gradient buffers as plain dicts of arrays, and their
``backward`` methods *accumulate* into the gradient buffers so one episode
can be backpropagated step by step (BPTT) before a single optimizer update.

All backward passes are verified against central finite differences in the
test suite.
"""

from __future__ import annotations

import numpy as np

from repro.ml.activations import dsigmoid, dtanh, sigmoid, tanh
from repro.utils.rng import as_rng

__all__ = ["Dense", "Embedding", "LSTMCell"]

Array = np.ndarray


class _Layer:
    """Parameter/gradient bookkeeping shared by all layers."""

    def __init__(self) -> None:
        self.params: dict[str, Array] = {}
        self.grads: dict[str, Array] = {}

    def _add_param(self, name: str, value: Array) -> None:
        self.params[name] = value
        self.grads[name] = np.zeros_like(value)

    def zero_grad(self) -> None:
        for g in self.grads.values():
            g[...] = 0.0


class Dense(_Layer):
    """Affine map ``y = x W + b`` (inputs are row vectors / batches)."""

    def __init__(self, in_dim: int, out_dim: int, *, seed=None) -> None:
        super().__init__()
        rng = as_rng(seed)
        scale = np.sqrt(2.0 / (in_dim + out_dim))  # Glorot
        self._add_param("W", rng.normal(0.0, scale, size=(in_dim, out_dim)))
        self._add_param("b", np.zeros(out_dim))

    def forward(self, x: Array) -> tuple[Array, Array]:
        """Returns ``(y, cache)``; cache is just the input."""
        return x @ self.params["W"] + self.params["b"], x

    def backward(self, dy: Array, cache: Array) -> Array:
        """Accumulate parameter grads, return ``dx``."""
        x = cache
        if x.ndim == 1:
            self.grads["W"] += np.outer(x, dy)
            self.grads["b"] += dy
        else:
            self.grads["W"] += x.T @ dy
            self.grads["b"] += dy.sum(axis=0)
        return dy @ self.params["W"].T


class Embedding(_Layer):
    """Token id → dense vector lookup table."""

    def __init__(self, vocab_size: int, dim: int, *, seed=None) -> None:
        super().__init__()
        rng = as_rng(seed)
        self._add_param("E", rng.normal(0.0, 0.1, size=(vocab_size, dim)))

    def forward(self, token: int) -> tuple[Array, int]:
        return self.params["E"][token].copy(), token

    def backward(self, dvec: Array, cache: int) -> None:
        """Accumulate into the looked-up row (no input gradient exists)."""
        self.grads["E"][cache] += dvec


class LSTMCell(_Layer):
    """Single LSTM step with the standard i/f/g/o gate layout.

    Gate pre-activations ``z = x Wx + h Wh + b`` are split into input,
    forget, cell and output gates; the forget bias starts at +1 (the usual
    trick so early training doesn't wash out state).
    """

    def __init__(self, in_dim: int, hidden_dim: int, *, seed=None) -> None:
        super().__init__()
        rng = as_rng(seed)
        self.hidden_dim = hidden_dim
        scale = 1.0 / np.sqrt(in_dim + hidden_dim)
        self._add_param("Wx", rng.normal(0.0, scale, size=(in_dim, 4 * hidden_dim)))
        self._add_param("Wh", rng.normal(0.0, scale, size=(hidden_dim, 4 * hidden_dim)))
        bias = np.zeros(4 * hidden_dim)
        bias[hidden_dim : 2 * hidden_dim] = 1.0  # forget-gate bias
        self._add_param("b", bias)

    def initial_state(self) -> tuple[Array, Array]:
        return np.zeros(self.hidden_dim), np.zeros(self.hidden_dim)

    def forward(self, x: Array, h_prev: Array, c_prev: Array):
        """One step; returns ``(h, c, cache)``."""
        hd = self.hidden_dim
        z = x @ self.params["Wx"] + h_prev @ self.params["Wh"] + self.params["b"]
        i = sigmoid(z[:hd])
        f = sigmoid(z[hd : 2 * hd])
        g = tanh(z[2 * hd : 3 * hd])
        o = sigmoid(z[3 * hd :])
        c = f * c_prev + i * g
        tanh_c = tanh(c)
        h = o * tanh_c
        cache = (x, h_prev, c_prev, i, f, g, o, c, tanh_c)
        return h, c, cache

    def backward(self, dh: Array, dc: Array, cache) -> tuple[Array, Array, Array]:
        """Backprop one step: given upstream ``dh``/``dc``, accumulate
        parameter grads and return ``(dx, dh_prev, dc_prev)``."""
        x, h_prev, c_prev, i, f, g, o, c, tanh_c = cache
        do = dh * tanh_c
        dc_total = dc + dh * o * dtanh(tanh_c)
        di = dc_total * g
        df = dc_total * c_prev
        dg = dc_total * i
        dc_prev = dc_total * f
        dz = np.concatenate(
            [di * dsigmoid(i), df * dsigmoid(f), dg * dtanh(g), do * dsigmoid(o)]
        )
        self.grads["Wx"] += np.outer(x, dz)
        self.grads["Wh"] += np.outer(h_prev, dz)
        self.grads["b"] += dz
        dx = dz @ self.params["Wx"].T
        dh_prev = dz @ self.params["Wh"].T
        return dx, dh_prev, dc_prev
