"""Gradient-descent updates for layer parameter dicts.

These operate on the ``params``/``grads`` dictionaries of
:mod:`repro.ml.layers` modules — separate from :mod:`repro.optimizers`,
which minimizes black-box objectives over flat vectors.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

__all__ = ["SGD", "AdamUpdater", "clip_gradients", "global_grad_norm"]

Array = np.ndarray


def global_grad_norm(layers: Iterable) -> float:
    """L2 norm over every gradient buffer of every layer."""
    total = 0.0
    for layer in layers:
        for g in layer.grads.values():
            total += float(np.sum(g**2))
    return float(np.sqrt(total))


def clip_gradients(layers: Iterable, max_norm: float) -> float:
    """Scale all gradients so the global norm is at most ``max_norm``;
    returns the pre-clip norm (REINFORCE through an LSTM needs this)."""
    layers = list(layers)
    norm = global_grad_norm(layers)
    if norm > max_norm and norm > 0.0:
        scale = max_norm / norm
        for layer in layers:
            for g in layer.grads.values():
                g *= scale
    return norm


class SGD:
    """Plain (optionally momentum) SGD over layer dicts."""

    def __init__(self, layers: Iterable, lr: float = 0.01, momentum: float = 0.0) -> None:
        self.layers = list(layers)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity: list[dict[str, Array]] = [
            {k: np.zeros_like(v) for k, v in layer.params.items()} for layer in self.layers
        ]

    def step(self) -> None:
        for layer, velocity in zip(self.layers, self._velocity):
            for key, param in layer.params.items():
                v = velocity[key]
                v *= self.momentum
                v -= self.lr * layer.grads[key]
                param += v

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()


class AdamUpdater:
    """Adam over layer dicts (the controller's default trainer)."""

    def __init__(
        self,
        layers: Iterable,
        lr: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.layers = list(layers)
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._t = 0
        self._m = [
            {k: np.zeros_like(v) for k, v in layer.params.items()} for layer in self.layers
        ]
        self._v = [
            {k: np.zeros_like(v) for k, v in layer.params.items()} for layer in self.layers
        ]

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for layer, m_state, v_state in zip(self.layers, self._m, self._v):
            for key, param in layer.params.items():
                grad = layer.grads[key]
                m = m_state[key]
                v = v_state[key]
                m *= self.beta1
                m += (1 - self.beta1) * grad
                v *= self.beta2
                v += (1 - self.beta2) * grad**2
                param -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()
