"""REINFORCE policy-gradient machinery.

Implements the "Reward Propagation" arrow of the paper's Fig. 1: episodes
are token sequences sampled from a policy, rewards come from the Evaluator,
and the policy ascends ``E[(R - b) * grad log pi(a|s)]`` with a moving
baseline ``b`` for variance reduction and an entropy bonus against
premature collapse (Zoph & Le 2016 style).

The module is policy-agnostic: anything exposing ``sample_episode`` /
``backprop_episode`` (see :class:`repro.core.controller.PolicyController`)
can be trained.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

__all__ = ["Episode", "MovingBaseline", "ReinforceTrainer"]


@dataclass(frozen=True)
class Episode:
    """One sampled action sequence with its per-step log-probabilities and
    the policy caches needed for backprop."""

    actions: tuple[int, ...]
    log_prob: float
    caches: tuple


class MovingBaseline:
    """Exponential-moving-average reward baseline."""

    def __init__(self, decay: float = 0.8) -> None:
        if not 0.0 <= decay < 1.0:
            raise ValueError(f"decay must be in [0, 1), got {decay}")
        self.decay = decay
        self._value: float | None = None

    @property
    def value(self) -> float:
        return 0.0 if self._value is None else self._value

    def update(self, reward: float) -> float:
        """Fold in a new reward; returns the advantage ``reward - baseline``
        computed *before* the update (unbiased at step one)."""
        advantage = reward - self.value
        if self._value is None:
            self._value = reward
        else:
            self._value = self.decay * self._value + (1.0 - self.decay) * reward
        return advantage


class _Policy(Protocol):  # pragma: no cover - typing helper
    def sample_episode(self, rng: np.random.Generator) -> Episode: ...

    def backprop_episode(self, episode: Episode, scale: float, entropy_weight: float) -> None: ...

    def zero_grad(self) -> None: ...

    def apply_gradients(self) -> None: ...


@dataclass
class ReinforceTrainer:
    """Batch REINFORCE: sample a batch, score it, take one policy step.

    ``reward_fn`` maps an action tuple to a scalar reward (the Evaluator).
    History tracks mean reward / best reward per update for the benches.
    """

    policy: _Policy
    reward_fn: Callable[[tuple[int, ...]], float]
    batch_size: int = 8
    entropy_weight: float = 0.01
    baseline: MovingBaseline = field(default_factory=MovingBaseline)
    mean_rewards: list[float] = field(default_factory=list)
    best_reward: float = float("-inf")
    best_actions: tuple[int, ...] | None = None

    def step(self, rng: np.random.Generator) -> float:
        """One policy update; returns the batch mean reward."""
        episodes = [self.policy.sample_episode(rng) for _ in range(self.batch_size)]
        rewards = np.array([self.reward_fn(ep.actions) for ep in episodes])
        for episode, reward in zip(episodes, rewards):
            if reward > self.best_reward:
                self.best_reward = float(reward)
                self.best_actions = episode.actions
        mean_reward = float(rewards.mean())
        self.policy.zero_grad()
        for episode, reward in zip(episodes, rewards):
            advantage = reward - self.baseline.value
            # ascend advantage * grad log pi  ==  descend with scale -adv
            self.policy.backprop_episode(
                episode,
                scale=-advantage / self.batch_size,
                entropy_weight=self.entropy_weight / self.batch_size,
            )
        self.baseline.update(mean_reward)
        self.policy.apply_gradients()
        self.mean_rewards.append(mean_reward)
        return mean_reward

    def train(self, num_updates: int, rng: np.random.Generator) -> None:
        for _ in range(num_updates):
            self.step(rng)
