"""Observability: metrics registry, latency histograms, sweep progress.

A dependency-free instrumentation layer every hot subsystem reports into:

* :class:`~repro.obs.metrics.MetricsRegistry` — thread-safe counters,
  gauges, and fixed-bucket latency histograms (with quantile estimates),
  rendered in Prometheus text exposition format by :meth:`render`.
* ``registry.timer("name")`` — a timing span that lands in a histogram
  (and, when tracing is enabled, in the JSONL trace log).
* :class:`~repro.obs.progress.SweepProgress` — per-sweep candidates
  done/total per depth, the live ``progress`` field of the service's
  ``GET /status/{id}``.

Instrumentation is opt-in at every seam: each layer takes an optional
``metrics=`` registry and does nothing measurable without one, so the
library paths (and the bench trend gate) are unaffected unless a caller
— typically the search service — wires a registry through. The full
metric catalog lives in ``docs/observability.md``.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.progress import SweepProgress

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SweepProgress",
]
