"""The metrics registry: counters, gauges, histograms, timers, tracing.

Everything is stdlib + threading — no client library, nothing to install,
which is the same bargain the HTTP layer struck. The model follows the
Prometheus one closely enough that :meth:`MetricsRegistry.render` emits
valid text exposition format a stock Prometheus server scrapes as-is:

* a **metric family** has a name, a help string, and a fixed tuple of
  label *names*; each distinct tuple of label *values* owns an
  independent child (``family.labels(tenant="a").inc()``);
* families with no label names double as their own single child, so the
  common case stays one call: ``registry.counter("x_total").inc()``;
* **histograms** use fixed upper-bound buckets chosen at creation.
  Observations are O(log buckets) (one bisect + two adds under the
  family lock); quantiles are *estimates*, linearly interpolated inside
  the winning bucket — good enough for dashboards, cheap enough for the
  hot path.

Timing spans come from :meth:`MetricsRegistry.timer`::

    with registry.timer("repro_job_run_seconds", job="evaluate"):
        ...                      # observed into the histogram on exit

When **tracing** is enabled (:meth:`MetricsRegistry.enable_trace` — off
by default; ``repro serve --trace-log PATH``), every finished span —
from :meth:`~MetricsRegistry.timer` blocks and from hot paths that
report elapsed time via :meth:`~MetricsRegistry.trace_event` — appends
one JSON line ``{"ts": end, "span": name, "seconds": dur, "labels":
{...}}`` to the trace file. Disabled tracing costs one ``is None`` check
per span, so instrumented code never pays for a feature nobody turned
on. The format spec and the metric catalog live in
``docs/observability.md``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from bisect import bisect_left
from collections.abc import Iterable, Sequence
from pathlib import Path

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: latency bucket upper bounds (seconds): sub-millisecond cache lookups
#: through minutes-long candidate trainings; +Inf is implicit.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _label_string(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class _Family:
    """Shared machinery: one lock, label-keyed children, rendering."""

    kind = "untyped"

    def __init__(self, name: str, help: str, label_names: Sequence[str]) -> None:
        self.name = _check_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labels: str):
        """The child for one tuple of label values (created on first use)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    def remove(self, **labels: str) -> None:
        """Drop one child (e.g. a finished sweep's progress gauges), so
        short-lived label values don't grow the exposition forever."""
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            self._children.pop(key, None)

    def _default_child(self):
        if self.label_names:
            raise ValueError(
                f"{self.name} declares labels {self.label_names}; "
                "address a child via .labels(...)"
            )
        with self._lock:
            child = self._children.get(())
            if child is None:
                child = self._children[()] = self._new_child()
            return child

    def _new_child(self):  # pragma: no cover - subclasses implement
        raise NotImplementedError

    def _snapshot(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def render(self) -> Iterable[str]:
        yield f"# HELP {self.name} {self.help}" if self.help else (
            f"# HELP {self.name} {self.name}"
        )
        yield f"# TYPE {self.name} {self.kind}"
        for key, child in self._snapshot():
            yield from self._render_child(key, child)

    def _render_child(self, key, child):  # pragma: no cover - subclasses
        raise NotImplementedError


class _Value:
    """One child's thread-safe float cell."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def get(self) -> float:
        with self._lock:
            return self.value


class Counter(_Family):
    """Monotonically increasing count (``*_total`` by convention)."""

    kind = "counter"

    def _new_child(self) -> _Value:
        return _Value()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self._default_child().add(amount)

    def labels(self, **labels: str) -> _CounterChild:
        return _CounterChild(super().labels(**labels))

    @property
    def value(self) -> float:
        return self._default_child().get()

    def value_for(self, **labels: str) -> float:
        return _Family.labels(self, **labels).get()  # type: ignore[union-attr]

    def _render_child(self, key, child):
        yield (
            f"{self.name}{_label_string(self.label_names, key)} "
            f"{_format_value(child.get())}"
        )


class _CounterChild:
    __slots__ = ("_cell",)

    def __init__(self, cell: _Value) -> None:
        self._cell = cell

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self._cell.add(amount)


class Gauge(_Family):
    """A value that goes up and down (depths, in-flight work, progress)."""

    kind = "gauge"

    def _new_child(self) -> _Value:
        return _Value()

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().add(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().add(-amount)

    def labels(self, **labels: str) -> _Value:
        return super().labels(**labels)  # type: ignore[return-value]

    @property
    def value(self) -> float:
        return self._default_child().get()

    def value_for(self, **labels: str) -> float:
        return _Family.labels(self, **labels).get()  # type: ignore[union-attr]

    def _render_child(self, key, child):
        yield (
            f"{self.name}{_label_string(self.label_names, key)} "
            f"{_format_value(child.get())}"
        )


class _HistogramChild:
    """Fixed buckets + sum + count; observe is a bisect and two adds."""

    __slots__ = ("_lock", "bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self._lock = threading.Lock()
        self.bounds = bounds  # finite upper bounds, ascending; +Inf implicit
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """Estimated q-quantile: linear interpolation within the winning
        bucket (the Prometheus ``histogram_quantile`` rule). Observations
        beyond the last finite bound clamp to it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self.count
            if total == 0:
                return math.nan
            rank = q * total
            cumulative = 0
            for index, bucket_count in enumerate(self.counts):
                cumulative += bucket_count
                if cumulative >= rank and bucket_count:
                    if index == len(self.bounds):  # the +Inf bucket
                        return self.bounds[-1] if self.bounds else math.inf
                    upper = self.bounds[index]
                    lower = self.bounds[index - 1] if index else 0.0
                    fraction = (rank - (cumulative - bucket_count)) / bucket_count
                    return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            return self.bounds[-1] if self.bounds else math.inf


class Histogram(_Family):
    """Latency distribution in fixed buckets, with quantile estimates."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {buckets!r}")
        if bounds and bounds[-1] == math.inf:
            bounds = bounds[:-1]  # +Inf is implicit
        self.bounds = bounds
        super().__init__(name, help, label_names)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def labels(self, **labels: str) -> _HistogramChild:
        return super().labels(**labels)  # type: ignore[return-value]

    def quantile(self, q: float, **labels: str) -> float:
        child = _Family.labels(self, **labels) if labels else self._default_child()
        return child.quantile(q)  # type: ignore[union-attr]

    @property
    def count(self) -> int:
        return self._default_child().count

    @property
    def sum(self) -> float:
        return self._default_child().sum

    def _render_child(self, key, child):
        with child._lock:
            counts = list(child.counts)
            total, amount = child.count, child.sum
        cumulative = 0
        bounds = [*self.bounds, math.inf]
        for bound, bucket_count in zip(bounds, counts):
            cumulative += bucket_count
            labels = _label_string(
                (*self.label_names, "le"), (*key, _format_value(bound))
            )
            yield f"{self.name}_bucket{labels} {cumulative}"
        suffix = _label_string(self.label_names, key)
        yield f"{self.name}_sum{suffix} {_format_value(amount)}"
        yield f"{self.name}_count{suffix} {total}"


class _Timer:
    """Context manager: observe elapsed seconds on exit (+ trace event)."""

    __slots__ = ("_registry", "_child", "_name", "_labels", "_start")

    def __init__(self, registry: MetricsRegistry, child, name: str, labels) -> None:
        self._registry = registry
        self._child = child
        self._name = name
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> _Timer:
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        self._child.observe(elapsed)
        trace = self._registry._trace
        if trace is not None:
            trace.emit(self._name, elapsed, self._labels)


class _TraceLog:
    """Append-only JSONL span log (one file handle, one lock)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = self.path.open("a", encoding="utf-8")

    def emit(self, span: str, seconds: float, labels: dict[str, str]) -> None:
        record = {"ts": time.time(), "span": span, "seconds": seconds}
        if labels:
            record["labels"] = labels
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            self._handle.close()


class MetricsRegistry:
    """All of one process's metric families, plus rendering and tracing.

    Get-or-create accessors (:meth:`counter` / :meth:`gauge` /
    :meth:`histogram`) are idempotent for matching declarations and raise
    on conflicting ones, so independent layers can declare the same
    family without coordinating — the service passes **one** registry
    through the queue, cache, fleet, and every sweep, and ``/metrics``
    renders the union.

    Collector callbacks (:meth:`add_collector`) run at the top of every
    :meth:`render`, which is how point-in-time gauges (queue depth,
    uptime) stay fresh per scrape without a background thread.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list = []
        self._trace: _TraceLog | None = None

    # -- family accessors ---------------------------------------------------

    def _get_or_create(self, cls, name, help, label_names, **kwargs) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls) or family.label_names != tuple(
                    label_names
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(family).__name__} with labels "
                        f"{family.label_names}"
                    )
                return family
            family = cls(name, help, tuple(label_names), **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)  # type: ignore

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)  # type: ignore

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, help, labels, buckets=buckets
        )

    def timer(self, name: str, help: str = "", **labels: str) -> _Timer:
        """A span: time a ``with`` block into histogram ``name``."""
        family = self.histogram(name, help, labels=tuple(sorted(labels)))
        child = family.labels(**labels) if labels else family._default_child()
        return _Timer(self, child, name, labels)

    # -- scrape-time collectors ---------------------------------------------

    def add_collector(self, collect) -> None:
        """Register ``collect()`` to run before each render (point-in-time
        gauges: queue depth, uptime, slot liveness)."""
        with self._lock:
            self._collectors.append(collect)

    # -- tracing ------------------------------------------------------------

    def enable_trace(self, path: str | Path) -> None:
        """Start appending span events to ``path`` (JSONL)."""
        self.disable_trace()
        self._trace = _TraceLog(path)

    def trace_event(self, span: str, seconds: float, **labels) -> None:
        """Append one span event to the trace log directly — for hot paths
        that measure elapsed time themselves instead of wrapping a ``with``
        block. A no-op (one ``is None`` check) when tracing is off."""
        trace = self._trace
        if trace is not None:
            trace.emit(span, seconds, labels)

    def disable_trace(self) -> None:
        trace, self._trace = self._trace, None
        if trace is not None:
            trace.close()

    @property
    def trace_path(self) -> Path | None:
        return self._trace.path if self._trace is not None else None

    # -- output -------------------------------------------------------------

    def render(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            collectors = list(self._collectors)
        for collect in collectors:
            collect()
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        lines: list[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""
