"""Per-sweep progress: candidates done/total per depth, live throughput.

A sweep used to be observable only at the ends — submitted, then done.
:class:`SweepProgress` is the in-between: the runtime stamps it as each
depth opens and as each candidate evaluation lands (cache hit, freshly
trained, or collected from another sweep's in-flight claim), and anyone
holding the object reads a consistent snapshot via :meth:`to_dict` — the
``progress`` field of the service's ``GET /status/{id}``.

``candidates_done`` is **monotonically non-decreasing** for the life of
a sweep (tested as such): depth totals only grow the denominator, and
every recorded completion only grows the numerator. Restored depths
count all their candidates at once.

Given a registry (and identifying labels, e.g. the service job id), the
tracker also mirrors itself into two gauges —
``repro_sweep_candidates_done`` / ``repro_sweep_candidates_total`` — so
``GET /metrics`` shows every live sweep's position; :meth:`unregister`
drops those label children when the sweep leaves the system.
"""

from __future__ import annotations

import threading
import time

from repro.obs.metrics import MetricsRegistry

__all__ = ["SweepProgress"]


class SweepProgress:
    """Thread-safe progress tracker for one sweep.

    Parameters
    ----------
    metrics:
        Optional registry to mirror done/total gauges into.
    labels:
        Label values identifying this sweep in those gauges (label
        *names* are the dict keys; the service uses ``{"job": id}``).
    """

    def __init__(
        self,
        *,
        metrics: MetricsRegistry | None = None,
        labels: dict[str, str] | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self.started_at = time.time()
        self._t0 = time.monotonic()
        self.depths_total = 0
        self.current_depth: int | None = None
        self.candidates_total = 0
        self.candidates_done = 0
        #: p -> {"total", "done", "cached", "seconds" (None while open)}
        self.depths: dict[int, dict] = {}
        #: shard index -> candidates evaluated there (sharded runs only)
        self.shard_counts: dict[int, int] = {}
        self.finished_at: float | None = None
        self._metrics = metrics
        self._labels = dict(labels or {})
        self._gauges = None
        if metrics is not None:
            names = tuple(sorted(self._labels))
            done = metrics.gauge(
                "repro_sweep_candidates_done",
                "Candidate evaluations finished in this sweep",
                labels=names,
            )
            total = metrics.gauge(
                "repro_sweep_candidates_total",
                "Candidate evaluations this sweep will run in depths seen so far",
                labels=names,
            )
            self._gauges = (done, total)
            self._mirror()

    # -- runtime-side recording ---------------------------------------------

    def begin_sweep(self, depths_total: int) -> None:
        with self._lock:
            self.depths_total = int(depths_total)

    def begin_depth(self, p: int, total: int, cached: int = 0) -> None:
        """Open depth ``p``: ``total`` candidates, ``cached`` of them
        already served by lookups before any job was submitted."""
        with self._lock:
            if p not in self.depths:
                self.depths[p] = {
                    "total": 0, "done": 0, "cached": 0, "seconds": None,
                    "_opened": time.monotonic(),
                }
            entry = self.depths[p]
            entry["total"] += int(total)
            entry["done"] += int(cached)
            entry["cached"] += int(cached)
            self.current_depth = p
            self.candidates_total += int(total)
            self.candidates_done += int(cached)
        self._mirror()

    def record(self, p: int, n: int = 1, *, shard: int | None = None) -> None:
        """``n`` more candidate evaluations of depth ``p`` finished."""
        with self._lock:
            entry = self.depths.get(p)
            if entry is not None:
                entry["done"] += int(n)
            self.candidates_done += int(n)
            if shard is not None:
                self.shard_counts[shard] = self.shard_counts.get(shard, 0) + int(n)
        self._mirror()

    def record_shard(self, shard: int, n: int = 1) -> None:
        """Attribute ``n`` already-recorded completions to ``shard``
        (the sharded runtime's drain threads report shard identity
        separately from the depth accounting)."""
        with self._lock:
            self.shard_counts[shard] = self.shard_counts.get(shard, 0) + int(n)

    def finish_depth(self, p: int) -> None:
        with self._lock:
            entry = self.depths.get(p)
            if entry is not None and entry["seconds"] is None:
                entry["seconds"] = time.monotonic() - entry.pop("_opened")

    def finish_sweep(self) -> None:
        """Stamp the sweep's end (idempotent: the first stamp wins, so a
        supervisor's cleanup cannot overwrite the runtime's)."""
        with self._lock:
            if self.finished_at is None:
                self.finished_at = time.time()

    # -- consumers ----------------------------------------------------------

    def to_dict(self) -> dict:
        """A consistent JSON-safe snapshot (the ``/status`` payload)."""
        with self._lock:
            elapsed = time.monotonic() - self._t0
            per_depth = []
            for p in sorted(self.depths):
                entry = self.depths[p]
                seconds = entry["seconds"]
                if seconds is None:
                    seconds = time.monotonic() - entry["_opened"]
                per_depth.append(
                    {
                        "p": p,
                        "total": entry["total"],
                        "done": entry["done"],
                        "cached": entry["cached"],
                        "seconds": round(seconds, 6),
                    }
                )
            done, total = self.candidates_done, self.candidates_total
            snapshot = {
                "depths_total": self.depths_total,
                "current_depth": self.current_depth,
                "candidates_total": total,
                "candidates_done": done,
                "percent": round(100.0 * done / total, 2) if total else 0.0,
                "elapsed_seconds": round(elapsed, 6),
                "throughput_per_second": (
                    round(done / elapsed, 6) if elapsed > 0 else 0.0
                ),
                "per_depth": per_depth,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
            }
            if self.shard_counts:
                snapshot["per_shard"] = {
                    str(index): {
                        "done": count,
                        "throughput_per_second": (
                            round(count / elapsed, 6) if elapsed > 0 else 0.0
                        ),
                    }
                    for index, count in sorted(self.shard_counts.items())
                }
            return snapshot

    # -- gauge mirroring ----------------------------------------------------

    def _mirror(self) -> None:
        if self._gauges is None:
            return
        done, total = self._gauges
        if self._labels:
            done.labels(**self._labels).set(self.candidates_done)
            total.labels(**self._labels).set(self.candidates_total)
        else:
            done.set(self.candidates_done)
            total.set(self.candidates_total)

    def unregister(self) -> None:
        """Remove this sweep's gauge children (label hygiene: finished
        jobs must not grow ``/metrics`` forever)."""
        if self._gauges is None or not self._labels:
            return
        done, total = self._gauges
        done.remove(**self._labels)
        total.remove(**self._labels)
