"""Classical optimizers for the variational training loop.

:class:`Cobyla` is the paper's choice (200 steps); :class:`NelderMead`,
:class:`SPSA` and :class:`Adam` support the ablation benches and noisy /
gradient-based training modes.
"""

from repro.optimizers.adam import Adam
from repro.optimizers.base import ObjectiveTracer, OptimizeResult, Optimizer
from repro.optimizers.cobyla import Cobyla
from repro.optimizers.nelder_mead import NelderMead
from repro.optimizers.spsa import SPSA

__all__ = [
    "Optimizer",
    "OptimizeResult",
    "ObjectiveTracer",
    "Cobyla",
    "NelderMead",
    "SPSA",
    "Adam",
    "make_optimizer",
]


def make_optimizer(name: str, **kwargs) -> Optimizer:
    """Factory used by experiment configs (``"cobyla"``, ``"nelder_mead"``,
    ``"spsa"``; ``"adam"`` requires a ``gradient`` kwarg)."""
    registry = {
        "cobyla": Cobyla,
        "nelder_mead": NelderMead,
        "spsa": SPSA,
        "adam": Adam,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(f"unknown optimizer {name!r}; options: {sorted(registry)}") from None
    return cls(**kwargs)
