"""Classical optimizers for the variational training loop.

:class:`Cobyla` is the paper's choice (200 steps); :class:`NelderMead`,
:class:`SPSA` and :class:`Adam` support the ablation benches and noisy /
gradient-based training modes — all three are batch-native
(:meth:`~repro.optimizers.base.Optimizer.minimize_batch`), and
:class:`MultiRestart` trains a whole population of restarts as one batch
on the compiled engine's vectorized evaluation seam.
"""

from repro.optimizers.adam import Adam
from repro.optimizers.base import (
    BatchObjective,
    ObjectiveTracer,
    Optimizer,
    OptimizeResult,
    batch_values,
)
from repro.optimizers.cobyla import Cobyla
from repro.optimizers.nelder_mead import NelderMead
from repro.optimizers.restarts import BATCH_MODES, MultiRestart
from repro.optimizers.spsa import SPSA

__all__ = [
    "BATCH_MODES",
    "Adam",
    "BatchObjective",
    "Cobyla",
    "MultiRestart",
    "NelderMead",
    "ObjectiveTracer",
    "OptimizeResult",
    "Optimizer",
    "SPSA",
    "batch_values",
    "make_optimizer",
    "training_optimizer",
]


def make_optimizer(name: str, **kwargs) -> Optimizer:
    """Factory used by experiment configs (``"cobyla"``, ``"nelder_mead"``,
    ``"spsa"``; ``"adam"`` requires a ``gradient`` kwarg; ``"multi_restart"``
    requires a ``base`` optimizer)."""
    registry = {
        "cobyla": Cobyla,
        "nelder_mead": NelderMead,
        "spsa": SPSA,
        "adam": Adam,
        "multi_restart": MultiRestart,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(f"unknown optimizer {name!r}; options: {sorted(registry)}") from None
    return cls(**kwargs)


def training_optimizer(
    name: str,
    *,
    max_steps: int,
    seed=None,
    gradient=None,
    gradient_batch=None,
) -> Optimizer:
    """Budget-aware construction for the variational training loop.

    One home for the per-optimizer budget rules so the Evaluator and the
    warm-started depth sweep can never drift apart: COBYLA/Nelder-Mead
    take ``max_steps`` directly, SPSA spends 2 evals per iteration so its
    iteration count is halved to respect the same evaluation budget, and
    Adam needs the objective's (batched) gradient callables.
    """
    if name == "cobyla":
        return Cobyla(maxiter=max_steps)
    if name == "nelder_mead":
        return NelderMead(maxiter=max_steps)
    if name == "spsa":
        return SPSA(maxiter=max(1, max_steps // 2), seed=seed)
    if name == "adam":
        if gradient is None:
            raise ValueError("adam training requires a gradient callable")
        return Adam(
            gradient=gradient, gradient_batch=gradient_batch, maxiter=max_steps
        )
    raise ValueError(
        f"unknown optimizer {name!r}; options: "
        "['adam', 'cobyla', 'nelder_mead', 'spsa']"
    )
