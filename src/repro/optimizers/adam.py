"""Adam for exact-gradient variational training.

Pairs with the parameter-shift gradients of
:meth:`repro.qaoa.energy.AnsatzEnergy.gradient` — the gradient-based
alternative the optimizer ablation bench measures against the paper's
derivative-free COBYLA.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.optimizers.base import (
    GradientFn,
    Objective,
    ObjectiveTracer,
    OptimizeResult,
    Optimizer,
)

__all__ = ["Adam"]


class Adam(Optimizer):
    """Standard Adam (Kingma & Ba) with bias correction and optional
    gradient-norm stopping."""

    name = "adam"

    def __init__(
        self,
        gradient: GradientFn,
        maxiter: int = 100,
        learning_rate: float = 0.05,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        gtol: float = 1e-6,
    ) -> None:
        self.gradient = gradient
        self.maxiter = int(maxiter)
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.gtol = float(gtol)

    def minimize(self, fn: Objective, x0: Sequence[float]) -> OptimizeResult:
        tracer = ObjectiveTracer(fn)
        x = np.asarray(x0, dtype=float).copy()
        m = np.zeros_like(x)
        v = np.zeros_like(x)
        tracer(x)
        converged = False
        nit = 0
        for nit in range(1, self.maxiter + 1):
            grad = np.asarray(self.gradient(x), dtype=float)
            if np.linalg.norm(grad) < self.gtol:
                converged = True
                break
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            m_hat = m / (1 - self.beta1**nit)
            v_hat = v / (1 - self.beta2**nit)
            x = x - self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
            tracer(x)
        return OptimizeResult(
            x=tracer.best_x,
            fun=tracer.best,
            nfev=tracer.nfev,
            nit=nit,
            converged=converged,
            message="gradient norm below gtol" if converged else "maxiter reached",
            history=tracer.trace,
        )
