"""Adam for exact-gradient variational training.

Pairs with the parameter-shift gradients of
:meth:`repro.qaoa.energy.AnsatzEnergy.gradient` — the gradient-based
alternative the optimizer ablation bench measures against the paper's
derivative-free COBYLA.

Batch-native: :meth:`Adam.minimize_batch` updates a population of K
restarts in lockstep with vectorized moment buffers. Gradients come from
``gradient_batch`` when provided — on the compiled engine that is one
batched parameter-shift pass over all K points
(:meth:`repro.qaoa.energy.AnsatzEnergy.gradients`) — and the post-update
objective values of all restarts are scored in one batched call.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.optimizers.base import (
    BatchFn,
    GradientFn,
    Objective,
    ObjectiveTracer,
    Optimizer,
    OptimizeResult,
    batch_values,
)

__all__ = ["Adam"]


class Adam(Optimizer):
    """Standard Adam (Kingma & Ba) with bias correction and optional
    gradient-norm stopping."""

    name = "adam"
    supports_batch = True

    def __init__(
        self,
        gradient: GradientFn,
        maxiter: int = 100,
        learning_rate: float = 0.05,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        gtol: float = 1e-6,
        gradient_batch: BatchFn | None = None,
    ) -> None:
        self.gradient = gradient
        #: optional ``(B, dim) -> (B, dim)`` batched gradient (one
        #: parameter-shift pass for the whole population on the compiled
        #: engine); falls back to a per-point loop over ``gradient``
        self.gradient_batch = gradient_batch
        self.maxiter = int(maxiter)
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.gtol = float(gtol)

    def minimize(self, fn: Objective, x0: Sequence[float]) -> OptimizeResult:
        tracer = ObjectiveTracer(fn)
        x = np.asarray(x0, dtype=float).copy()
        m = np.zeros_like(x)
        v = np.zeros_like(x)
        tracer(x)
        converged = False
        nit = 0
        for nit in range(1, self.maxiter + 1):
            grad = np.asarray(self.gradient(x), dtype=float)
            if np.linalg.norm(grad) < self.gtol:
                converged = True
                break
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            m_hat = m / (1 - self.beta1**nit)
            v_hat = v / (1 - self.beta2**nit)
            x = x - self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)
            tracer(x)
        return OptimizeResult(
            x=tracer.best_x,
            fun=tracer.best,
            nfev=tracer.nfev,
            nit=nit,
            converged=converged,
            message="gradient norm below gtol" if converged else "maxiter reached",
            history=tracer.trace,
        )

    def _gradients(self, X: np.ndarray) -> np.ndarray:
        if self.gradient_batch is not None:
            grads = np.asarray(self.gradient_batch(X), dtype=float)
            if grads.shape != X.shape:
                raise ValueError(
                    f"gradient_batch returned shape {grads.shape} for "
                    f"points of shape {X.shape}"
                )
            return grads
        return np.stack([np.asarray(self.gradient(x), dtype=float) for x in X])

    def minimize_batch(
        self,
        fn: Objective,
        X0: np.ndarray,
        batch_fn: BatchFn | None = None,
    ) -> list[OptimizeResult]:
        """Lockstep Adam over the rows of ``X0``.

        All restarts share one gradient batch and one value batch per
        iteration; each converges independently on its own gradient norm,
        mirroring a serial :meth:`minimize` run point for point.
        """
        X = np.atleast_2d(np.asarray(X0, dtype=float)).copy()
        restarts, dim = X.shape
        tracers = [ObjectiveTracer(fn, batch_fn) for _ in range(restarts)]
        for k, value in zip(range(restarts), batch_values(fn, batch_fn, X)):
            tracers[k].record(X[k], float(value))

        m = np.zeros_like(X)
        v = np.zeros_like(X)
        active = np.ones(restarts, dtype=bool)
        nits = np.zeros(restarts, dtype=int)
        converged = np.zeros(restarts, dtype=bool)
        for nit in range(1, self.maxiter + 1):
            rows = np.flatnonzero(active)
            if rows.size == 0:
                break
            nits[rows] = nit
            grads = self._gradients(X[rows])
            norms = np.linalg.norm(grads, axis=1)
            done = norms < self.gtol
            converged[rows[done]] = True
            active[rows[done]] = False
            rows = rows[~done]
            if rows.size == 0:
                continue
            grads = grads[~done]
            m[rows] = self.beta1 * m[rows] + (1 - self.beta1) * grads
            v[rows] = self.beta2 * v[rows] + (1 - self.beta2) * grads**2
            m_hat = m[rows] / (1 - self.beta1**nit)
            v_hat = v[rows] / (1 - self.beta2**nit)
            X[rows] = X[rows] - self.learning_rate * m_hat / (
                np.sqrt(v_hat) + self.eps
            )
            for k, value in zip(rows, batch_values(fn, batch_fn, X[rows])):
                tracers[k].record(X[k], float(value))
        return [
            OptimizeResult(
                x=tracer.best_x,
                fun=tracer.best,
                nfev=tracer.nfev,
                nit=int(nits[k]),
                converged=bool(converged[k]),
                message=(
                    "gradient norm below gtol"
                    if converged[k]
                    else "maxiter reached"
                ),
                history=tracer.trace,
            )
            for k, tracer in enumerate(tracers)
        ]
