"""Common optimizer interface.

Every optimizer minimizes a scalar function of a flat parameter vector and
returns an :class:`OptimizeResult` carrying the trace the experiment layer
plots. The Evaluator maximizes the cut energy by minimizing its negation,
so "loss" below is ``-<C>`` in the QAOA context.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = ["OptimizeResult", "Optimizer", "ObjectiveTracer"]

Objective = Callable[[np.ndarray], float]
GradientFn = Callable[[np.ndarray], np.ndarray]


@dataclass
class OptimizeResult:
    """Outcome of a minimization run."""

    x: np.ndarray
    fun: float
    nfev: int
    nit: int
    converged: bool
    message: str = ""
    #: best-so-far objective after each iteration (monotone non-increasing)
    history: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)


class ObjectiveTracer:
    """Wraps an objective to count calls and record the best-so-far trace."""

    def __init__(self, fn: Objective) -> None:
        self._fn = fn
        self.nfev = 0
        self.best = np.inf
        self.best_x: Optional[np.ndarray] = None
        self.trace: List[float] = []

    def __call__(self, x) -> float:
        x = np.asarray(x, dtype=float)
        value = float(self._fn(x))
        self.nfev += 1
        if value < self.best:
            self.best = value
            self.best_x = x.copy()
        self.trace.append(self.best)
        return value


class Optimizer(abc.ABC):
    """Abstract minimizer. Subclasses set ``name`` and implement
    :meth:`minimize`."""

    name: str = "abstract"

    @abc.abstractmethod
    def minimize(self, fn: Objective, x0: Sequence[float]) -> OptimizeResult:
        """Minimize ``fn`` starting from ``x0``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
