"""Common optimizer interface.

Every optimizer minimizes a scalar function of a flat parameter vector and
returns an :class:`OptimizeResult` carrying the trace the experiment layer
plots. The Evaluator maximizes the cut energy by minimizing its negation,
so "loss" below is ``-<C>`` in the QAOA context.

Batch-native training
---------------------

The compiled engine evaluates whole parameter batches in one vectorized
pass (:meth:`repro.simulators.compiled.CompiledProgram.energies`), so an
optimizer that needs many points per step — SPSA's ± pairs, Nelder–Mead's
simplex moves, a population of restarts — should submit them as *one*
batch instead of a Python loop of scalar calls. Two seams make that work:

* :class:`BatchObjective` — the protocol an objective implements to opt in
  (``values(X)`` for a batch of rows, ``value_and_gradient`` for the
  gradient-based path). :meth:`repro.qaoa.energy.AnsatzEnergy.negative_objective`
  returns one.
* :meth:`Optimizer.minimize_batch` — minimize from a population of start
  points at once. Batch-native subclasses (``supports_batch = True``)
  run the whole population in lockstep, evaluating each step's proposals
  in a single ``values`` call; the base implementation falls back to one
  serial :meth:`Optimizer.minimize` per row, so scipy-backed optimizers
  (COBYLA) keep working unchanged.

Per-point accounting is identical on both paths: ``nfev`` counts evaluated
*points*, never batch calls, and each restart's ``history`` is its own
best-so-far trace.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "BatchObjective",
    "ObjectiveTracer",
    "OptimizeResult",
    "Optimizer",
    "batch_values",
    "resolve_batch_fn",
]

Objective = Callable[[np.ndarray], float]
GradientFn = Callable[[np.ndarray], np.ndarray]
BatchFn = Callable[[np.ndarray], np.ndarray]


@runtime_checkable
class BatchObjective(Protocol):
    """An objective that can score whole parameter batches at once.

    ``__call__`` keeps the scalar contract every optimizer understands;
    ``values`` evaluates the rows of a ``(B, dim)`` batch in one pass and
    returns ``(B,)`` objective values; ``value_and_gradient`` serves the
    gradient-based path (one batched parameter-shift pass on the compiled
    engine).
    """

    def __call__(self, x: np.ndarray) -> float: ...

    def values(self, X: np.ndarray) -> np.ndarray: ...

    def value_and_gradient(self, x: np.ndarray) -> tuple[float, np.ndarray]: ...


def resolve_batch_fn(fn: Objective, batch_fn: BatchFn | None) -> BatchFn | None:
    """The batch evaluator to use: an explicit ``batch_fn`` wins, else the
    objective's own :class:`BatchObjective` ``values`` method, else None."""
    if batch_fn is not None:
        return batch_fn
    values = getattr(fn, "values", None)
    return values if callable(values) else None


def batch_values(fn: Objective, batch_fn: BatchFn | None, X: np.ndarray) -> np.ndarray:
    """Objective values for the rows of ``X`` — one ``batch_fn`` call when
    available, a scalar loop otherwise (the serial fallback)."""
    X = np.atleast_2d(np.asarray(X, dtype=float))
    batch_fn = resolve_batch_fn(fn, batch_fn)
    if batch_fn is None:
        return np.array([float(fn(row)) for row in X])
    values = np.asarray(batch_fn(X), dtype=float).reshape(-1)
    if values.shape[0] != X.shape[0]:
        raise ValueError(
            f"batch objective returned {values.shape[0]} values for "
            f"{X.shape[0]} points"
        )
    return values


@dataclass
class OptimizeResult:
    """Outcome of a minimization run."""

    x: np.ndarray
    fun: float
    nfev: int
    nit: int
    converged: bool
    message: str = ""
    #: best-so-far objective after each iteration (monotone non-increasing)
    history: list[float] = field(default_factory=list)
    #: per-restart results when this result aggregates a population
    sub_results: list["OptimizeResult"] | None = None

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)


class ObjectiveTracer:
    """Wraps an objective to count calls and record the best-so-far trace.

    ``nfev`` counts evaluated *points* on every path: scalar ``__call__``s,
    :meth:`batch` submissions (one increment per row, not per batch call),
    and externally evaluated points fed through :meth:`record` — so serial
    and batched trainings of the same trajectory report identical counts.
    """

    def __init__(self, fn: Objective, batch_fn: BatchFn | None = None) -> None:
        self._fn = fn
        self._batch_fn = resolve_batch_fn(fn, batch_fn)
        self.nfev = 0
        self.best = np.inf
        self.best_x: np.ndarray | None = None
        self.trace: list[float] = []

    def __call__(self, x) -> float:
        x = np.asarray(x, dtype=float)
        value = float(self._fn(x))
        self.record(x, value)
        return value

    def record(self, x: np.ndarray, value: float) -> None:
        """Account one already-evaluated point (batched callers use this)."""
        self.nfev += 1
        if value < self.best:
            self.best = value
            self.best_x = np.asarray(x, dtype=float).copy()
        self.trace.append(self.best)

    def batch(self, X) -> np.ndarray:
        """Evaluate (and trace) every row of ``X`` in one batched call.

        The rows enter the trace in order, exactly as a loop of scalar
        calls would, so the best-so-far history and ``nfev`` match the
        serial path point for point.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        values = batch_values(self._fn, self._batch_fn, X)
        for row, value in zip(X, values):
            self.record(row, float(value))
        return values


class Optimizer(abc.ABC):
    """Abstract minimizer. Subclasses set ``name`` and implement
    :meth:`minimize`; batch-native subclasses additionally set
    ``supports_batch = True`` and override :meth:`minimize_batch`."""

    name: str = "abstract"
    #: True when minimize_batch runs a population in lockstep with batched
    #: objective calls (instead of the serial per-row fallback below)
    supports_batch: bool = False

    @abc.abstractmethod
    def minimize(self, fn: Objective, x0: Sequence[float]) -> OptimizeResult:
        """Minimize ``fn`` starting from ``x0``."""

    def minimize_batch(
        self,
        fn: Objective,
        X0: np.ndarray,
        batch_fn: BatchFn | None = None,
    ) -> list[OptimizeResult]:
        """Minimize from every row of ``X0``; one result per row.

        Base implementation: the serial fallback — one independent
        :meth:`minimize` per start point, ignoring ``batch_fn`` — so any
        optimizer (including scipy-backed ones) accepts a population.
        """
        del batch_fn  # the serial fallback evaluates point by point
        X0 = np.atleast_2d(np.asarray(X0, dtype=float))
        return [self.minimize(fn, x0) for x0 in X0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
