"""COBYLA — the optimizer the paper trains every candidate with.

§2.1: "run the variational algorithm for 200 steps with the COBYLA
optimizer." We adapt SciPy's implementation (linear-approximation
trust-region, derivative-free) to the package interface; SciPy is a
declared dependency, not a stub — re-implementing Powell's COBYLA would
add risk without adding fidelity.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from scipy import optimize as sp_optimize

from repro.optimizers.base import Objective, ObjectiveTracer, Optimizer, OptimizeResult

__all__ = ["Cobyla"]


class Cobyla(Optimizer):
    """SciPy COBYLA with the paper's 200-evaluation default budget."""

    name = "cobyla"

    def __init__(self, maxiter: int = 200, rhobeg: float = 0.5, tol: float = 1e-6) -> None:
        self.maxiter = int(maxiter)
        self.rhobeg = float(rhobeg)
        self.tol = float(tol)

    def minimize(self, fn: Objective, x0: Sequence[float]) -> OptimizeResult:
        tracer = ObjectiveTracer(fn)
        result = sp_optimize.minimize(
            tracer,
            np.asarray(x0, dtype=float),
            method="COBYLA",
            options={"maxiter": self.maxiter, "rhobeg": self.rhobeg, "tol": self.tol},
        )
        # Report the best point seen, not the last iterate: COBYLA's final
        # simplex point can be worse than an earlier trial.
        best_x = tracer.best_x if tracer.best_x is not None else np.asarray(x0, float)
        return OptimizeResult(
            x=best_x,
            fun=tracer.best,
            nfev=tracer.nfev,
            nit=int(result.get("nit", tracer.nfev)),
            converged=bool(result.success),
            message=str(result.message),
            history=tracer.trace,
        )
