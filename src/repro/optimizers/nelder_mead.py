"""Nelder–Mead simplex minimizer, implemented from scratch.

Standard adaptive-coefficient variant (Gao & Han 2012): reflection,
expansion, contraction, shrink, with coefficients scaled by dimension.
Derivative-free like COBYLA, so it slots into the same Evaluator role; the
optimizer ablation bench compares the two head-to-head on the QAOA
training objective.

Batch-native: :meth:`NelderMead.minimize_batch` runs a population of K
restarts in lockstep. Each iteration gathers every restart's pending
proposals into at most three batched objective calls — all reflections,
then all expansions/contractions, then all shrink vertices — instead of
one scalar call per point. The per-restart decision logic (and therefore
every trajectory, trace and ``nfev`` count) is identical to K serial
:meth:`NelderMead.minimize` runs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.optimizers.base import (
    BatchFn,
    Objective,
    ObjectiveTracer,
    Optimizer,
    OptimizeResult,
    batch_values,
)

__all__ = ["NelderMead"]


class _SimplexState:
    """One restart's simplex, values, tracer and termination bookkeeping."""

    def __init__(self, tracer: ObjectiveTracer, simplex: np.ndarray) -> None:
        self.tracer = tracer
        self.simplex = simplex
        self.values = np.empty(simplex.shape[0])
        self.active = True
        self.converged = False
        self.nit = 0


class NelderMead(Optimizer):
    """Adaptive Nelder–Mead with function-value + simplex-size stopping."""

    name = "nelder_mead"
    supports_batch = True

    def __init__(
        self,
        maxiter: int = 200,
        initial_step: float = 0.5,
        xatol: float = 1e-8,
        fatol: float = 1e-8,
    ) -> None:
        self.maxiter = int(maxiter)
        self.initial_step = float(initial_step)
        self.xatol = float(xatol)
        self.fatol = float(fatol)

    def _coefficients(self, dim: int) -> tuple[float, float, float, float]:
        # adaptive coefficients (Gao & Han)
        alpha = 1.0
        gamma = 1.0 + 2.0 / dim
        rho = 0.75 - 1.0 / (2.0 * dim)
        sigma = 1.0 - 1.0 / dim
        return alpha, gamma, rho, sigma

    def _initial_simplex(self, x0: np.ndarray) -> np.ndarray:
        dim = x0.size
        return np.vstack(
            [x0] + [x0 + self.initial_step * np.eye(dim)[i] for i in range(dim)]
        )

    def _is_converged(self, simplex: np.ndarray, values: np.ndarray) -> bool:
        return bool(
            np.max(np.abs(simplex[1:] - simplex[0])) <= self.xatol
            and np.max(np.abs(values[1:] - values[0])) <= self.fatol
        )

    def minimize(self, fn: Objective, x0: Sequence[float]) -> OptimizeResult:
        tracer = ObjectiveTracer(fn)
        x0 = np.asarray(x0, dtype=float)
        dim = x0.size
        alpha, gamma, rho, sigma = self._coefficients(dim)

        # initial simplex: x0 plus a step along each axis
        simplex = self._initial_simplex(x0)
        values = np.array([tracer(v) for v in simplex])

        nit = 0
        converged = False
        for nit in range(1, self.maxiter + 1):
            order = np.argsort(values)
            simplex, values = simplex[order], values[order]
            if self._is_converged(simplex, values):
                converged = True
                break
            centroid = simplex[:-1].mean(axis=0)
            reflected = centroid + alpha * (centroid - simplex[-1])
            f_reflected = tracer(reflected)
            if values[0] <= f_reflected < values[-2]:
                simplex[-1], values[-1] = reflected, f_reflected
            elif f_reflected < values[0]:
                expanded = centroid + gamma * (reflected - centroid)
                f_expanded = tracer(expanded)
                if f_expanded < f_reflected:
                    simplex[-1], values[-1] = expanded, f_expanded
                else:
                    simplex[-1], values[-1] = reflected, f_reflected
            else:
                if f_reflected < values[-1]:  # outside contraction
                    contracted = centroid + rho * (reflected - centroid)
                else:  # inside contraction
                    contracted = centroid - rho * (centroid - simplex[-1])
                f_contracted = tracer(contracted)
                if f_contracted < min(f_reflected, values[-1]):
                    simplex[-1], values[-1] = contracted, f_contracted
                else:  # shrink toward the best vertex
                    for i in range(1, dim + 1):
                        simplex[i] = simplex[0] + sigma * (simplex[i] - simplex[0])
                        values[i] = tracer(simplex[i])

        best = int(np.argmin(values))
        return OptimizeResult(
            x=simplex[best],
            fun=float(values[best]),
            nfev=tracer.nfev,
            nit=nit,
            converged=converged,
            message="simplex converged" if converged else "maxiter reached",
            history=tracer.trace,
        )

    def minimize_batch(
        self,
        fn: Objective,
        X0: np.ndarray,
        batch_fn: BatchFn | None = None,
    ) -> list[OptimizeResult]:
        """Lockstep simplex descent over the rows of ``X0``.

        Restarts converge independently (each keeps its own ``nit``); a
        converged restart simply stops contributing points to the shared
        batches while the others continue.
        """
        X0 = np.atleast_2d(np.asarray(X0, dtype=float))
        restarts, dim = X0.shape
        alpha, gamma, rho, sigma = self._coefficients(dim)

        def evaluate(points: list[np.ndarray]) -> np.ndarray:
            return batch_values(fn, batch_fn, np.vstack(points))

        states = [
            _SimplexState(ObjectiveTracer(fn, batch_fn), self._initial_simplex(x0))
            for x0 in X0
        ]
        initial_values = evaluate([state.simplex for state in states])
        cursor = 0
        for state in states:
            for i, vertex in enumerate(state.simplex):
                value = float(initial_values[cursor])
                state.values[i] = value
                state.tracer.record(vertex, value)
                cursor += 1

        for it in range(1, self.maxiter + 1):
            live = [state for state in states if state.active]
            if not live:
                break
            # Phase A: sort, test convergence, propose every reflection.
            proposing: list[_SimplexState] = []
            reflections: list[np.ndarray] = []
            centroids: dict[int, np.ndarray] = {}
            for state in live:
                state.nit = it
                order = np.argsort(state.values)
                state.simplex = state.simplex[order]
                state.values = state.values[order]
                if self._is_converged(state.simplex, state.values):
                    state.active = False
                    state.converged = True
                    continue
                centroid = state.simplex[:-1].mean(axis=0)
                centroids[id(state)] = centroid
                proposing.append(state)
                reflections.append(centroid + alpha * (centroid - state.simplex[-1]))
            if not proposing:
                continue
            f_reflections = evaluate(reflections)

            # Phase B: expansions and contractions, one shared batch.
            second_states: list[_SimplexState] = []
            second_points: list[np.ndarray] = []
            second_kind: list[str] = []
            shrinkers: list[_SimplexState] = []
            pending: dict[int, tuple[np.ndarray, float]] = {}
            for state, reflected, f_reflected in zip(
                proposing, reflections, f_reflections
            ):
                f_reflected = float(f_reflected)
                state.tracer.record(reflected, f_reflected)
                values = state.values
                centroid = centroids[id(state)]
                if values[0] <= f_reflected < values[-2]:
                    state.simplex[-1], state.values[-1] = reflected, f_reflected
                elif f_reflected < values[0]:
                    second_states.append(state)
                    second_points.append(
                        centroid + gamma * (reflected - centroid)
                    )
                    second_kind.append("expand")
                    pending[id(state)] = (reflected, f_reflected)
                else:
                    if f_reflected < values[-1]:  # outside contraction
                        point = centroid + rho * (reflected - centroid)
                    else:  # inside contraction
                        point = centroid - rho * (centroid - state.simplex[-1])
                    second_states.append(state)
                    second_points.append(point)
                    second_kind.append("contract")
                    pending[id(state)] = (reflected, f_reflected)
            if second_states:
                f_seconds = evaluate(second_points)
                for state, point, kind, f_second in zip(
                    second_states, second_points, second_kind, f_seconds
                ):
                    f_second = float(f_second)
                    state.tracer.record(point, f_second)
                    reflected, f_reflected = pending[id(state)]
                    if kind == "expand":
                        if f_second < f_reflected:
                            state.simplex[-1], state.values[-1] = point, f_second
                        else:
                            state.simplex[-1], state.values[-1] = (
                                reflected,
                                f_reflected,
                            )
                    else:
                        if f_second < min(f_reflected, state.values[-1]):
                            state.simplex[-1], state.values[-1] = point, f_second
                        else:
                            shrinkers.append(state)

            # Phase C: shrink every failed contraction toward its best vertex.
            if shrinkers:
                shrink_points: list[np.ndarray] = []
                for state in shrinkers:
                    state.simplex[1:] = state.simplex[0] + sigma * (
                        state.simplex[1:] - state.simplex[0]
                    )
                    shrink_points.append(state.simplex[1:])
                f_shrunk = evaluate(shrink_points)
                cursor = 0
                for state in shrinkers:
                    for i in range(1, dim + 1):
                        value = float(f_shrunk[cursor])
                        state.values[i] = value
                        state.tracer.record(state.simplex[i], value)
                        cursor += 1

        results = []
        for state in states:
            best = int(np.argmin(state.values))
            results.append(
                OptimizeResult(
                    x=state.simplex[best],
                    fun=float(state.values[best]),
                    nfev=state.tracer.nfev,
                    nit=state.nit,
                    converged=state.converged,
                    message=(
                        "simplex converged" if state.converged else "maxiter reached"
                    ),
                    history=state.tracer.trace,
                )
            )
        return results
