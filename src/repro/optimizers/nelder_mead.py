"""Nelder–Mead simplex minimizer, implemented from scratch.

Standard adaptive-coefficient variant (Gao & Han 2012): reflection,
expansion, contraction, shrink, with coefficients scaled by dimension.
Derivative-free like COBYLA, so it slots into the same Evaluator role; the
optimizer ablation bench compares the two head-to-head on the QAOA
training objective.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.optimizers.base import Objective, ObjectiveTracer, OptimizeResult, Optimizer

__all__ = ["NelderMead"]


class NelderMead(Optimizer):
    """Adaptive Nelder–Mead with function-value + simplex-size stopping."""

    name = "nelder_mead"

    def __init__(
        self,
        maxiter: int = 200,
        initial_step: float = 0.5,
        xatol: float = 1e-8,
        fatol: float = 1e-8,
    ) -> None:
        self.maxiter = int(maxiter)
        self.initial_step = float(initial_step)
        self.xatol = float(xatol)
        self.fatol = float(fatol)

    def minimize(self, fn: Objective, x0: Sequence[float]) -> OptimizeResult:
        tracer = ObjectiveTracer(fn)
        x0 = np.asarray(x0, dtype=float)
        dim = x0.size
        # adaptive coefficients (Gao & Han)
        alpha = 1.0
        gamma = 1.0 + 2.0 / dim
        rho = 0.75 - 1.0 / (2.0 * dim)
        sigma = 1.0 - 1.0 / dim

        # initial simplex: x0 plus a step along each axis
        simplex = np.vstack([x0] + [x0 + self.initial_step * np.eye(dim)[i] for i in range(dim)])
        values = np.array([tracer(v) for v in simplex])

        nit = 0
        converged = False
        for nit in range(1, self.maxiter + 1):
            order = np.argsort(values)
            simplex, values = simplex[order], values[order]
            if (
                np.max(np.abs(simplex[1:] - simplex[0])) <= self.xatol
                and np.max(np.abs(values[1:] - values[0])) <= self.fatol
            ):
                converged = True
                break
            centroid = simplex[:-1].mean(axis=0)
            reflected = centroid + alpha * (centroid - simplex[-1])
            f_reflected = tracer(reflected)
            if values[0] <= f_reflected < values[-2]:
                simplex[-1], values[-1] = reflected, f_reflected
            elif f_reflected < values[0]:
                expanded = centroid + gamma * (reflected - centroid)
                f_expanded = tracer(expanded)
                if f_expanded < f_reflected:
                    simplex[-1], values[-1] = expanded, f_expanded
                else:
                    simplex[-1], values[-1] = reflected, f_reflected
            else:
                if f_reflected < values[-1]:  # outside contraction
                    contracted = centroid + rho * (reflected - centroid)
                else:  # inside contraction
                    contracted = centroid - rho * (centroid - simplex[-1])
                f_contracted = tracer(contracted)
                if f_contracted < min(f_reflected, values[-1]):
                    simplex[-1], values[-1] = contracted, f_contracted
                else:  # shrink toward the best vertex
                    for i in range(1, dim + 1):
                        simplex[i] = simplex[0] + sigma * (simplex[i] - simplex[0])
                        values[i] = tracer(simplex[i])

        best = int(np.argmin(values))
        return OptimizeResult(
            x=simplex[best],
            fun=float(values[best]),
            nfev=tracer.nfev,
            nit=nit,
            converged=converged,
            message="simplex converged" if converged else "maxiter reached",
            history=tracer.trace,
        )
