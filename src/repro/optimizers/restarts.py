"""Multi-restart meta-optimization: K seeds trained as one batch.

Independent restarts are the standard defence against bad initial angles
in variational training (the Evaluator's ``restarts`` knob), but running
them one after another leaves the compiled engine's batched evaluation on
the floor: every restart is the *same* objective, so their per-step
proposals can ride one :meth:`~repro.simulators.compiled.CompiledProgram.energies`
call. :class:`MultiRestart` wraps any :class:`~repro.optimizers.base.Optimizer`
and trains a whole population of start points at once — batch-natively in
lockstep when the base optimizer supports it, serially otherwise — then
returns the best result with population-wide ``nfev`` accounting.

The two paths are pinned identical point for point (property tests in
``tests/optimizers/test_batched.py``), so ``batch_mode`` is purely a
performance knob: the Evaluator sets it from
:class:`~repro.core.evaluator.EvaluationConfig` (``batch_mode=``, CLI
``--batch-mode``), and the batched population is exactly the wide
``energies(X)`` call that a device array backend
(:mod:`repro.simulators.backends`) accelerates — K restarts' probes ride
one kernel launch instead of K.

.. seealso::

   :class:`~repro.optimizers.base.BatchObjective`
       the protocol (``values(X)``, ``value_and_gradient``) a batchable
       objective implements; :class:`~repro.qaoa.energy.NegatedEnergy`
       is the production instance.
   ``benchmarks/bench_batched_optimizers.py``
       the CI gate: >=3x batched-vs-serial multi-restart SPSA at K=8.
   ``docs/architecture.md``
       the evaluator layer this meta-optimizer lives in.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.optimizers.base import BatchFn, Objective, Optimizer, OptimizeResult, resolve_batch_fn

__all__ = ["BATCH_MODES", "MultiRestart"]

#: how a restart population is driven: "auto" batches whenever the base
#: optimizer is batch-native and a batch objective is available, "batched"
#: always routes through minimize_batch (its serial fallback included),
#: "serial" forces one minimize call per restart
BATCH_MODES = ("auto", "batched", "serial")


class MultiRestart(Optimizer):
    """Train every row of a start-point population, return the best.

    The population result keeps the winning restart's ``x``/``fun``/
    ``history`` but sums ``nfev`` over all restarts (the total points the
    objective paid for) and exposes the per-restart results via
    ``sub_results``.
    """

    name = "multi_restart"

    def __init__(self, base: Optimizer, batch_mode: str = "auto") -> None:
        if batch_mode not in BATCH_MODES:
            raise ValueError(
                f"unknown batch mode {batch_mode!r}; options: {BATCH_MODES}"
            )
        self.base = base
        self.batch_mode = batch_mode

    @property
    def supports_batch(self) -> bool:  # type: ignore[override]
        return self.base.supports_batch

    def _use_batch(self, fn: Objective, batch_fn: BatchFn | None) -> bool:
        if self.batch_mode == "serial":
            return False
        if self.batch_mode == "batched":
            return True
        return self.base.supports_batch and resolve_batch_fn(fn, batch_fn) is not None

    def minimize_population(
        self,
        fn: Objective,
        X0: np.ndarray,
        batch_fn: BatchFn | None = None,
    ) -> OptimizeResult:
        """Minimize from every row of ``X0``; aggregate to the best."""
        X0 = np.atleast_2d(np.asarray(X0, dtype=float))
        if X0.shape[0] == 0:
            raise ValueError("restart population is empty")
        if self._use_batch(fn, batch_fn):
            results = self.base.minimize_batch(fn, X0, batch_fn=batch_fn)
            mode = "batched"
        else:
            results = [self.base.minimize(fn, x0) for x0 in X0]
            mode = "serial"
        best = min(results, key=lambda r: r.fun)
        return OptimizeResult(
            x=best.x,
            fun=best.fun,
            nfev=sum(r.nfev for r in results),
            nit=max(r.nit for r in results),
            converged=best.converged,
            message=(
                f"best of {len(results)} {mode} restart(s): {best.message}"
            ),
            history=best.history,
            sub_results=results,
        )

    def minimize(self, fn: Objective, x0: Sequence[float]) -> OptimizeResult:
        """A single-seed population (satisfies the Optimizer interface)."""
        return self.minimize_population(fn, np.atleast_2d(np.asarray(x0, float)))

    def minimize_batch(
        self,
        fn: Objective,
        X0: np.ndarray,
        batch_fn: BatchFn | None = None,
    ) -> list[OptimizeResult]:
        """Delegate to the base optimizer (population-per-row semantics
        collapse to the base's own batch behaviour)."""
        if self._use_batch(fn, batch_fn):
            return self.base.minimize_batch(fn, X0, batch_fn=batch_fn)
        X0 = np.atleast_2d(np.asarray(X0, dtype=float))
        return [self.base.minimize(fn, x0) for x0 in X0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MultiRestart({self.base!r}, batch_mode={self.batch_mode!r})"
