"""Simultaneous Perturbation Stochastic Approximation (SPSA).

The workhorse optimizer for *sampled* variational objectives: two function
evaluations per step regardless of dimension, robust to shot noise. Uses
the standard Spall gain sequences ``a_k = a/(k + 1 + A)^alpha`` and
``c_k = c/(k + 1)^gamma`` with Rademacher perturbations.

Included because a production search package must train candidates on
hardware-realistic (noisy) evaluators, and the optimizer ablation bench
contrasts it with COBYLA on both exact and shot-noised energies.

Batch-native: :meth:`SPSA.minimize_batch` runs a population of K restarts
in lockstep and submits all 2K ± perturbations of an iteration as *one*
batched objective call — the compiled engine's
:meth:`~repro.simulators.compiled.CompiledProgram.energies` seam. With an
integer seed every restart draws the same perturbation sequence a serial
:meth:`SPSA.minimize` run would, so the batched trajectories are
point-for-point identical to K serial runs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.optimizers.base import (
    BatchFn,
    Objective,
    ObjectiveTracer,
    Optimizer,
    OptimizeResult,
    batch_values,
)
from repro.utils.rng import as_rng, spawn_rngs

__all__ = ["SPSA"]


def _rademacher(rng: np.random.Generator, dim: int) -> np.ndarray:
    """+-1 perturbation draw (integers is ~6x cheaper than rng.choice,
    which matters once the energy call is batched away)."""
    return 2.0 * rng.integers(0, 2, size=dim) - 1.0


class SPSA(Optimizer):
    """Spall's SPSA with optional blocking of non-improving steps."""

    name = "spsa"
    supports_batch = True

    def __init__(
        self,
        maxiter: int = 100,
        a: float = 0.2,
        c: float = 0.1,
        A: float = 10.0,
        alpha: float = 0.602,
        gamma: float = 0.101,
        seed=None,
    ) -> None:
        self.maxiter = int(maxiter)
        self.a = float(a)
        self.c = float(c)
        self.A = float(A)
        self.alpha = float(alpha)
        self.gamma = float(gamma)
        self.seed = seed

    def minimize(self, fn: Objective, x0: Sequence[float]) -> OptimizeResult:
        tracer = ObjectiveTracer(fn)
        rng = as_rng(self.seed)
        x = np.asarray(x0, dtype=float).copy()
        dim = x.size
        tracer(x)  # record the starting point
        for k in range(self.maxiter):
            ak = self.a / (k + 1 + self.A) ** self.alpha
            ck = self.c / (k + 1) ** self.gamma
            delta = _rademacher(rng, dim)
            f_plus = tracer(x + ck * delta)
            f_minus = tracer(x - ck * delta)
            gradient_estimate = (f_plus - f_minus) / (2.0 * ck) * (1.0 / delta)
            x = x - ak * gradient_estimate
        # final polish evaluation so the last iterate enters the trace
        tracer(x)
        return OptimizeResult(
            x=tracer.best_x,
            fun=tracer.best,
            nfev=tracer.nfev,
            nit=self.maxiter,
            converged=True,
            message="completed fixed iteration budget",
            history=tracer.trace,
        )

    def _restart_rngs(self, restarts: int) -> list:
        """One perturbation stream per restart. Integer (or None) seeds
        replicate the serial path — each restart re-seeds exactly like a
        fresh :meth:`minimize` call would; a pre-built Generator cannot be
        duplicated, so its restarts get independent spawned streams."""
        if isinstance(self.seed, np.random.Generator):
            return spawn_rngs(self.seed, restarts)
        return [as_rng(self.seed) for _ in range(restarts)]

    def minimize_batch(
        self,
        fn: Objective,
        X0: np.ndarray,
        batch_fn: BatchFn | None = None,
    ) -> list[OptimizeResult]:
        """Lockstep SPSA over the rows of ``X0``.

        Every iteration evaluates the whole ``(2K, dim)`` block of ±
        perturbations in one batched call; per-restart traces, minima and
        ``nfev`` match K independent :meth:`minimize` runs exactly (given
        an integer seed and a batch objective consistent with ``fn``).
        """
        X = np.atleast_2d(np.asarray(X0, dtype=float)).copy()
        restarts, dim = X.shape
        tracers = [ObjectiveTracer(fn, batch_fn) for _ in range(restarts)]
        rngs = self._restart_rngs(restarts)

        def evaluate(points: np.ndarray) -> np.ndarray:
            return batch_values(fn, batch_fn, points)

        for k, value in zip(range(restarts), evaluate(X)):
            tracers[k].record(X[k], float(value))
        for k_iter in range(self.maxiter):
            ak = self.a / (k_iter + 1 + self.A) ** self.alpha
            ck = self.c / (k_iter + 1) ** self.gamma
            deltas = np.stack([_rademacher(rng, dim) for rng in rngs])
            plus = X + ck * deltas
            minus = X - ck * deltas
            values = evaluate(np.vstack([plus, minus]))
            f_plus, f_minus = values[:restarts], values[restarts:]
            for k in range(restarts):
                tracers[k].record(plus[k], float(f_plus[k]))
                tracers[k].record(minus[k], float(f_minus[k]))
            gradient_estimates = (
                (f_plus - f_minus)[:, None] / (2.0 * ck) * (1.0 / deltas)
            )
            X = X - ak * gradient_estimates
        for k, value in zip(range(restarts), evaluate(X)):
            tracers[k].record(X[k], float(value))
        return [
            OptimizeResult(
                x=tracer.best_x,
                fun=tracer.best,
                nfev=tracer.nfev,
                nit=self.maxiter,
                converged=True,
                message="completed fixed iteration budget",
                history=tracer.trace,
            )
            for tracer in tracers
        ]
