"""Simultaneous Perturbation Stochastic Approximation (SPSA).

The workhorse optimizer for *sampled* variational objectives: two function
evaluations per step regardless of dimension, robust to shot noise. Uses
the standard Spall gain sequences ``a_k = a/(k + 1 + A)^alpha`` and
``c_k = c/(k + 1)^gamma`` with Rademacher perturbations.

Included because a production search package must train candidates on
hardware-realistic (noisy) evaluators, and the optimizer ablation bench
contrasts it with COBYLA on both exact and shot-noised energies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.optimizers.base import Objective, ObjectiveTracer, OptimizeResult, Optimizer
from repro.utils.rng import as_rng

__all__ = ["SPSA"]


class SPSA(Optimizer):
    """Spall's SPSA with optional blocking of non-improving steps."""

    name = "spsa"

    def __init__(
        self,
        maxiter: int = 100,
        a: float = 0.2,
        c: float = 0.1,
        A: float = 10.0,
        alpha: float = 0.602,
        gamma: float = 0.101,
        seed=None,
    ) -> None:
        self.maxiter = int(maxiter)
        self.a = float(a)
        self.c = float(c)
        self.A = float(A)
        self.alpha = float(alpha)
        self.gamma = float(gamma)
        self.seed = seed

    def minimize(self, fn: Objective, x0: Sequence[float]) -> OptimizeResult:
        tracer = ObjectiveTracer(fn)
        rng = as_rng(self.seed)
        x = np.asarray(x0, dtype=float).copy()
        dim = x.size
        tracer(x)  # record the starting point
        for k in range(self.maxiter):
            ak = self.a / (k + 1 + self.A) ** self.alpha
            ck = self.c / (k + 1) ** self.gamma
            delta = rng.choice([-1.0, 1.0], size=dim)
            f_plus = tracer(x + ck * delta)
            f_minus = tracer(x - ck * delta)
            gradient_estimate = (f_plus - f_minus) / (2.0 * ck) * (1.0 / delta)
            x = x - ak * gradient_estimate
        # final polish evaluation so the last iterate enters the trace
        tracer(x)
        return OptimizeResult(
            x=tracer.best_x,
            fun=tracer.best,
            nfev=tracer.nfev,
            nit=self.maxiter,
            converged=True,
            message="completed fixed iteration budget",
            history=tracer.trace,
        )
