"""Parallel execution layer: real executors, measured-replay schedulers,
and the two-level cluster model (Fig. 2 / Fig. 3 / Fig. 5 substrate).

:mod:`repro.parallel.faults` (the deterministic chaos harness) is *not*
re-exported here: it subclasses the service-layer job queue, and eagerly
importing it would cycle this package through :mod:`repro.service`.
Import it directly: ``from repro.parallel.faults import FaultPlan``.
"""

from repro.parallel.async_executor import AsyncExecutor
from repro.parallel.cluster import (
    ClusterModel,
    NodeSpec,
    TwoLevelResult,
    least_loaded_partition,
)
from repro.parallel.executor import (
    Executor,
    MultiprocessingExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_cores,
    make_executor,
)
from repro.parallel.jobs import JobFailedError, JobScheduler, JobStats
from repro.parallel.scheduler import (
    OverheadModel,
    ScheduleResult,
    simulate_core_sweep,
    simulate_makespan,
    speedup_curve,
)
from repro.parallel.timing import Timer, TimingLog, time_call

__all__ = [
    "AsyncExecutor",
    "Executor",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "ThreadExecutor",
    "available_cores",
    "make_executor",
    "JobScheduler",
    "JobStats",
    "JobFailedError",
    "OverheadModel",
    "ScheduleResult",
    "simulate_makespan",
    "simulate_core_sweep",
    "speedup_curve",
    "ClusterModel",
    "NodeSpec",
    "TwoLevelResult",
    "least_loaded_partition",
    "Timer",
    "TimingLog",
    "time_call",
]
