"""Async executor: an asyncio/thread hybrid behind the ``Executor`` seam.

The pool executors in :mod:`repro.parallel.executor` tie admission to OS
resources: every in-flight job owns a process or rides a bounded thread
queue, and the *caller* must meter submission (``JobScheduler`` caps
in-flight attempts at ``4 x num_workers`` for exactly this reason). A
long-running search service has the opposite shape — many concurrent
sweeps, each streaming jobs at its own pace, multiplexed over one shared
worker fleet — so admission must be cheap and unbounded while execution
stays bounded.

:class:`AsyncExecutor` splits the two: an asyncio event loop on a
dedicated thread is the dispatch plane (accepting a job = creating a
task, so thousands of logical jobs queue for free), and an
``asyncio.Semaphore`` admits at most ``num_workers`` of them into a
thread pool at a time. ``submit`` is thread-safe and non-blocking, which
is what lets N sweeps drive one fleet concurrently.

The contract ``JobScheduler`` relies on is preserved exactly:

* ``submit(fn, *args) -> concurrent.futures.Future`` with *honest*
  cancellation — ``cancel()`` succeeds while the job is still queued
  behind the semaphore (nothing ran, the fleet stays clean) and fails
  once the job occupies a worker thread, which tells the scheduler an
  abandoned attempt may still be running and the pool must not be
  joined gracefully (``tainted``).
* exceptions are routed into the future, never raised at the caller;
* ``starmap`` preserves input order;
* ``close()`` (and context-manager exit) drains or abandons cleanly.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.parallel.executor import Executor, available_cores

__all__ = ["AsyncExecutor"]


class AsyncExecutor(Executor):
    """Unbounded async admission over a bounded worker-thread fleet.

    Parameters
    ----------
    num_workers:
        OS threads that actually run jobs (and the semaphore width);
        defaults to the usable core count. Like :class:`ThreadExecutor`,
        best suited to NumPy-bound work that releases the GIL — which is
        exactly what candidate training is under the compiled engine.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`. When given,
        the executor tracks admission depth (``repro_executor_admitted``,
        jobs accepted but not yet settled), occupancy
        (``repro_executor_running``), and how long admitted jobs queued
        behind the semaphore (``repro_executor_semaphore_wait_seconds``).
    """

    name = "async"

    def __init__(
        self,
        num_workers: int | None = None,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.num_workers = num_workers or available_cores()
        self.metrics = metrics
        self._m: dict[str, Any] | None = None
        if metrics is not None:
            self._m = {
                "admitted": metrics.gauge(
                    "repro_executor_admitted",
                    "Jobs accepted by the dispatch plane and not yet settled",
                ),
                "running": metrics.gauge(
                    "repro_executor_running",
                    "Jobs currently occupying a worker thread",
                ),
                "wait": metrics.histogram(
                    "repro_executor_semaphore_wait_seconds",
                    "Time an admitted job queued behind the worker semaphore",
                ),
            }
        self._pool = ThreadPoolExecutor(
            max_workers=self.num_workers, thread_name_prefix="async-exec"
        )
        self._loop = asyncio.new_event_loop()
        self._semaphore: asyncio.Semaphore | None = None  # created on the loop
        self._thread = threading.Thread(
            target=self._run_loop, name="async-exec-loop", daemon=True
        )
        self._closed = False
        self._thread.start()
        # The semaphore must be created on the loop thread (it binds to the
        # running loop); block until the loop is up so submit() never races.
        ready = threading.Event()

        def _init() -> None:
            self._semaphore = asyncio.Semaphore(self.num_workers)
            ready.set()

        self._loop.call_soon_threadsafe(_init)
        ready.wait()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    # -- the Executor contract ---------------------------------------------

    def submit(self, fn: Callable, *args) -> Future:
        """Admit one job; returns immediately with a standard future.

        The future's lifecycle mirrors where the job really is: PENDING
        while queued behind the semaphore (cancellable — the fleet never
        saw it), RUNNING once a worker thread picked it up (``cancel()``
        returns False, so the job scheduler knows an abandoned attempt
        still occupies a worker).
        """
        if self._closed:
            raise RuntimeError("AsyncExecutor is closed")
        future: Future = Future()
        if self._m is not None:
            self._m["admitted"].inc()
        asyncio.run_coroutine_threadsafe(self._dispatch(future, fn, args), self._loop)
        return future

    async def _dispatch(self, future: Future, fn: Callable, args: tuple) -> None:
        assert self._semaphore is not None
        t0 = time.perf_counter() if self._m is not None else 0.0
        try:
            async with self._semaphore:
                if self._m is not None:
                    elapsed = time.perf_counter() - t0
                    self._m["wait"].observe(elapsed)
                    self.metrics.trace_event("executor_semaphore_wait", elapsed)
                # Claim the future for execution; a False return means the
                # caller cancelled it while it was queued — nothing to run.
                if not future.set_running_or_notify_cancel():
                    return
                if self._m is not None:
                    self._m["running"].inc()
                try:
                    result = await self._loop.run_in_executor(
                        self._pool, fn, *args
                    )
                except BaseException as exc:  # noqa: BLE001 - routed into the future
                    self._settle(future.set_exception, exc)
                else:
                    self._settle(future.set_result, result)
                finally:
                    if self._m is not None:
                        self._m["running"].dec()
        finally:
            if self._m is not None:
                self._m["admitted"].dec()

    @staticmethod
    def _settle(setter: Callable, value: Any) -> None:
        # An abandoned (timed-out) attempt may have been failed externally
        # before its worker finished; a late settle must not crash the loop.
        try:
            setter(value)
        except InvalidStateError:
            pass

    def starmap(self, fn: Callable, jobs: Sequence[tuple]) -> list[Any]:
        futures = [self.submit(fn, *job) for job in jobs]
        return [f.result() for f in futures]

    def close(self) -> None:
        """Stop the dispatch plane and the worker fleet.

        A clean close waits for running jobs; a tainted one (the job
        scheduler abandoned an attempt that may still hold a thread)
        abandons them, matching ``ThreadExecutor`` semantics.
        """
        if self._closed:
            return
        self._closed = True
        abandon = self.tainted

        async def _drain() -> None:
            tasks = [
                task
                for task in asyncio.all_tasks(self._loop)
                if task is not asyncio.current_task()
            ]
            if abandon:
                for task in tasks:
                    task.cancel()
            # Let every dispatch settle its future and return (a cancelled
            # one settles with CancelledError) before the loop stops, so no
            # task is destroyed while still pending.
            await asyncio.gather(*tasks, return_exceptions=True)
            self._loop.stop()

        asyncio.run_coroutine_threadsafe(_drain(), self._loop)
        self._thread.join(timeout=5.0 if abandon else None)
        self._pool.shutdown(wait=not abandon)
        self._loop.close()
