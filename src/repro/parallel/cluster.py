"""Two-level cluster scheduling model (the Fig. 2 architecture).

The paper's deployment on Polaris distributes *graphs* (outer level) across
nodes and *gate combinations* (inner level) across the CPUs of each node,
with GPUs reserved for circuit simulation offload. :class:`ClusterModel`
replays measured task durations through that hierarchy so the scaling
story can be told — and stress-tested (load imbalance across nodes, GPU
speedup factors) — without owning a supercomputer.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.parallel.scheduler import OverheadModel, simulate_makespan
from repro.utils.validation import check_positive

__all__ = ["NodeSpec", "ClusterModel", "TwoLevelResult", "least_loaded_partition"]


def least_loaded_partition(
    costs: Sequence[float], num_bins: int
) -> list[list[int]]:
    """Greedy LPT placement: heaviest item first onto the least-loaded bin.

    Returns ``num_bins`` lists of item indices (some possibly empty). This
    is the placement rule both :meth:`ClusterModel.schedule_two_level`
    (graphs onto modelled nodes) and the sharded search runtime (candidate
    bags onto real shards) use, so the model and the real scheduler can
    never disagree about balancing behaviour. Deterministic: ties in cost
    and load resolve by index order.
    """
    check_positive(num_bins, "num_bins")
    bins: list[list[int]] = [[] for _ in range(num_bins)]
    load = [0.0] * num_bins
    order = sorted(range(len(costs)), key=lambda i: (-float(costs[i]), i))
    for item in order:
        target = min(range(num_bins), key=lambda b: (load[b], b))
        bins[target].append(item)
        load[target] += float(costs[item])
    return bins


@dataclass(frozen=True)
class NodeSpec:
    """One node's resources."""

    cores: int = 32
    gpus: int = 4
    #: multiplicative speedup a GPU-offloaded simulation enjoys over a core
    gpu_speedup: float = 8.0

    def __post_init__(self) -> None:
        check_positive(self.cores, "cores")
        check_positive(self.gpus, "gpus", strict=False)


@dataclass
class TwoLevelResult:
    """Outcome of a two-level schedule."""

    makespan: float
    node_makespans: list[float]
    node_assignments: list[list[int]]  # node -> list of outer-task indices

    @property
    def imbalance(self) -> float:
        """max/mean node makespan — 1.0 is perfectly balanced."""
        mean = float(np.mean(self.node_makespans))
        return float(max(self.node_makespans) / mean) if mean > 0 else 1.0


@dataclass(frozen=True)
class ClusterModel:
    """A homogeneous cluster of :class:`NodeSpec` nodes.

    ``polaris()`` pins the configuration the paper names: ALCF Polaris
    nodes carry one 32-core AMD EPYC Milan and four A100 GPUs.
    """

    num_nodes: int
    node: NodeSpec = field(default_factory=NodeSpec)
    overhead: OverheadModel = field(default_factory=OverheadModel)

    @classmethod
    def polaris(cls, num_nodes: int = 4) -> ClusterModel:
        return cls(num_nodes=num_nodes, node=NodeSpec(cores=32, gpus=4, gpu_speedup=8.0))

    def schedule_two_level(
        self,
        outer_tasks: Sequence[Sequence[float]],
        *,
        use_gpus: bool = False,
    ) -> TwoLevelResult:
        """Outer tasks (graphs) go to nodes by greedy least-loaded placement
        (heaviest total inner work first, each onto the currently lightest
        node — :func:`least_loaded_partition`); each outer task's inner
        durations (gate combinations) are list-scheduled on the node's
        cores. With ``use_gpus`` the inner durations shrink by the GPU
        speedup on as many concurrent tasks as there are GPUs (a coarse
        model of simulation offload)."""
        check_positive(self.num_nodes, "num_nodes")
        # Outer level: greedy least-loaded assignment by total inner work.
        outer_costs = [float(np.sum(task)) for task in outer_tasks]
        node_assignments = least_loaded_partition(outer_costs, self.num_nodes)

        node_makespans: list[float] = []
        for node_idx in range(self.num_nodes):
            durations: list[float] = []
            for task_idx in node_assignments[node_idx]:
                durations.extend(float(d) for d in outer_tasks[task_idx])
            if use_gpus and self.node.gpus > 0:
                durations = self._offload(durations)
            schedule = simulate_makespan(
                durations, self.node.cores, overhead=self.overhead
            )
            node_makespans.append(schedule.makespan)
        return TwoLevelResult(
            makespan=max(node_makespans) if node_makespans else 0.0,
            node_makespans=node_makespans,
            node_assignments=node_assignments,
        )

    def _offload(self, durations: list[float]) -> list[float]:
        """Shrink the longest tasks by the GPU speedup, one per GPU 'slot'
        per scheduling wave (longest tasks benefit most from offload)."""
        if not durations:
            return durations
        out = list(durations)
        order = sorted(range(len(out)), key=lambda i: -out[i])
        waves = max(1, len(out) // max(self.node.cores, 1))
        budget = self.node.gpus * waves
        for i in order[:budget]:
            out[i] = out[i] / self.node.gpu_speedup
        return out
