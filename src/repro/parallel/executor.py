"""Task executors: the first level of the two-level parallelization scheme.

The paper parallelizes the *architecture search* across candidate gate
combinations using "Python's multiprocessing library's ``starmap_async``
method" (§3.1, Fig. 3); :class:`MultiprocessingExecutor` reproduces exactly
that. :class:`SerialExecutor` is the baseline the speedup figures compare
against, and :class:`ThreadExecutor` exists for tests and for workloads
dominated by NumPy calls that release the GIL.

All executors expose the same ``starmap`` contract (ordered results) plus a
``submit`` contract (one job, one :class:`concurrent.futures.Future`) used
by the fault-tolerant job scheduler in :mod:`repro.parallel.jobs`, and are
context managers; worker functions must be module-level for pickling.
"""

from __future__ import annotations

import abc
import multiprocessing as mp
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from typing import Any

__all__ = [
    "Executor",
    "SerialExecutor",
    "MultiprocessingExecutor",
    "ThreadExecutor",
    "available_cores",
    "make_executor",
]


def available_cores() -> int:
    """CPUs usable by this process (respects affinity masks on HPC nodes)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class Executor(abc.ABC):
    """Common interface: ordered ``starmap`` over argument tuples."""

    name: str = "abstract"
    num_workers: int = 1
    #: set by the job scheduler when an in-flight task was abandoned (timed
    #: out or its worker died); a tainted pool must not be joined gracefully
    tainted: bool = False

    @abc.abstractmethod
    def starmap(self, fn: Callable, jobs: Sequence[tuple]) -> list[Any]:
        """Apply ``fn(*job)`` to every job, preserving input order."""

    def submit(self, fn: Callable, *args) -> Future:
        """Run one job, returning a future.

        The default executes inline (correct for serial execution and any
        executor without native async dispatch); pool executors override
        this with real asynchronous submission.
        """
        future: Future = Future()
        try:
            future.set_result(fn(*args))
        except BaseException as exc:  # noqa: BLE001 - routed into the future
            future.set_exception(exc)
        return future

    def map(self, fn: Callable, items: Iterable) -> list[Any]:
        return self.starmap(_apply_single, [(fn, item) for item in items])

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __enter__(self) -> Executor:
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _apply_single(fn: Callable, item) -> Any:
    return fn(item)


class SerialExecutor(Executor):
    """Sequential execution — the paper's serial search baseline."""

    name = "serial"
    num_workers = 1

    def starmap(self, fn: Callable, jobs: Sequence[tuple]) -> list[Any]:
        return [fn(*job) for job in jobs]


class MultiprocessingExecutor(Executor):
    """Process pool driven through ``starmap_async`` (the paper's mechanism).

    A persistent pool amortizes fork cost across search depths. ``chunksize``
    trades dispatch overhead against load balance — the knob
    ``bench_ablation_chunksize`` sweeps. ``initializer``/``initargs`` run
    once per worker at fork, the hook for shipping per-search state (e.g.
    precomputed classical optima) or synchronization primitives to workers.
    """

    name = "multiprocessing"

    def __init__(
        self,
        num_workers: int | None = None,
        *,
        chunksize: int = 1,
        start_method: str | None = None,
        initializer: Callable | None = None,
        initargs: tuple = (),
    ) -> None:
        self.num_workers = num_workers or available_cores()
        self.chunksize = max(1, int(chunksize))
        context = mp.get_context(start_method) if start_method else mp.get_context()
        self._pool = context.Pool(
            processes=self.num_workers, initializer=initializer, initargs=initargs
        )

    def starmap(self, fn: Callable, jobs: Sequence[tuple]) -> list[Any]:
        async_result = self._pool.starmap_async(fn, jobs, chunksize=self.chunksize)
        return async_result.get()

    def submit(self, fn: Callable, *args) -> Future:
        """One job through ``apply_async``, surfaced as a standard future.

        The future is marked running immediately: ``multiprocessing.Pool``
        has no way to withdraw a task once ``apply_async`` accepted it
        (even while still queued), so ``cancel()`` must report failure —
        which tells the job scheduler an abandoned attempt may still
        occupy a worker and the pool must be terminated, not joined.
        """
        future: Future = Future()
        future.set_running_or_notify_cancel()

        def _settle(setter: Callable) -> Callable:
            # The job scheduler may cancel an abandoned (timed-out) future;
            # a late pool callback must not then crash the pool's
            # result-handler thread with InvalidStateError.
            def _callback(value) -> None:
                try:
                    setter(value)
                except InvalidStateError:
                    pass

            return _callback

        self._pool.apply_async(
            fn,
            args,
            callback=_settle(future.set_result),
            error_callback=_settle(future.set_exception),
        )
        return future

    def close(self) -> None:
        # A pool that lost a task (worker killed mid-job, or a task
        # abandoned at its deadline) can never be join()ed gracefully —
        # the result handler waits forever for the missing result. All
        # results the caller wanted were collected synchronously before
        # close(), so terminating is safe and prompt.
        if self.tainted:
            self._pool.terminate()
        else:
            self._pool.close()
        self._pool.join()


class ThreadExecutor(Executor):
    """Thread pool — useful when the work is NumPy-bound (GIL released)."""

    name = "threads"

    def __init__(self, num_workers: int | None = None) -> None:
        self.num_workers = num_workers or available_cores()
        self._pool = ThreadPoolExecutor(max_workers=self.num_workers)

    def starmap(self, fn: Callable, jobs: Sequence[tuple]) -> list[Any]:
        futures = [self._pool.submit(fn, *job) for job in jobs]
        return [f.result() for f in futures]

    def submit(self, fn: Callable, *args) -> Future:
        return self._pool.submit(fn, *args)

    def close(self) -> None:
        # Same contract as the process pool: an abandoned job may still be
        # running on a thread that will never finish — don't wait on it.
        self._pool.shutdown(wait=not self.tainted)


def make_executor(name: str, num_workers: int | None = None, **kwargs) -> Executor:
    """Factory for experiment configs: ``serial`` / ``processes`` /
    ``threads`` / ``async`` (the service fleet's asyncio/thread hybrid)."""
    if name == "serial":
        return SerialExecutor()
    if name in ("processes", "multiprocessing"):
        return MultiprocessingExecutor(num_workers, **kwargs)
    if name == "threads":
        return ThreadExecutor(num_workers)
    if name == "async":
        from repro.parallel.async_executor import AsyncExecutor

        return AsyncExecutor(num_workers)
    raise ValueError(
        f"unknown executor {name!r}; options: serial, processes, threads, async"
    )
