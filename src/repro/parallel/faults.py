"""Deterministic, seed-driven fault injection for the service plane.

Hardening claims are only worth what their tests can prove, and real
faults (wedged workers, killed processes, sqlite lock storms) are neither
repeatable nor cheap to stage. This module makes them both: a
:class:`FaultPlan` derives, from one seed, an independent deterministic
decision stream per fault kind, and two injectors consume it at the two
seams the service runs through —

* :class:`FaultInjectingExecutor` wraps any thread-backed
  :class:`~repro.parallel.executor.Executor` and makes scheduled worker
  attempts **raise** (:class:`InjectedFault`) or **hang** (sleep, then
  raise — the attempt burns wall-clock and produces nothing, like a
  worker that wedged and was abandoned). Both are *attempt* faults: the
  retrying :class:`~repro.parallel.jobs.JobScheduler` above is what must
  absorb them.
* :class:`FaultInjectingJobQueue` overrides the
  :class:`~repro.service.jobs.JobQueue` sqlite seam and makes scheduled
  statements raise ``sqlite3.OperationalError("database is locked")`` —
  the contention error a busy shared WAL store really produces — which
  the multiplexer's bounded queue-op retry must absorb.

Determinism: each stream is a seeded ``random.Random`` consumed one draw
per call under a lock, so a given (seed, rate) pair always faults the
same *call indices* of each kind. Which logical operation lands on a
faulting index still depends on thread interleaving — the invariants the
chaos suite asserts (every job terminal, no candidate trained twice,
results identical to a fault-free run) are exactly the ones that must
hold for **every** interleaving.

The executor wrapper also counts ``completed`` — real, non-faulted
executions of the wrapped function — which is the ground truth behind
"no candidate was trained twice": under a correct cache/claim plane,
``completed`` equals the number of unique candidates no matter how many
faults were absorbed along the way.
"""

from __future__ import annotations

import random
import sqlite3
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import Future
from pathlib import Path
from typing import Any

from repro.parallel.executor import Executor
from repro.service.jobs import JobQueue

__all__ = [
    "FaultInjectingExecutor",
    "FaultInjectingJobQueue",
    "FaultPlan",
    "InjectedFault",
]


class InjectedFault(RuntimeError):
    """A deliberately injected failure (never raised by real code paths)."""


class _Stream:
    """One fault kind's deterministic decision stream."""

    def __init__(self, seed: int, rate: float, max_faults: int | None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate}")
        self._rng = random.Random(seed)
        self._rate = rate
        self._max = max_faults
        self.calls = 0
        self.fired = 0

    def next(self) -> bool:
        # caller holds the plan lock
        self.calls += 1
        if self._rate == 0.0 or (self._max is not None and self.fired >= self._max):
            return False
        if self._rng.random() < self._rate:
            self.fired += 1
            return True
        return False


class FaultPlan:
    """Seeded schedule of faults, one independent stream per kind.

    Parameters
    ----------
    seed:
        Master seed; each kind derives its own ``random.Random`` from it,
        so raising one rate never shifts another kind's schedule.
    worker_raises / worker_hangs / queue_locks:
        Per-call fault probabilities for the three kinds.
    hang_seconds:
        How long a hanging attempt occupies its worker thread before it
        gives up (it then raises, producing nothing).
    max_faults_per_kind:
        Optional cap per stream — lets a chaos run guarantee forward
        progress under aggressive rates.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        worker_raises: float = 0.0,
        worker_hangs: float = 0.0,
        queue_locks: float = 0.0,
        hang_seconds: float = 0.2,
        max_faults_per_kind: int | None = None,
    ) -> None:
        if hang_seconds < 0:
            raise ValueError(f"hang_seconds must be >= 0, got {hang_seconds}")
        self.seed = int(seed)
        self.hang_seconds = float(hang_seconds)
        self._lock = threading.Lock()
        self._streams = {
            "raise": _Stream(self.seed * 7919 + 1, worker_raises, max_faults_per_kind),
            "hang": _Stream(self.seed * 7919 + 2, worker_hangs, max_faults_per_kind),
            "lock": _Stream(self.seed * 7919 + 3, queue_locks, max_faults_per_kind),
        }

    def should_raise(self) -> bool:
        with self._lock:
            return self._streams["raise"].next()

    def should_hang(self) -> bool:
        with self._lock:
            return self._streams["hang"].next()

    def should_lock(self) -> bool:
        with self._lock:
            return self._streams["lock"].next()

    @property
    def injected(self) -> dict[str, int]:
        """Faults fired so far, per kind — the chaos run's evidence that
        it actually exercised something."""
        with self._lock:
            return {kind: stream.fired for kind, stream in self._streams.items()}

    @property
    def calls(self) -> dict[str, int]:
        with self._lock:
            return {kind: stream.calls for kind, stream in self._streams.items()}


class FaultInjectingExecutor(Executor):
    """Wraps an executor so scheduled worker attempts raise or hang.

    Thread-backed inner executors only (the wrapper ships a bound method
    as the job callable, which a process pool could not pickle) — which
    matches the service fleet, the injection target. The wrapper borrows
    the inner executor: closing it propagates ``tainted`` and closes the
    inner pool.
    """

    name = "fault-injecting"

    def __init__(self, inner: Executor, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.num_workers = inner.num_workers
        self._lock = threading.Lock()
        #: real (non-faulted) completed executions of the wrapped function
        self.completed = 0

    def _wrapped(self, fn: Callable, *args) -> Any:
        if self.plan.should_raise():
            raise InjectedFault("injected worker raise")
        if self.plan.should_hang():
            time.sleep(self.plan.hang_seconds)
            raise InjectedFault(
                f"injected worker hang ({self.plan.hang_seconds}s, then gave up)"
            )
        result = fn(*args)
        with self._lock:
            self.completed += 1
        return result

    def submit(self, fn: Callable, *args) -> Future:
        return self.inner.submit(self._wrapped, fn, *args)

    def starmap(self, fn: Callable, jobs: Sequence[tuple]) -> list[Any]:
        return self.inner.starmap(self._wrapped, [(fn, *job) for job in jobs])

    def close(self) -> None:
        self.inner.tainted = self.inner.tainted or self.tainted
        self.inner.close()


class FaultInjectingJobQueue(JobQueue):
    """A :class:`JobQueue` whose sqlite statements fail on schedule.

    Scheduled calls raise ``sqlite3.OperationalError: database is
    locked`` *before* touching the database (the statement genuinely does
    not run — exactly the all-or-nothing failure a busy_timeout expiry
    produces), so a retry by the caller observes consistent state.
    Statements issued during ``__init__`` (schema creation, migration,
    crash recovery) are never faulted.
    """

    def __init__(self, service_dir: str | Path, plan: FaultPlan, **kwargs) -> None:
        super().__init__(service_dir, **kwargs)
        self._plan = plan  # set last: init-time statements run clean

    def _execute(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        plan: FaultPlan | None = getattr(self, "_plan", None)
        if plan is not None and plan.should_lock():
            raise sqlite3.OperationalError("database is locked")
        return super()._execute(sql, params)
