"""Fault-tolerant job scheduling: submit / as-completed with retry + timeout.

``Executor.starmap`` is a barrier — one lost worker or one pathological
candidate stalls the whole depth. :class:`JobScheduler` replaces it for the
search runtime: every job becomes a future (``Executor.submit``), results
stream back in completion order, and each job carries its own retry budget
and wall-clock deadline. A job whose worker raises is resubmitted; a job
whose future never completes (worker killed — ``multiprocessing.Pool``
repopulates the process but silently drops the task) is abandoned at its
deadline and resubmitted the same way. Only when a job exhausts
``max_retries`` does the scheduler raise :class:`JobFailedError`, so
transient faults cost one job's latency instead of the search.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass
from typing import Any

from repro.parallel.executor import Executor, SerialExecutor

__all__ = ["JobFailedError", "JobStats", "JobScheduler"]


class JobFailedError(RuntimeError):
    """A job failed (or timed out) on every allowed attempt."""

    def __init__(self, job_index: int, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"job {job_index} failed after {attempts} attempt(s): {cause!r}"
        )
        self.job_index = job_index
        self.attempts = attempts
        self.cause = cause


@dataclass
class JobStats:
    """What the scheduler did on one ``run``/``as_completed`` pass."""

    submitted: int = 0
    completed: int = 0
    retried: int = 0
    timed_out: int = 0
    failed: int = 0


@dataclass
class _Pending:
    """Book-keeping for one in-flight attempt."""

    index: int
    attempt: int
    deadline: float | None


class JobScheduler:
    """Streams ``fn(*job)`` results as they complete, tolerating faults.

    Parameters
    ----------
    executor:
        Any :class:`~repro.parallel.executor.Executor`; its ``submit``
        method provides the futures. Defaults to serial execution.
    max_retries:
        Extra attempts per job after the first (0 = fail fast).
    timeout:
        Per-attempt wall-clock deadline in seconds; ``None`` disables.
        On expiry the attempt is abandoned (its late result, if any, is
        discarded) and the job is resubmitted.
    """

    def __init__(
        self,
        executor: Executor | None = None,
        *,
        max_retries: int = 2,
        timeout: float | None = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.executor = executor or SerialExecutor()
        self.max_retries = int(max_retries)
        self.timeout = timeout
        self.stats = JobStats()

    # -- public API --------------------------------------------------------

    def as_completed(
        self, fn: Callable, jobs: Sequence[tuple]
    ) -> Iterator[tuple[int, Any]]:
        """Yield ``(job_index, result)`` pairs in completion order."""
        jobs = list(jobs)
        pending: dict[Future, _Pending] = {}
        for index, job in enumerate(jobs):
            self._submit(pending, fn, jobs, index, attempt=1)

        while pending:
            wait_timeout = self._next_wait(pending)
            done, _ = wait(
                set(pending), timeout=wait_timeout, return_when=FIRST_COMPLETED
            )
            for future in done:
                entry = pending.pop(future)
                error = future.exception()
                if error is None:
                    self.stats.completed += 1
                    yield entry.index, future.result()
                else:
                    self._retry_or_fail(pending, fn, jobs, entry, error)
            self._expire(pending, fn, jobs)

    def run(self, fn: Callable, jobs: Sequence[tuple]) -> list[Any]:
        """Ordered results — a fault-tolerant drop-in for ``starmap``."""
        results: list[Any] = [None] * len(jobs)
        for index, result in self.as_completed(fn, jobs):
            results[index] = result
        return results

    # -- internals ---------------------------------------------------------

    def _submit(
        self,
        pending: dict[Future, _Pending],
        fn: Callable,
        jobs: Sequence[tuple],
        index: int,
        attempt: int,
    ) -> None:
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        future = self.executor.submit(fn, *jobs[index])
        pending[future] = _Pending(index, attempt, deadline)
        self.stats.submitted += 1

    def _retry_or_fail(
        self,
        pending: dict[Future, _Pending],
        fn: Callable,
        jobs: Sequence[tuple],
        entry: _Pending,
        cause: BaseException,
    ) -> None:
        if entry.attempt <= self.max_retries:
            self.stats.retried += 1
            self._submit(pending, fn, jobs, entry.index, attempt=entry.attempt + 1)
        else:
            self.stats.failed += 1
            raise JobFailedError(entry.index, entry.attempt, cause) from cause

    def _expire(
        self, pending: dict[Future, _Pending], fn: Callable, jobs: Sequence[tuple]
    ) -> None:
        now = time.monotonic()
        expired = [
            future
            for future, entry in pending.items()
            if entry.deadline is not None and now >= entry.deadline and not future.done()
        ]
        for future in expired:
            entry = pending.pop(future)
            future.cancel()  # best effort; a running pool task cannot be cancelled
            # The abandoned attempt may still occupy (or have killed) a
            # worker — the pool can no longer be joined gracefully.
            self.executor.tainted = True
            self.stats.timed_out += 1
            self._retry_or_fail(
                pending,
                fn,
                jobs,
                entry,
                TimeoutError(
                    f"job {entry.index} attempt {entry.attempt} exceeded "
                    f"{self.timeout}s"
                ),
            )

    def _next_wait(self, pending: dict[Future, _Pending]) -> float | None:
        """Seconds until the earliest deadline (None = wait indefinitely)."""
        deadlines = [e.deadline for e in pending.values() if e.deadline is not None]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic())
