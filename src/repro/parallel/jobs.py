"""Fault-tolerant job scheduling: submit / as-completed with retry + timeout.

``Executor.starmap`` is a barrier — one lost worker or one pathological
candidate stalls the whole depth. :class:`JobScheduler` replaces it for the
search runtime: every job becomes a future (``Executor.submit``), results
stream back in completion order, and each job carries its own retry budget
and wall-clock deadline. A job whose worker raises is resubmitted; a job
whose future never completes (worker killed — ``multiprocessing.Pool``
repopulates the process but silently drops the task) is abandoned at its
deadline and resubmitted the same way. Only when a job exhausts
``max_retries`` does the scheduler raise :class:`JobFailedError` — and even
then every other finished job in the same completion batch is yielded (and
so reaches the caller's cache) before the raise, so one poisoned candidate
costs its own work, not its neighbours'.

Submission is **bounded**: at most ``max_inflight`` attempts (default
``4 x executor.num_workers``) are outstanding at once and further jobs are
submitted as results drain. Wide depths (625+ candidates) therefore start
their per-attempt deadline clock when work can actually run, not when the
whole bag is enqueued — and with inline executors, results stream back
(and get persisted by the caller) between submissions instead of only
after the last job ran.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, fields, replace
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.parallel.executor import Executor, SerialExecutor

__all__ = ["JobFailedError", "JobStats", "JobScheduler"]


class JobFailedError(RuntimeError):
    """A job failed (or timed out) on every allowed attempt."""

    def __init__(self, job_index: int, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"job {job_index} failed after {attempts} attempt(s): {cause!r}"
        )
        self.job_index = job_index
        self.attempts = attempts
        self.cause = cause


@dataclass
class JobStats:
    """Scheduler counters: either lifetime totals or one pass's delta.

    ``JobScheduler.stats`` accumulates for the scheduler's lifetime (the
    numbers a search reports at the end); ``JobScheduler.pass_stats`` is
    the delta of the current/most recent ``run``/``as_completed`` pass.
    """

    submitted: int = 0
    completed: int = 0
    retried: int = 0
    timed_out: int = 0
    failed: int = 0

    def __sub__(self, other: JobStats) -> JobStats:
        return JobStats(
            **{
                f.name: getattr(self, f.name) - getattr(other, f.name)
                for f in fields(self)
            }
        )


@dataclass
class _Pending:
    """Book-keeping for one in-flight attempt."""

    index: int
    attempt: int
    deadline: float | None
    submitted_at: float


class JobScheduler:
    """Streams ``fn(*job)`` results as they complete, tolerating faults.

    Parameters
    ----------
    executor:
        Any :class:`~repro.parallel.executor.Executor`; its ``submit``
        method provides the futures. Defaults to serial execution.
    max_retries:
        Extra attempts per job after the first (0 = fail fast).
    timeout:
        Per-attempt wall-clock deadline in seconds; ``None`` disables.
        On expiry the attempt is abandoned (its late result, if any, is
        discarded) and the job is resubmitted.
    max_inflight:
        Cap on outstanding attempts; ``None`` = ``4 x num_workers``.
        Bounding keeps deadlines honest (an attempt's clock starts when it
        is submitted) and lets inline executors stream results between
        submissions.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`. When given,
        the scheduler mirrors its counters into ``repro_jobs_*_total``
        and observes per-attempt run latency (``repro_job_run_seconds``)
        and backlog wait before a job's first attempt
        (``repro_job_queue_wait_seconds``).
    """

    def __init__(
        self,
        executor: Executor | None = None,
        *,
        max_retries: int = 2,
        timeout: float | None = None,
        max_inflight: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.executor = executor or SerialExecutor()
        self.max_retries = int(max_retries)
        self.timeout = timeout
        self.max_inflight = max_inflight
        self.stats = JobStats()
        self._pass_start = JobStats()
        self._pass_t0 = time.monotonic()
        self.metrics = metrics
        self._m: dict[str, Any] | None = None
        if metrics is not None:
            self._m = {
                "submitted": metrics.counter(
                    "repro_jobs_submitted_total",
                    "Job attempts handed to the executor",
                ),
                "completed": metrics.counter(
                    "repro_jobs_completed_total",
                    "Job attempts that returned a result",
                ),
                "retried": metrics.counter(
                    "repro_jobs_retried_total",
                    "Failed or expired attempts that were resubmitted",
                ),
                "timed_out": metrics.counter(
                    "repro_jobs_timed_out_total",
                    "Attempts abandoned at their per-attempt deadline",
                ),
                "failed": metrics.counter(
                    "repro_jobs_failed_total",
                    "Jobs that exhausted their retry budget",
                ),
                "run": metrics.histogram(
                    "repro_job_run_seconds",
                    "Submit-to-completion latency of one job attempt",
                ),
                "wait": metrics.histogram(
                    "repro_job_queue_wait_seconds",
                    "Backlog wait before a job's first attempt is submitted",
                ),
            }

    # -- accounting --------------------------------------------------------

    @property
    def pass_stats(self) -> JobStats:
        """Counters of the current/most recent ``run``/``as_completed``."""
        return self.stats - self._pass_start

    # -- public API --------------------------------------------------------

    def as_completed(
        self, fn: Callable, jobs: Sequence[tuple]
    ) -> Iterator[tuple[int, Any]]:
        """Yield ``(job_index, result)`` pairs in completion order."""
        jobs = list(jobs)
        self._pass_start = replace(self.stats)
        self._pass_t0 = time.monotonic()
        limit = self.max_inflight or 4 * max(1, self.executor.num_workers)
        backlog = deque(range(len(jobs)))
        pending: dict[Future, _Pending] = {}

        while pending or backlog:
            while backlog and len(pending) < limit:
                self._submit(pending, fn, jobs, backlog.popleft(), attempt=1)
            wait_timeout = self._next_wait(pending)
            done, _ = wait(
                set(pending), timeout=wait_timeout, return_when=FIRST_COMPLETED
            )
            # Drain the whole completion batch before surfacing any
            # failure: the other finished futures carry real work that
            # must reach the caller, not be dropped with the generator.
            failure: JobFailedError | None = None
            for future in done:
                entry = pending.pop(future)
                error = future.exception()
                if error is None:
                    self.stats.completed += 1
                    if self._m is not None:
                        elapsed = time.monotonic() - entry.submitted_at
                        self._m["completed"].inc()
                        self._m["run"].observe(elapsed)
                        self.metrics.trace_event(
                            "job_run",
                            elapsed,
                            index=entry.index,
                            attempt=entry.attempt,
                        )
                    yield entry.index, future.result()
                else:
                    failure = failure or self._retry_or_fail(
                        pending, fn, jobs, entry, error
                    )
            failure = failure or self._expire(pending, fn, jobs)
            if failure is not None:
                raise failure

    def run(self, fn: Callable, jobs: Sequence[tuple]) -> list[Any]:
        """Ordered results — a fault-tolerant drop-in for ``starmap``."""
        results: list[Any] = [None] * len(jobs)
        for index, result in self.as_completed(fn, jobs):
            results[index] = result
        return results

    # -- internals ---------------------------------------------------------

    def _submit(
        self,
        pending: dict[Future, _Pending],
        fn: Callable,
        jobs: Sequence[tuple],
        index: int,
        attempt: int,
    ) -> None:
        now = time.monotonic()
        deadline = None if self.timeout is None else now + self.timeout
        future = self.executor.submit(fn, *jobs[index])
        pending[future] = _Pending(index, attempt, deadline, now)
        self.stats.submitted += 1
        if self._m is not None:
            self._m["submitted"].inc()
            if attempt == 1:
                self._m["wait"].observe(now - self._pass_t0)

    def _retry_or_fail(
        self,
        pending: dict[Future, _Pending],
        fn: Callable,
        jobs: Sequence[tuple],
        entry: _Pending,
        cause: BaseException,
    ) -> JobFailedError | None:
        """Resubmit a failed attempt, or return (not raise) the terminal
        error so the caller can finish draining its completion batch."""
        if entry.attempt <= self.max_retries:
            self.stats.retried += 1
            if self._m is not None:
                self._m["retried"].inc()
            self._submit(pending, fn, jobs, entry.index, attempt=entry.attempt + 1)
            return None
        self.stats.failed += 1
        if self._m is not None:
            self._m["failed"].inc()
        error = JobFailedError(entry.index, entry.attempt, cause)
        error.__cause__ = cause
        return error

    def _expire(
        self, pending: dict[Future, _Pending], fn: Callable, jobs: Sequence[tuple]
    ) -> JobFailedError | None:
        now = time.monotonic()
        expired = [
            future
            for future, entry in pending.items()
            if entry.deadline is not None and now >= entry.deadline and not future.done()
        ]
        failure: JobFailedError | None = None
        for future in expired:
            entry = pending.pop(future)
            if not future.cancel() and not future.done():
                # The attempt is genuinely running on a worker we can no
                # longer reach — the pool can't be joined gracefully. A
                # successful cancel means the attempt never started and
                # the pool is still clean.
                self.executor.tainted = True
            self.stats.timed_out += 1
            if self._m is not None:
                self._m["timed_out"].inc()
            failure = failure or self._retry_or_fail(
                pending,
                fn,
                jobs,
                entry,
                TimeoutError(
                    f"job {entry.index} attempt {entry.attempt} exceeded "
                    f"{self.timeout}s"
                ),
            )
        return failure

    def _next_wait(self, pending: dict[Future, _Pending]) -> float | None:
        """Seconds until the earliest deadline (None = wait indefinitely)."""
        deadlines = [e.deadline for e in pending.values() if e.deadline is not None]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic())
