"""Task-bag scheduling simulation — the Fig. 5 substrate.

Where this sits in the two-level parallelization scheme (Fig. 2/Fig. 3):

* **Level 1 — candidates across cores.** Within one node, the candidate
  gate combinations of a depth fan out over a process pool. The real
  implementation is :mod:`repro.parallel.executor` (``starmap_async``
  batches and per-job ``submit`` futures) driven fault-tolerantly by
  :class:`repro.parallel.jobs.JobScheduler`, which the search runtime
  (:mod:`repro.core.runtime`) uses for retry/timeout/streaming.
* **Level 2 — graphs across nodes.** The outer workload distributes
  whole graphs to cluster nodes; :class:`repro.parallel.cluster.ClusterModel`
  models that hierarchy (including GPU offload) on top of this module.

This module is the *simulation* half of level 1: the paper sweeps 8–64
cores on a Polaris node; this box has two. Per the substitution policy
(DESIGN.md): task *durations are measured* by really running the candidate
evaluations, and only their *placement* onto W workers is simulated. The
simulator is a faithful model of what ``Pool.starmap_async`` does with an
embarrassingly-parallel task bag — greedy dispatch of the next task to the
earliest-free worker, plus explicit overhead knobs — so the
makespan-vs-cores curve keeps the real shape (near-linear scaling, then a
plateau governed by task-count granularity and the longest task).

The model is validated where it can be: on this machine the W=1 and W=2
predictions are checked against real executor timings in the test suite.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "OverheadModel",
    "ScheduleResult",
    "simulate_makespan",
    "simulate_core_sweep",
    "speedup_curve",
]


@dataclass(frozen=True)
class OverheadModel:
    """Fixed costs of process-pool execution.

    * ``worker_startup`` — fork/import cost per worker, paid once (seconds);
    * ``dispatch_per_task`` — pickling + queue round-trip per task;
    * ``serial_fraction`` — part of the total work that never parallelizes
      (result collection, bookkeeping in the parent), as a fraction of the
      sum of task durations.
    """

    worker_startup: float = 0.0
    dispatch_per_task: float = 0.0
    serial_fraction: float = 0.0


@dataclass
class ScheduleResult:
    """A simulated schedule of a task bag on ``num_workers`` workers."""

    num_workers: int
    makespan: float
    worker_finish_times: list[float]
    assignments: list[int]  # task index -> worker index
    policy: str

    @property
    def utilization(self) -> float:
        """Mean busy fraction across workers."""
        if self.makespan == 0.0:
            return 1.0
        return float(np.mean(self.worker_finish_times) / self.makespan)


def simulate_makespan(
    durations: Sequence[float],
    num_workers: int,
    *,
    overhead: OverheadModel = OverheadModel(),
    policy: str = "fifo",
) -> ScheduleResult:
    """Greedy list scheduling of ``durations`` onto ``num_workers`` workers.

    ``policy="fifo"`` dispatches in submission order (what a process pool
    does); ``"lpt"`` sorts longest-first (the classic makespan heuristic,
    used by the ablation to show how much ordering matters).
    """
    check_positive(num_workers, "num_workers")
    order = list(range(len(durations)))
    if policy == "lpt":
        order.sort(key=lambda i: -durations[i])
    elif policy != "fifo":
        raise ValueError(f"unknown policy {policy!r}; options: fifo, lpt")

    # (finish_time, worker_index) min-heap
    heap: list[tuple[float, int]] = [
        (overhead.worker_startup, w) for w in range(num_workers)
    ]
    heapq.heapify(heap)
    assignments = [0] * len(durations)
    finish = [overhead.worker_startup] * num_workers
    for task in order:
        available_at, worker = heapq.heappop(heap)
        done = available_at + overhead.dispatch_per_task + float(durations[task])
        assignments[task] = worker
        finish[worker] = done
        heapq.heappush(heap, (done, worker))
    serial_tail = overhead.serial_fraction * float(np.sum(durations))
    makespan = (max(finish) if durations else overhead.worker_startup) + serial_tail
    return ScheduleResult(num_workers, makespan, finish, assignments, policy)


def simulate_core_sweep(
    durations: Sequence[float],
    worker_counts: Sequence[int],
    *,
    overhead: OverheadModel = OverheadModel(),
    policy: str = "fifo",
) -> list[ScheduleResult]:
    """Fig. 5's x-axis: the same measured task bag on each core count."""
    return [
        simulate_makespan(durations, w, overhead=overhead, policy=policy)
        for w in worker_counts
    ]


def speedup_curve(results: Sequence[ScheduleResult], serial_time: float) -> dict[int, float]:
    """``serial_time / makespan`` per worker count."""
    return {r.num_workers: serial_time / r.makespan for r in results}
