"""Wall-clock instrumentation for the profiling experiments."""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TypeVar

__all__ = ["Timer", "time_call", "TimingLog"]

T = TypeVar("T")


class Timer:
    """Context-manager stopwatch (``perf_counter`` based)::

        with Timer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> Timer:
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self.start


def time_call(fn: Callable[..., T], *args, **kwargs) -> tuple[T, float]:
    """Run ``fn`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


@dataclass
class TimingLog:
    """Named duration accumulator (per-phase breakdowns in the harness)."""

    entries: dict[str, list[float]] = field(default_factory=dict)

    def record(self, name: str, seconds: float) -> None:
        self.entries.setdefault(name, []).append(seconds)

    def total(self, name: str) -> float:
        return sum(self.entries.get(name, ()))

    def mean(self, name: str) -> float:
        values = self.entries.get(name, ())
        return sum(values) / len(values) if values else 0.0

    def summary(self) -> dict[str, dict[str, float]]:
        return {
            name: {
                "total": self.total(name),
                "mean": self.mean(name),
                "count": float(len(values)),
            }
            for name, values in self.entries.items()
        }
