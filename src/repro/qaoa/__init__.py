"""QAOA for max-cut: the paper's driver application.

Cost function and classical baselines (:mod:`~repro.qaoa.maxcut`), the
Eq. (2) ansatz with pluggable mixers (:mod:`~repro.qaoa.ansatz`,
:mod:`~repro.qaoa.mixers`), energy/gradient evaluation on either simulation
engine (:mod:`~repro.qaoa.energy`), and the p=1 closed form used as a test
oracle (:mod:`~repro.qaoa.analytic`).
"""

from repro.qaoa.analytic import edge_energy_p1, grid_search_p1, maxcut_energy_p1
from repro.qaoa.ansatz import QAOAAnsatz, build_qaoa_ansatz
from repro.qaoa.cost_operator import append_cost_layer, cost_layer
from repro.qaoa.energy import AnsatzEnergy
from repro.qaoa.initialization import interp_init, make_initializer, ramp_init, uniform_init
from repro.qaoa.maxcut import (
    CutSolution,
    approximation_ratio,
    brute_force_maxcut,
    cut_value,
    expected_best_cut,
    expected_best_value,
    greedy_maxcut,
    local_search_maxcut,
    random_cut_expectation,
)
from repro.qaoa.mixers import (
    ENTANGLER_TOKENS,
    FIXED_TOKENS,
    MIXER_TOKENS,
    PARAMETERIZED_TOKENS,
    append_mixer_layer,
    baseline_mixer,
    mixer_label,
    mixer_layer,
)
from repro.qaoa.observables import (
    PauliSum,
    PauliTerm,
    ising_hamiltonian,
    maxcut_hamiltonian,
    qubo_to_ising,
    tfim_hamiltonian,
)
from repro.qaoa.vqe import VQEAnsatz, VQEEnergy, build_vqe_ansatz, search_vqe_ansatz, train_vqe

__all__ = [
    "QAOAAnsatz",
    "build_qaoa_ansatz",
    "AnsatzEnergy",
    "append_cost_layer",
    "cost_layer",
    "append_mixer_layer",
    "mixer_layer",
    "baseline_mixer",
    "mixer_label",
    "MIXER_TOKENS",
    "PARAMETERIZED_TOKENS",
    "FIXED_TOKENS",
    "ENTANGLER_TOKENS",
    "cut_value",
    "CutSolution",
    "brute_force_maxcut",
    "greedy_maxcut",
    "local_search_maxcut",
    "random_cut_expectation",
    "expected_best_cut",
    "expected_best_value",
    "approximation_ratio",
    "edge_energy_p1",
    "maxcut_energy_p1",
    "grid_search_p1",
    "PauliSum",
    "PauliTerm",
    "ising_hamiltonian",
    "maxcut_hamiltonian",
    "tfim_hamiltonian",
    "qubo_to_ising",
    "VQEAnsatz",
    "VQEEnergy",
    "build_vqe_ansatz",
    "train_vqe",
    "search_vqe_ansatz",
    "uniform_init",
    "ramp_init",
    "interp_init",
    "make_initializer",
]
