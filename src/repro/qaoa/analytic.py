"""Closed-form p=1 QAOA max-cut energy (test oracle).

For the standard transverse-field mixer and unweighted graphs, the p=1
energy has the classic closed form of Wang, Hadfield, Jiang & Rieffel
(PRA 97, 022304, 2018), per edge (u, v)::

    <C_uv> = 1/2
           + (1/4) sin(4 beta) sin(gamma) (cos^e gamma + cos^f gamma)
           - (1/4) sin^2(2 beta) cos^(e + f - 2 lam) gamma (1 - cos^lam(2 gamma))

with ``e = deg(u) - 1``, ``f = deg(v) - 1`` and ``lam`` the number of
triangles containing the edge. The sign of the middle term fixes the
gamma-orientation convention; ours matches the cost layer
``RZZ(-gamma)`` / mixer ``RX(2 beta)`` construction and is pinned by an
exactness test against the state-vector simulator.

This module exists as an *oracle*: the simulators and the tensor-network
engine are independently validated against it on every graph family.
"""

from __future__ import annotations

import math

from repro.graphs.generators import Graph

__all__ = ["edge_energy_p1", "maxcut_energy_p1", "grid_search_p1"]


def _common_neighbors(graph: Graph, u: int, v: int) -> int:
    return len(set(graph.neighbors(u)) & set(graph.neighbors(v)))


def edge_energy_p1(graph: Graph, u: int, v: int, gamma: float, beta: float) -> float:
    """``<C_uv>`` at p=1 for an unweighted graph."""
    if any(w != 1.0 for w in graph.weights):
        raise ValueError("closed form implemented for unweighted graphs only")
    e = graph.degree(u) - 1
    f = graph.degree(v) - 1
    lam = _common_neighbors(graph, u, v)
    cg = math.cos(gamma)
    term_single = (
        0.25 * math.sin(4 * beta) * math.sin(gamma) * (cg**e + cg**f)
    )
    term_pair = (
        0.25
        * math.sin(2 * beta) ** 2
        * cg ** (e + f - 2 * lam)
        * (1 - math.cos(2 * gamma) ** lam)
    )
    return 0.5 + term_single - term_pair


def maxcut_energy_p1(graph: Graph, gamma: float, beta: float) -> float:
    """Total p=1 energy: sum of closed-form edge terms."""
    return sum(edge_energy_p1(graph, u, v, gamma, beta) for u, v in graph.edges)


def grid_search_p1(
    graph: Graph, *, resolution: int = 64
) -> tuple[float, float, float]:
    """Best ``(energy, gamma, beta)`` over a uniform grid — a cheap globally
    reliable p=1 optimum, used to sanity-check optimizer results."""
    best = (-math.inf, 0.0, 0.0)
    for i in range(resolution):
        gamma = -math.pi + 2 * math.pi * i / resolution
        for j in range(resolution):
            beta = -math.pi / 2 + math.pi * j / resolution
            energy = maxcut_energy_p1(graph, gamma, beta)
            if energy > best[0]:
                best = (energy, gamma, beta)
    return best
