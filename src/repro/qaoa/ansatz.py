"""The p-layer QAOA ansatz of Eq. (2).

``|gamma, beta> = e^{-i beta_p B} e^{-i gamma_p C} ... e^{-i beta_1 B}
e^{-i gamma_1 C} |s>`` with ``|s> = |+>^n``. The mixer slot accepts any
token sequence from :mod:`repro.qaoa.mixers`, which is where the searched
architectures plug in.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.graphs.generators import Graph
from repro.qaoa.mixers import append_mixer_layer, mixer_label
from repro.utils.validation import check_positive

__all__ = ["QAOAAnsatz", "build_qaoa_ansatz"]


@dataclass(frozen=True)
class QAOAAnsatz:
    """A built ansatz: the symbolic circuit plus its parameter vectors.

    ``parameters`` concatenates ``gammas + betas`` — the flat layout the
    optimizers see. ``initial_hadamard`` records whether the circuit
    prepares ``|+>^n`` itself (H column) or expects the simulator to start
    from the plus state.
    """

    circuit: QuantumCircuit
    gammas: tuple[Parameter, ...]
    betas: tuple[Parameter, ...]
    graph: Graph
    mixer_tokens: tuple[str, ...]
    initial_hadamard: bool
    #: registry key of the problem this ansatz optimizes (the phase
    #: separators baked into ``circuit`` came from this workload)
    workload: str = "maxcut"

    @property
    def p(self) -> int:
        return len(self.gammas)

    @property
    def parameters(self) -> list[Parameter]:
        return list(self.gammas) + list(self.betas)

    @property
    def num_parameters(self) -> int:
        return 2 * self.p

    def bind(self, values: Sequence[float]) -> QuantumCircuit:
        """Bind a flat ``[gammas..., betas...]`` vector."""
        if len(values) != self.num_parameters:
            raise ValueError(
                f"expected {self.num_parameters} values (p={self.p}), got {len(values)}"
            )
        mapping = dict(zip(self.parameters, values))
        return self.circuit.bind_parameters(mapping)

    @property
    def initial_state_label(self) -> str:
        """What the simulator should start from: ``"0"`` if the circuit has
        its own Hadamard column, else ``"+"``."""
        return "0" if self.initial_hadamard else "+"

    def compile(self, *, backend=None):
        """Lower into a :class:`~repro.simulators.compiled.CompiledProgram`.

        One-time cost per ansatz; the returned program evaluates energies,
        batches, and parameter-shift gradients without ever rebuilding or
        re-binding this circuit (the fast path of
        :class:`~repro.qaoa.energy.AnsatzEnergy`'s default engine).
        ``backend`` selects the array backend the program runs under — a
        registered name or :class:`~repro.simulators.backends.ArrayBackend`
        instance (default ``"numpy"``).
        """
        from repro.simulators.compiled import compile_ansatz

        return compile_ansatz(self, backend=backend)


def build_qaoa_ansatz(
    graph: Graph,
    p: int,
    mixer_tokens: Sequence[str] = ("rx",),
    *,
    initial_hadamard: bool = True,
    workload: str = "maxcut",
) -> QAOAAnsatz:
    """Construct the Eq. (2) ansatz for ``graph`` at depth ``p``.

    One ``gamma_k``/``beta_k`` pair per layer; within a layer every
    parameterized mixer gate shares ``beta_k`` (the paper's weight-sharing
    choice, which keeps the parameter count at ``2p`` regardless of mixer
    length). ``workload`` selects the phase separator ``e^{-i gamma C}``
    from the :mod:`repro.workloads` registry (default: the paper's MaxCut).
    """
    # imported lazily: repro.workloads pulls in repro.qaoa.cost_operator,
    # so a module-level import here would be circular
    from repro.workloads import get_workload

    check_positive(p, "p")
    problem = get_workload(workload)
    problem.validate_instance(graph)
    tokens = tuple(mixer_tokens)
    n = graph.num_nodes
    circuit = QuantumCircuit(n, name=f"qaoa_p{p}_{mixer_label(tokens)}")
    if initial_hadamard:
        for q in range(n):
            circuit.h(q)
    gammas = tuple(Parameter(f"gamma_{k}") for k in range(p))
    betas = tuple(Parameter(f"beta_{k}") for k in range(p))
    for k in range(p):
        problem.append_cost_layer(circuit, graph, gammas[k])
        append_mixer_layer(circuit, tokens, betas[k])
    return QAOAAnsatz(
        circuit, gammas, betas, graph, tokens, initial_hadamard, workload
    )
