"""The QAOA cost operator ``e^{-i gamma C}`` for max-cut.

With ``C = sum_e w_e (1 - Z_u Z_v)/2``, the phase separator factors into
one two-qubit diagonal per edge:

``e^{-i gamma C} = prod_e e^{-i gamma w_e / 2} * e^{+i gamma w_e Z_u Z_v / 2}``.

The scalar prefactor is a global phase and is dropped; the remaining factor
is ``RZZ(-gamma * w_e)`` in our convention ``RZZ(t) = exp(-i t ZZ / 2)``.
Being diagonal, the whole layer stays rank-preserving in the tensor network
and commutes with the cut observable (which the lightcone pruner exploits).

Diagonality also makes the layer trivially fusible: because every per-edge
``RZZ`` shares the layer's ``gamma_k`` linearly, the compiled engine
(:mod:`repro.simulators.compiled`) pre-sums the edge generators into one
weight-diagonal per layer, so applying ``e^{-i gamma C}`` at evaluation
time is a single ``state * exp(1j * gamma * d)`` elementwise multiply no
matter how many edges the graph has.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import ParameterValue
from repro.graphs.generators import Graph

__all__ = ["append_cost_layer", "cost_layer"]


def append_cost_layer(
    circuit: QuantumCircuit, graph: Graph, gamma: ParameterValue
) -> QuantumCircuit:
    """Append ``e^{-i gamma C}`` (up to global phase) for ``graph``."""
    for (u, v), w in zip(graph.edges, graph.weights):
        circuit.rzz(gamma * (-w), u, v)
    return circuit


def cost_layer(graph: Graph, gamma: ParameterValue) -> QuantumCircuit:
    """The cost layer as a standalone circuit on ``graph.num_nodes`` qubits."""
    return append_cost_layer(QuantumCircuit(graph.num_nodes, name="cost"), graph, gamma)
