"""QAOA energy evaluation: ``<gamma, beta| C |gamma, beta>``.

:class:`AnsatzEnergy` is the objective the classical optimizer drives (the
Evaluator module's inner loop). It supports two engines:

* ``"statevector"`` — dense simulation; the right choice for the paper's
  10-qubit instances (1024 amplitudes, microseconds per evaluation);
* ``"qtensor"`` — per-edge lightcone tensor contraction via
  :class:`repro.qtensor.QTensorSimulator`; scales to wide, shallow
  circuits where the dense state no longer fits.

Exact gradients come from the two-term parameter-shift rule applied per
gate occurrence: every parameterized gate in the package generates
evolution with a single frequency (Pauli-word generators, or projectors for
``p``/``cp``), so ``dE/da = [E(a + pi/2) - E(a - pi/2)] / 2`` holds exactly
and chain-rules through the linear angle expressions (``2*beta``,
``-w*gamma``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.parameters import Parameter, ParameterExpression
from repro.qaoa.ansatz import QAOAAnsatz
from repro.qtensor.simulator import QTensorSimulator
from repro.simulators.expectation import maxcut_expectation
from repro.simulators.statevector import plus_state, simulate, zero_state

__all__ = ["AnsatzEnergy"]

_SHIFT = np.pi / 2

#: gates whose expectation is single-frequency in the angle (shift rule exact)
_SHIFTABLE = {"rx", "ry", "rz", "p", "rzz", "rxx", "cp"}


class AnsatzEnergy:
    """Callable energy (and gradient) of a QAOA ansatz on its graph."""

    def __init__(
        self,
        ansatz: QAOAAnsatz,
        *,
        engine: str = "statevector",
        qtensor_simulator: Optional[QTensorSimulator] = None,
    ) -> None:
        if engine not in ("statevector", "qtensor"):
            raise ValueError(f"unknown engine {engine!r}")
        self.ansatz = ansatz
        self.engine = engine
        self._qtensor = qtensor_simulator or (
            QTensorSimulator() if engine == "qtensor" else None
        )
        self.num_evaluations = 0

    # -- energy -----------------------------------------------------------------

    def value(self, x: Sequence[float]) -> float:
        """``<C>`` at the flat parameter vector ``[gammas..., betas...]``."""
        return self._energy_of_circuit(self.ansatz.bind(list(x)))

    def __call__(self, x: Sequence[float]) -> float:
        return self.value(x)

    def negative(self, x: Sequence[float]) -> float:
        """``-<C>`` — the minimization objective (we maximize the cut)."""
        return -self.value(x)

    def _energy_of_circuit(self, bound: QuantumCircuit) -> float:
        self.num_evaluations += 1
        graph = self.ansatz.graph
        if self.engine == "statevector":
            init = (
                zero_state(bound.num_qubits)
                if self.ansatz.initial_hadamard
                else plus_state(bound.num_qubits)
            )
            return maxcut_expectation(simulate(bound, init), graph)
        return self._qtensor.maxcut_energy(
            bound, graph, initial_state=self.ansatz.initial_state_label
        )

    # -- gradient ---------------------------------------------------------------

    def gradient(self, x: Sequence[float]) -> np.ndarray:
        """Exact parameter-shift gradient of :meth:`value` at ``x``.

        Cost: two energy evaluations per parameterized gate occurrence per
        parameter it contains.
        """
        x = list(x)
        params = self.ansatz.parameters
        bindings: Dict[Parameter, float] = dict(zip(params, x))
        grad = np.zeros(len(params))
        instructions = self.ansatz.circuit.instructions
        for gate_idx, instr in enumerate(instructions):
            free = instr.gate.parameters
            if not free:
                continue
            if instr.gate.name not in _SHIFTABLE:
                raise NotImplementedError(
                    f"no shift rule for gate '{instr.gate.name}'"
                )
            (angle_expr,) = instr.gate.params  # all shiftable gates take 1 angle
            assert isinstance(angle_expr, ParameterExpression)
            plus = self._energy_with_shift(gate_idx, angle_expr, bindings, +_SHIFT)
            minus = self._energy_with_shift(gate_idx, angle_expr, bindings, -_SHIFT)
            gate_grad = (plus - minus) / 2.0
            for j, param in enumerate(params):
                coeff = angle_expr.terms.get(param, 0.0)
                if coeff:
                    grad[j] += coeff * gate_grad
        return grad

    def _energy_with_shift(
        self,
        gate_idx: int,
        angle_expr: ParameterExpression,
        bindings: Dict[Parameter, float],
        shift: float,
    ) -> float:
        shifted = QuantumCircuit(self.ansatz.circuit.num_qubits)
        for idx, instr in enumerate(self.ansatz.circuit.instructions):
            if idx == gate_idx:
                gate = Gate(instr.gate.spec, (angle_expr + shift,))
                shifted.append(gate, instr.qubits)
            else:
                shifted.append(instr.gate, instr.qubits)
        return self._energy_of_circuit(shifted.bind_parameters(bindings))

    def value_and_gradient(self, x: Sequence[float]):
        """Convenience for gradient-based optimizers."""
        return self.value(x), self.gradient(x)
