"""QAOA energy evaluation: ``<gamma, beta| C |gamma, beta>``.

:class:`AnsatzEnergy` is the objective the classical optimizer drives (the
Evaluator module's inner loop). It supports three engines:

* ``"compiled"`` (default) — the ansatz is lowered once by
  :func:`repro.simulators.compiled.compile_ansatz` into a flat sequence of
  fused array ops (cost layers become single precomputed phase diagonals);
  every optimizer step then runs with zero circuit rebuilds, zero dict
  bindings, and zero gate-matrix re-materialization. Numerically
  equivalent to ``"statevector"`` to ~1e-12 and roughly an order of
  magnitude faster on the paper's workloads; also the only engine with a
  batched :meth:`AnsatzEnergy.values` fast path, and the only one with a
  pluggable *array backend* (``array_backend=``: NumPy default, CuPy when
  installed, or the metered mock GPU — see
  :mod:`repro.simulators.backends`).
* ``"statevector"`` — per-gate dense simulation of the freshly bound
  circuit; the exactness oracle the compiled engine is pinned against in
  the equivalence tests, and the right choice when instrumenting or
  mutating circuits between evaluations.
* ``"qtensor"`` — per-edge lightcone tensor contraction via
  :class:`repro.qtensor.QTensorSimulator`; scales to wide, shallow
  circuits where the dense state no longer fits.

Exact gradients come from the two-term parameter-shift rule applied per
gate occurrence: every parameterized gate in the package generates
evolution with a single frequency (Pauli-word generators, or projectors for
``p``/``cp``), so ``dE/da = [E(a + pi/2) - E(a - pi/2)] / 2`` holds exactly
and chain-rules through the linear angle expressions (``2*beta``,
``-w*gamma``). The compiled engine evaluates all shifted energies in one
batched pass; the dense engine reconstructs a shifted circuit per
occurrence.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.circuits.parameters import Parameter, ParameterExpression
from repro.qaoa.ansatz import QAOAAnsatz
from repro.qtensor.simulator import QTensorSimulator
from repro.simulators.backends import ArrayBackend, get_array_backend
from repro.simulators.compiled import SHIFT_RULE_GATES, CompiledProgram
from repro.simulators.statevector import plus_state, simulate, zero_state

__all__ = ["AnsatzEnergy", "ENGINES", "NegatedEnergy"]

#: the recognised simulation engines, fastest first
ENGINES = ("compiled", "statevector", "qtensor")

_SHIFT = np.pi / 2

#: gates whose expectation is single-frequency in the angle (shift rule exact)
_SHIFTABLE = SHIFT_RULE_GATES


class AnsatzEnergy:
    """Callable energy (and gradient) of a QAOA ansatz on its graph."""

    def __init__(
        self,
        ansatz: QAOAAnsatz,
        *,
        engine: str = "compiled",
        array_backend: str | ArrayBackend = "numpy",
        qtensor_simulator: QTensorSimulator | None = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; options: {ENGINES}")
        self.ansatz = ansatz
        self.engine = engine
        #: the array backend the compiled engine evaluates under (see
        #: :mod:`repro.simulators.backends`); resolved eagerly so an
        #: unknown name fails here, not on the first energy call
        self.array_backend = get_array_backend(array_backend)
        self._qtensor = qtensor_simulator or (
            QTensorSimulator() if engine == "qtensor" else None
        )
        self._program: CompiledProgram | None = None
        self.num_evaluations = 0

    @property
    def program(self) -> CompiledProgram:
        """The compiled program (lowered lazily, once per ansatz)."""
        if self._program is None:
            self._program = self.ansatz.compile(backend=self.array_backend)
        return self._program

    # -- energy -----------------------------------------------------------------

    def value(self, x: Sequence[float]) -> float:
        """``<C>`` at the flat parameter vector ``[gammas..., betas...]``."""
        if self.engine == "compiled":
            self.num_evaluations += 1
            return self.program.energy(x)
        return self._energy_of_circuit(self.ansatz.bind(list(x)))

    def __call__(self, x: Sequence[float]) -> float:
        return self.value(x)

    def negative(self, x: Sequence[float]) -> float:
        """``-<C>`` — the minimization objective (we maximize the cut)."""
        return -self.value(x)

    def negatives(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        """``-<C>`` for a batch of parameter vectors (rows of ``X``)."""
        return -self.values(X)

    def negative_objective(self) -> NegatedEnergy:
        """The minimization view of this energy as a
        :class:`~repro.optimizers.base.BatchObjective` — scalar calls,
        batched ``values``, and (batched) parameter-shift gradients all
        negated, so batch-native optimizers can drive it directly."""
        return NegatedEnergy(self)

    def values(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        """``<C>`` for a batch of parameter vectors (rows of ``X``).

        The compiled engine pushes the whole batch through its ops with a
        trailing batch axis; the other engines fall back to a loop.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if self.engine == "compiled":
            self.num_evaluations += X.shape[0]
            return self.program.energies(X)
        return np.array([self.value(row) for row in X])

    def _dense_initial_state(self) -> np.ndarray:
        """|0...0> when the circuit carries its own H column, else |+>^n."""
        n = self.ansatz.circuit.num_qubits
        return zero_state(n) if self.ansatz.initial_hadamard else plus_state(n)

    def final_state(self, x: Sequence[float]) -> np.ndarray:
        """The trained circuit's output statevector at ``x`` (dense)."""
        if self.engine == "compiled":
            return self.program.state(x)
        return simulate(self.ansatz.bind(list(x)), self._dense_initial_state())

    def _objective_table(self) -> np.ndarray:
        """The workload's ``(2^n,)`` objective diagonal for this graph."""
        from repro.workloads import get_workload

        workload = getattr(self.ansatz, "workload", "maxcut") or "maxcut"
        return get_workload(workload).objective_values(self.ansatz.graph)

    def _energy_of_circuit(self, bound: QuantumCircuit) -> float:
        self.num_evaluations += 1
        graph = self.ansatz.graph
        if self.engine == "statevector":
            state = simulate(bound, self._dense_initial_state())
            probs = np.abs(state) ** 2
            return float(probs @ self._objective_table())
        workload = getattr(self.ansatz, "workload", "maxcut") or "maxcut"
        if workload != "maxcut":
            raise ValueError(
                "the qtensor engine contracts the MaxCut observable edge by "
                f"edge and cannot evaluate workload {workload!r}; use "
                "engine='compiled' or 'statevector'"
            )
        return self._qtensor.maxcut_energy(
            bound, graph, initial_state=self.ansatz.initial_state_label
        )

    # -- gradient ---------------------------------------------------------------

    def gradient(self, x: Sequence[float]) -> np.ndarray:
        """Exact parameter-shift gradient of :meth:`value` at ``x``.

        Cost: two energy evaluations per parameterized gate occurrence per
        parameter it contains — batched into one vectorized pass by the
        compiled engine, sequential shifted circuits otherwise.
        """
        if self.engine == "compiled":
            grad = self.program.gradient(x)
            self.num_evaluations += 2 * self.program.num_shift_sites
            return grad
        x = list(x)
        params = self.ansatz.parameters
        bindings: dict[Parameter, float] = dict(zip(params, x))
        grad = np.zeros(len(params))
        instructions = self.ansatz.circuit.instructions
        for gate_idx, instr in enumerate(instructions):
            free = instr.gate.parameters
            if not free:
                continue
            if instr.gate.name not in _SHIFTABLE:
                raise NotImplementedError(
                    f"no shift rule for gate '{instr.gate.name}'"
                )
            (angle_expr,) = instr.gate.params  # all shiftable gates take 1 angle
            assert isinstance(angle_expr, ParameterExpression)
            plus = self._energy_with_shift(gate_idx, angle_expr, bindings, +_SHIFT)
            minus = self._energy_with_shift(gate_idx, angle_expr, bindings, -_SHIFT)
            gate_grad = (plus - minus) / 2.0
            for j, param in enumerate(params):
                coeff = angle_expr.terms.get(param, 0.0)
                if coeff:
                    grad[j] += coeff * gate_grad
        return grad

    def _energy_with_shift(
        self,
        gate_idx: int,
        angle_expr: ParameterExpression,
        bindings: dict[Parameter, float],
        shift: float,
    ) -> float:
        shifted = QuantumCircuit(self.ansatz.circuit.num_qubits)
        for idx, instr in enumerate(self.ansatz.circuit.instructions):
            if idx == gate_idx:
                gate = Gate(instr.gate.spec, (angle_expr + shift,))
                shifted.append(gate, instr.qubits)
            else:
                shifted.append(instr.gate, instr.qubits)
        return self._energy_of_circuit(shifted.bind_parameters(bindings))

    def gradients(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        """Parameter-shift gradients for a batch of parameter vectors.

        The compiled engine runs all rows' shifted evaluations through the
        shared chunked batch passes; the other engines loop
        :meth:`gradient` per row.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if self.engine == "compiled":
            grads = self.program.gradients(X)
            self.num_evaluations += 2 * self.program.num_shift_sites * X.shape[0]
            return grads
        return np.stack([self.gradient(row) for row in X])

    def value_and_gradient(self, x: Sequence[float]):
        """Convenience for gradient-based optimizers."""
        return self.value(x), self.gradient(x)


class NegatedEnergy:
    """Minimization view of an :class:`AnsatzEnergy` (``-<C>``).

    Implements the :class:`~repro.optimizers.base.BatchObjective` protocol:
    scalar ``__call__``, batched ``values``, and (batched) gradients, each
    the negation of the underlying energy — what the Evaluator hands to
    batch-native optimizers so a whole restart population trains through
    one :meth:`CompiledProgram.energies` call per step.
    """

    def __init__(self, energy: AnsatzEnergy) -> None:
        self.energy = energy

    def __call__(self, x: Sequence[float]) -> float:
        return -self.energy.value(x)

    def values(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        return -self.energy.values(X)

    def gradient(self, x: Sequence[float]) -> np.ndarray:
        return -self.energy.gradient(x)

    def gradients(self, X: Sequence[Sequence[float]]) -> np.ndarray:
        return -self.energy.gradients(X)

    def value_and_gradient(self, x: Sequence[float]):
        value, grad = self.energy.value_and_gradient(x)
        return -value, -grad
