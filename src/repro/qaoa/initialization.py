"""QAOA parameter-initialization strategies.

COBYLA from a random start (the paper's protocol) is fine at p <= 2 but
increasingly lands in local optima as depth grows. This module implements
the standard literature remedies so the Evaluator's trained energies — the
search's ranking signal — stay meaningful at depth:

* :func:`uniform_init` — the paper's protocol (seeded uniform window);
* :func:`ramp_init` — the linear-ramp / Trotterized-annealing ansatz:
  ``gamma_k`` grows and ``beta_k`` shrinks linearly across layers (Sack &
  Serbyn 2021);
* :func:`interp_init` — the INTERP heuristic of Zhou et al. (2020): lift an
  optimized depth-``p`` parameter vector to depth ``p+1`` by linear
  interpolation, enabling warm-started depth sweeps.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = ["uniform_init", "ramp_init", "interp_init", "make_initializer"]


def uniform_init(p: int, *, scale: float = 0.5, rng=None) -> np.ndarray:
    """Flat ``[gammas..., betas...]`` drawn uniformly from ``[-scale, scale]``."""
    check_positive(p, "p")
    rng = as_rng(rng)
    return rng.uniform(-scale, scale, size=2 * p)


def ramp_init(
    p: int, *, gamma_max: float = 0.8, beta_max: float = 0.6, rng=None, jitter: float = 0.0
) -> np.ndarray:
    """Linear-ramp schedule: ``gamma_k = (k+1)/p * gamma_max``,
    ``beta_k = (1 - k/p) * beta_max`` — a first-order Trotterization of the
    adiabatic path, a strong generic start for max-cut QAOA.

    ``jitter`` adds a small seeded perturbation so optimizer restarts from
    a ramp stay distinct.
    """
    check_positive(p, "p")
    k = np.arange(p)
    gammas = (k + 1) / p * gamma_max
    betas = (1.0 - k / p) * beta_max
    x = np.concatenate([gammas, betas])
    if jitter:
        x = x + as_rng(rng).uniform(-jitter, jitter, size=2 * p)
    return x


def interp_init(previous: Sequence[float]) -> np.ndarray:
    """INTERP (Zhou et al. 2020): lift an optimized depth-p vector to p+1.

    Each parameter family (gammas, betas) is linearly interpolated:
    ``x'_k = (k/p) x_{k-1} + (1 - k/p) x_k`` for ``k = 0..p`` (with
    out-of-range terms dropped), producing a depth-(p+1) start that
    preserves the learned schedule's shape.
    """
    previous = np.asarray(previous, dtype=float)
    if previous.size % 2 != 0 or previous.size == 0:
        raise ValueError(
            f"expected a flat [gammas..., betas...] vector, got size {previous.size}"
        )
    p = previous.size // 2

    def lift(family: np.ndarray) -> np.ndarray:
        out = np.zeros(p + 1)
        for k in range(p + 1):
            left = family[k - 1] if k - 1 >= 0 else 0.0
            right = family[k] if k < p else 0.0
            out[k] = (k / p) * left + (1.0 - k / p) * right
        return out

    return np.concatenate([lift(previous[:p]), lift(previous[p:])])


def make_initializer(strategy: str):
    """Initializer factory for config plumbing: ``uniform`` or ``ramp``.

    Returns ``fn(p, rng) -> ndarray``. INTERP is not listed here because it
    needs the previous depth's optimum (see
    :meth:`repro.core.depth_sweep.warm_started_sweep`).
    """
    if strategy == "uniform":
        return lambda p, rng: uniform_init(p, rng=rng)
    if strategy == "ramp":
        return lambda p, rng: ramp_init(p, rng=rng, jitter=0.05)
    raise ValueError(f"unknown init strategy {strategy!r}; options: uniform, ramp")
