"""The graph max-cut problem: objective, classical solvers, ratios.

Max-cut supplies QArchSearch's driver application (§1): the cost function
``C_MC(z) = 1/2 sum_{(u,v) in E} (1 - z_u z_v)`` of Eq. (1), classical
reference optima for the approximation ratio of Eq. (3), and cheap
heuristic baselines.

The paper's instances are 10 nodes, so the classical optimum is exact brute
force (vectorized over all 1024 assignments). For larger examples the
greedy/local-search heuristics below keep the approximation ratio defined.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.graphs.generators import Graph
from repro.simulators.expectation import cut_values
from repro.utils.rng import as_rng

__all__ = [
    "cut_value",
    "CutSolution",
    "brute_force_maxcut",
    "greedy_maxcut",
    "local_search_maxcut",
    "random_cut_expectation",
    "expected_best_value",
    "expected_best_cut",
    "approximation_ratio",
]


def cut_value(graph: Graph, assignment: Sequence[int]) -> float:
    """Cut weight of a ±1 or 0/1 assignment (Eq. 1)."""
    arr = np.asarray(assignment)
    if arr.shape != (graph.num_nodes,):
        raise ValueError(
            f"assignment length {arr.shape} does not match {graph.num_nodes} nodes"
        )
    bits = np.where(arr <= 0, 0, 1) if arr.min() < 0 else arr.astype(np.int64)
    edges = graph.edge_array()
    if edges.shape[0] == 0:
        return 0.0
    crossing = bits[edges[:, 0]] != bits[edges[:, 1]]
    return float(crossing @ graph.weight_array())


@dataclass(frozen=True)
class CutSolution:
    """A cut: bitstring (qubit k = bit k), its weight, and how it was found."""

    bitstring: int
    value: float
    method: str

    def assignment(self, num_nodes: int) -> np.ndarray:
        """0/1 side labels as an array."""
        return (np.arange(num_nodes) >= 0) * ((self.bitstring >> np.arange(num_nodes)) & 1)


def brute_force_maxcut(graph: Graph) -> CutSolution:
    """Exact optimum by enumerating all ``2^n`` assignments (n <= ~22)."""
    if graph.num_nodes > 24:
        raise ValueError(
            f"brute force over {graph.num_nodes} nodes is intractable; "
            "use local_search_maxcut"
        )
    values = cut_values(graph)
    best = int(np.argmax(values))
    return CutSolution(best, float(values[best]), "brute_force")


def greedy_maxcut(graph: Graph, *, seed=None) -> CutSolution:
    """Place nodes one by one on the side that cuts more incident weight."""
    rng = as_rng(seed)
    order = rng.permutation(graph.num_nodes)
    side = np.zeros(graph.num_nodes, dtype=np.int64)
    placed = np.zeros(graph.num_nodes, dtype=bool)
    adj = graph.adjacency_matrix()
    for node in order:
        placed_mask = placed.copy()
        w_side0 = float(adj[node, placed_mask] @ (side[placed_mask] == 1))
        w_side1 = float(adj[node, placed_mask] @ (side[placed_mask] == 0))
        side[node] = 0 if w_side0 >= w_side1 else 1
        placed[node] = True
    bitstring = int((side * (1 << np.arange(graph.num_nodes))).sum())
    return CutSolution(bitstring, cut_value(graph, side), "greedy")


def local_search_maxcut(graph: Graph, *, seed=None, max_passes: int = 100) -> CutSolution:
    """1-flip local search from a greedy start (classical baseline for
    graphs too large to brute force)."""
    start = greedy_maxcut(graph, seed=seed)
    n = graph.num_nodes
    side = ((start.bitstring >> np.arange(n)) & 1).astype(np.int64)
    adj = graph.adjacency_matrix()
    for _ in range(max_passes):
        # gain of flipping node i: (weight to same side) - (weight to other side)
        same = (side[None, :] == side[:, None]).astype(float)
        gains = (adj * same).sum(axis=1) - (adj * (1 - same)).sum(axis=1)
        best = int(np.argmax(gains))
        if gains[best] <= 1e-12:
            break
        side[best] ^= 1
    bitstring = int((side * (1 << np.arange(n))).sum())
    return CutSolution(bitstring, cut_value(graph, side), "local_search")


def random_cut_expectation(graph: Graph) -> float:
    """Expected cut of a uniformly random assignment: half the total weight.
    The natural lower anchor when reporting ratios."""
    return graph.total_weight() / 2.0


def expected_best_value(
    probabilities: np.ndarray,
    values: np.ndarray,
    shots: int,
) -> float:
    """Exact ``E[max objective among N measurement samples]`` for an
    arbitrary ``(2^n,)`` objective diagonal ``values``.

    Computed in closed form from the output distribution instead of by
    Monte Carlo: with ``F(c) = P(value <= c)`` for one sample, the maximum
    of ``N`` iid samples has CDF ``F(c)^N``, so
    ``E[max] = sum_c c * (F(c)^N - F(c-)^N)``. Deterministic, vectorized,
    and free of sampling noise. Workload-agnostic: any problem in the
    :mod:`repro.workloads` registry supplies its table here.
    """
    from repro.utils.validation import check_positive

    check_positive(shots, "shots")
    values = np.asarray(values)
    if probabilities.shape != values.shape:
        raise ValueError(
            f"distribution over {probabilities.shape[0]} outcomes does not "
            f"match {values.shape[0]} bitstrings"
        )
    order = np.argsort(values)
    sorted_values = values[order]
    sorted_probs = probabilities[order]
    unique_values, first_index = np.unique(sorted_values, return_index=True)
    cdf = np.add.reduceat(sorted_probs, first_index).cumsum()
    cdf = np.clip(cdf / cdf[-1], 0.0, 1.0)  # renormalize away float drift
    cdf_pow = cdf**shots
    prev = np.concatenate([[0.0], cdf_pow[:-1]])
    return float((unique_values * (cdf_pow - prev)).sum())


def expected_best_cut(
    probabilities: np.ndarray,
    graph: Graph,
    shots: int,
) -> float:
    """Exact ``E[max cut among N measurement samples]`` — Eq. (3)'s
    ``<C_max>``, "the expected energy of the largest cut discovered by the
    given quantum circuit". The MaxCut view of
    :func:`expected_best_value`, the quantity the paper's 0.98..1.0
    approximation-ratio band reports.
    """
    return expected_best_value(probabilities, cut_values(graph), shots)


def approximation_ratio(
    quantum_energy: float,
    graph: Graph,
    *,
    classical_value: float | None = None,
) -> float:
    """Eq. (3): ``r = <C_max> / C_classical``.

    ``classical_value`` defaults to the exact brute-force optimum; pass a
    heuristic value for large graphs. Zero-weight graphs define ``r = 1``.
    """
    if classical_value is None:
        classical_value = brute_force_maxcut(graph).value
    if classical_value == 0.0:
        return 1.0
    return quantum_energy / classical_value
