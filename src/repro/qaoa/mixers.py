"""QAOA mixer layers — the object of the architecture search.

The baseline mixer is the transverse-field layer ``e^{-i beta B}`` with
``B = sum_k X_k``, i.e. ``RX(2 beta)`` on every qubit. QArchSearch replaces
it with a *searched* layer: a sequence of gates from the rotation alphabet
``A_R = {rx, ry, rz, h, p}``, each applied to every node/qubit of the
problem graph, with **all parameterized gates sharing the single parameter
beta** (Fig. 7 caption: "All parameterized gates in the mixer circuit share
the same parameter and hence do not incur additional computational cost").
The winning candidate of Fig. 6 is the sequence ``('rx', 'ry')``.

Entangler tokens (``cz_ring``, ``cx_ring``) extend the alphabet with the
"entanglement operators" the predictor-module description mentions; they
are off by default and exercised by the extension tests/benches.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import ParameterValue
from repro.utils.validation import check_positive

__all__ = [
    "PARAMETERIZED_TOKENS",
    "FIXED_TOKENS",
    "ENTANGLER_TOKENS",
    "MIXER_TOKENS",
    "baseline_mixer",
    "append_mixer_layer",
    "mixer_layer",
    "mixer_label",
]

#: single-qubit rotation tokens that consume the shared beta (as angle 2*beta)
PARAMETERIZED_TOKENS = ("rx", "ry", "rz", "p")
#: parameter-free single-qubit tokens
FIXED_TOKENS = ("h",)
#: optional multi-qubit extension tokens
ENTANGLER_TOKENS = ("cz_ring", "cx_ring")
#: every token a mixer sequence may contain
MIXER_TOKENS = PARAMETERIZED_TOKENS + FIXED_TOKENS + ENTANGLER_TOKENS


def append_mixer_layer(
    circuit: QuantumCircuit,
    tokens: Sequence[str],
    beta: ParameterValue,
    *,
    qubits: Iterable[int] | None = None,
) -> QuantumCircuit:
    """Append the mixer described by ``tokens`` with shared parameter ``beta``.

    Each token is applied to every qubit (gate-major order: all qubits get
    token 0, then all get token 1, ... — the layout drawn in Fig. 6).
    """
    qubits = list(qubits) if qubits is not None else list(range(circuit.num_qubits))
    n = circuit.num_qubits
    for token in tokens:
        if token in PARAMETERIZED_TOKENS:
            for q in qubits:
                circuit.append_named(token, [q], beta * 2.0)
        elif token in FIXED_TOKENS:
            for q in qubits:
                circuit.append_named(token, [q])
        elif token == "cz_ring":
            for q in qubits:
                circuit.cz(q, (q + 1) % n)
        elif token == "cx_ring":
            for q in qubits:
                circuit.cx(q, (q + 1) % n)
        else:
            raise ValueError(
                f"unknown mixer token {token!r}; valid tokens: {MIXER_TOKENS}"
            )
    return circuit


def mixer_layer(num_qubits: int, tokens: Sequence[str], beta: ParameterValue) -> QuantumCircuit:
    """The mixer as a standalone circuit."""
    check_positive(num_qubits, "num_qubits")
    return append_mixer_layer(
        QuantumCircuit(num_qubits, name=f"mixer[{mixer_label(tokens)}]"), tokens, beta
    )


def baseline_mixer(num_qubits: int, beta: ParameterValue) -> QuantumCircuit:
    """The default transverse-field mixer: ``RX(2 beta)`` on every qubit."""
    return mixer_layer(num_qubits, ("rx",), beta)


def mixer_label(tokens: Sequence[str]) -> str:
    """Display label matching the paper's figures, e.g. ``('rx', 'ry')``."""
    return "(" + ", ".join(f"'{t}'" for t in tokens) + ")"
