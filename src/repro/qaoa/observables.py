"""General Pauli-sum observables.

The paper frames QArchSearch as finding "the best model given a task and
input quantum state" — max-cut is only the driver application. This module
supplies the observable abstraction that lets the same search loop target
other Hamiltonians: weighted sums of Pauli strings, with exact expectation
values on the state-vector engine and, for Z-only terms, on the
tensor-network engine through the existing diagonal machinery.

Includes the two standard model Hamiltonians used by the VQE-style example
and tests: the transverse-field Ising model (TFIM) and general Ising/QUBO
cost Hamiltonians.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.graphs.generators import Graph
from repro.simulators.expectation import bit_table, pauli_expectation
from repro.utils.validation import check_positive

__all__ = [
    "PauliTerm",
    "PauliSum",
    "ising_hamiltonian",
    "maxcut_hamiltonian",
    "tfim_hamiltonian",
    "qubo_to_ising",
]


@dataclass(frozen=True)
class PauliTerm:
    """``coefficient * P`` where ``P`` is a Pauli string like ``"XIZ"``.

    Character ``j`` acts on qubit ``j`` (little-endian, as everywhere in the
    package).
    """

    pauli: str
    coefficient: float

    def __post_init__(self) -> None:
        if not self.pauli or any(c not in "IXYZ" for c in self.pauli.upper()):
            raise ValueError(f"invalid Pauli string {self.pauli!r}")
        object.__setattr__(self, "pauli", self.pauli.upper())

    @property
    def num_qubits(self) -> int:
        return len(self.pauli)

    @property
    def is_diagonal(self) -> bool:
        return all(c in "IZ" for c in self.pauli)

    def __repr__(self) -> str:
        return f"{self.coefficient:+g}*{self.pauli}"


class PauliSum:
    """A Hermitian observable ``sum_k c_k P_k`` on a fixed register width.

    Terms with identical strings are merged; zero terms dropped.
    """

    def __init__(
        self, terms: Iterable[PauliTerm], *, num_qubits: int | None = None
    ) -> None:
        merged: dict[str, float] = {}
        width = num_qubits
        for term in terms:
            if width is None:
                width = term.num_qubits
            elif term.num_qubits != width:
                raise ValueError(
                    f"mixed term widths: {term.num_qubits} vs {width}"
                )
            merged[term.pauli] = merged.get(term.pauli, 0.0) + term.coefficient
        if width is None:
            raise ValueError(
                "PauliSum needs at least one term or an explicit num_qubits"
            )
        self.num_qubits = width
        # terms cancelling to zero are dropped; an empty PauliSum is the
        # zero observable on `num_qubits` qubits
        self.terms: tuple[PauliTerm, ...] = tuple(
            PauliTerm(p, c) for p, c in sorted(merged.items()) if c != 0.0
        )

    # -- queries ------------------------------------------------------------

    @property
    def is_diagonal(self) -> bool:
        return all(t.is_diagonal for t in self.terms)

    def expectation(self, state: np.ndarray) -> float:
        """``<psi| H |psi>`` on the dense engine (any Pauli content)."""
        if self.is_diagonal:
            probs = np.abs(state) ** 2
            return float(probs @ self.diagonal())
        return sum(
            t.coefficient * pauli_expectation(state, t.pauli) for t in self.terms
        )

    def diagonal(self) -> np.ndarray:
        """The ``2^n`` diagonal of a Z/I-only observable (raises otherwise).

        This is the representation the tensor-network engine consumes.
        """
        if not self.is_diagonal:
            raise ValueError("observable has off-diagonal (X/Y) terms")
        bits = bit_table(self.num_qubits)
        z = 1.0 - 2.0 * bits.astype(np.float64)  # (2^n, n)
        out = np.zeros(2**self.num_qubits)
        for term in self.terms:
            factor = np.ones(2**self.num_qubits)
            for qubit, label in enumerate(term.pauli):
                if label == "Z":
                    factor = factor * z[:, qubit]
            out += term.coefficient * factor
        return out

    def ground_energy(self) -> float:
        """Exact minimum eigenvalue (diagonal: vector min; general: dense
        eigensolve, intended for small n)."""
        if self.is_diagonal:
            return float(self.diagonal().min())
        return float(np.linalg.eigvalsh(self.matrix()).min())

    def matrix(self) -> np.ndarray:
        """Dense ``2^n x 2^n`` matrix (testing / small n)."""
        paulis = {
            "I": np.eye(2, dtype=complex),
            "X": np.array([[0, 1], [1, 0]], dtype=complex),
            "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
            "Z": np.array([[1, 0], [0, -1]], dtype=complex),
        }
        total = np.zeros((2**self.num_qubits,) * 2, dtype=complex)
        for term in self.terms:
            op = np.eye(1, dtype=complex)
            # qubit 0 is the low bit: build kron from high qubit down
            for label in reversed(term.pauli):
                op = np.kron(op, paulis[label])
            total += term.coefficient * op
        return total

    def __len__(self) -> int:
        return len(self.terms)

    def __repr__(self) -> str:
        inner = " ".join(repr(t) for t in self.terms[:4])
        more = f" ... ({len(self.terms)} terms)" if len(self.terms) > 4 else ""
        return f"PauliSum[{inner}{more}]"


def _z_string(num_qubits: int, qubits: Sequence[int]) -> str:
    chars = ["I"] * num_qubits
    for q in qubits:
        chars[q] = "Z"
    return "".join(chars)


def ising_hamiltonian(
    num_qubits: int,
    couplings: Mapping[tuple[int, int], float],
    fields: Mapping[int, float] | None = None,
    offset: float = 0.0,
) -> PauliSum:
    """``H = sum J_ij Z_i Z_j + sum h_i Z_i + offset`` (offset via I...I)."""
    check_positive(num_qubits, "num_qubits")
    terms = [
        PauliTerm(_z_string(num_qubits, [i, j]), float(v))
        for (i, j), v in couplings.items()
    ]
    for i, h in (fields or {}).items():
        terms.append(PauliTerm(_z_string(num_qubits, [i]), float(h)))
    if offset:
        terms.append(PauliTerm("I" * num_qubits, float(offset)))
    return PauliSum(terms, num_qubits=num_qubits)


def maxcut_hamiltonian(graph: Graph) -> PauliSum:
    """Eq. (1) as a PauliSum: ``C = sum_e w_e (1 - Z_u Z_v) / 2``."""
    couplings = {
        (u, v): -w / 2.0 for (u, v), w in zip(graph.edges, graph.weights)
    }
    return ising_hamiltonian(
        graph.num_nodes, couplings, offset=graph.total_weight() / 2.0
    )


def tfim_hamiltonian(num_qubits: int, j: float = 1.0, h: float = 1.0) -> PauliSum:
    """Transverse-field Ising chain: ``-J sum Z_i Z_{i+1} - h sum X_i``.

    Open boundary. The standard non-diagonal benchmark Hamiltonian for
    VQE-style search (ground state is entangled for h ~ J).
    """
    check_positive(num_qubits, "num_qubits")
    terms = [
        PauliTerm(_z_string(num_qubits, [i, i + 1]), -float(j))
        for i in range(num_qubits - 1)
    ]
    for i in range(num_qubits):
        chars = ["I"] * num_qubits
        chars[i] = "X"
        terms.append(PauliTerm("".join(chars), -float(h)))
    return PauliSum(terms)


def qubo_to_ising(q_matrix: np.ndarray) -> PauliSum:
    """Convert a QUBO ``min x^T Q x`` (x in {0,1}^n) to an Ising PauliSum.

    Uses ``x_i = (1 - z_i) / 2``; the returned Hamiltonian's expectation on
    a computational-basis state equals the QUBO objective of the
    corresponding bitstring, constant included.
    """
    q_matrix = np.asarray(q_matrix, dtype=float)
    if q_matrix.ndim != 2 or q_matrix.shape[0] != q_matrix.shape[1]:
        raise ValueError(f"QUBO matrix must be square, got {q_matrix.shape}")
    n = q_matrix.shape[0]
    sym = (q_matrix + q_matrix.T) / 2.0
    couplings: dict[tuple[int, int], float] = {}
    fields: dict[int, float] = {}
    offset = 0.0
    for i in range(n):
        offset += sym[i, i] / 2.0
        fields[i] = fields.get(i, 0.0) - sym[i, i] / 2.0
        for j2 in range(i + 1, n):
            w = 2.0 * sym[i, j2]  # Q_ij + Q_ji
            if w == 0.0:
                continue
            offset += w / 4.0
            fields[i] = fields.get(i, 0.0) - w / 4.0
            fields[j2] = fields.get(j2, 0.0) - w / 4.0
            couplings[(i, j2)] = couplings.get((i, j2), 0.0) + w / 4.0
    fields = {i: h for i, h in fields.items() if h != 0.0}
    return ising_hamiltonian(n, couplings, fields, offset)
