"""VQE-style ansatz search — the "any task" generalization.

The paper positions QArchSearch as task-agnostic ("the best model given a
task and input quantum state", §1; VQE via Ostaszewski et al. in §5). This
module turns the same searched token sequences into *hardware-efficient
layered ansätze* for ground-state problems over arbitrary
:class:`~repro.qaoa.observables.PauliSum` Hamiltonians:

* each layer applies the token sequence to every qubit, parameterized
  tokens sharing one fresh angle per (token, layer) — the paper's
  weight-sharing, one level finer than QAOA's single beta;
* an optional CX entangling chain closes each layer (without it, product
  ansätze cannot reach entangled ground states such as TFIM's).

:func:`search_vqe_ansatz` reuses the Algorithm-1 skeleton: enumerate or
sample candidates, train each with COBYLA, keep the lowest energy.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.optimizers import Cobyla, Optimizer
from repro.qaoa.mixers import FIXED_TOKENS, PARAMETERIZED_TOKENS
from repro.qaoa.observables import PauliSum
from repro.simulators.statevector import simulate
from repro.utils.rng import as_rng, stable_seed
from repro.utils.validation import check_positive

__all__ = ["VQEAnsatz", "build_vqe_ansatz", "VQEEnergy", "train_vqe", "search_vqe_ansatz"]


@dataclass(frozen=True)
class VQEAnsatz:
    """A layered ansatz and its free parameters (one per token-layer)."""

    circuit: QuantumCircuit
    parameters: tuple[Parameter, ...]
    tokens: tuple[str, ...]
    layers: int

    @property
    def num_parameters(self) -> int:
        return len(self.parameters)

    def bind(self, values: Sequence[float]) -> QuantumCircuit:
        if len(values) != self.num_parameters:
            raise ValueError(
                f"expected {self.num_parameters} values, got {len(values)}"
            )
        return self.circuit.bind_parameters(dict(zip(self.parameters, values)))


def build_vqe_ansatz(
    num_qubits: int,
    tokens: Sequence[str],
    layers: int,
    *,
    entangle: bool = True,
) -> VQEAnsatz:
    """Layered hardware-efficient ansatz from a searched token sequence.

    Layer ``l``: for each token, apply it to every qubit (parameterized
    tokens get angle ``theta_{token_index, l}``, shared across qubits); then
    a CX chain ``0->1->...->n-1`` if ``entangle``.
    """
    check_positive(num_qubits, "num_qubits")
    check_positive(layers, "layers")
    tokens = tuple(tokens)
    if not tokens:
        raise ValueError("ansatz needs at least one token")
    circuit = QuantumCircuit(num_qubits, name=f"vqe_{'-'.join(tokens)}_x{layers}")
    params: list[Parameter] = []
    for layer in range(layers):
        for t_index, token in enumerate(tokens):
            if token in PARAMETERIZED_TOKENS:
                theta = Parameter(f"theta_{layer}_{t_index}")
                params.append(theta)
                for q in range(num_qubits):
                    circuit.append_named(token, [q], theta)
            elif token in FIXED_TOKENS:
                for q in range(num_qubits):
                    circuit.append_named(token, [q])
            else:
                raise ValueError(
                    f"token {token!r} not usable in a VQE layer "
                    f"(use {PARAMETERIZED_TOKENS + FIXED_TOKENS})"
                )
        if entangle:
            for q in range(num_qubits - 1):
                circuit.cx(q, q + 1)
    return VQEAnsatz(circuit, tuple(params), tokens, layers)


class VQEEnergy:
    """``<psi(x)| H |psi(x)>`` from |0...0> on the dense engine."""

    def __init__(self, ansatz: VQEAnsatz, hamiltonian: PauliSum) -> None:
        if hamiltonian.num_qubits != ansatz.circuit.num_qubits:
            raise ValueError(
                f"Hamiltonian width {hamiltonian.num_qubits} != "
                f"circuit width {ansatz.circuit.num_qubits}"
            )
        self.ansatz = ansatz
        self.hamiltonian = hamiltonian
        self.num_evaluations = 0

    def value(self, x: Sequence[float]) -> float:
        self.num_evaluations += 1
        state = simulate(self.ansatz.bind(list(x)))
        return self.hamiltonian.expectation(state)

    __call__ = value


@dataclass
class VQEResult:
    """One trained candidate ansatz."""

    tokens: tuple[str, ...]
    layers: int
    energy: float
    params: np.ndarray
    nfev: int
    #: energy error relative to the exact ground state
    error: float


def train_vqe(
    hamiltonian: PauliSum,
    tokens: Sequence[str],
    layers: int,
    *,
    optimizer: Optimizer | None = None,
    restarts: int = 2,
    seed: int = 0,
    entangle: bool = True,
) -> VQEResult:
    """Train one candidate ansatz; energy is minimized (ground-state VQE)."""
    ansatz = build_vqe_ansatz(hamiltonian.num_qubits, tokens, layers, entangle=entangle)
    energy = VQEEnergy(ansatz, hamiltonian)
    optimizer = optimizer or Cobyla(maxiter=200)
    best_fun, best_x, nfev = np.inf, np.zeros(ansatz.num_parameters), 0
    for restart in range(max(1, restarts)):
        rng = as_rng(stable_seed(seed, "vqe", restart, layers, *tokens))
        if ansatz.num_parameters:
            x0 = rng.uniform(-0.5, 0.5, ansatz.num_parameters)
        else:
            x0 = np.zeros(0)
        if ansatz.num_parameters == 0:
            value = energy.value(x0)
            if value < best_fun:
                best_fun, best_x = value, x0
            nfev += 1
            continue
        result = optimizer.minimize(energy.value, x0)
        nfev += result.nfev
        if result.fun < best_fun:
            best_fun, best_x = result.fun, result.x
    exact = hamiltonian.ground_energy()
    return VQEResult(
        tokens=tuple(tokens),
        layers=layers,
        energy=float(best_fun),
        params=np.asarray(best_x),
        nfev=nfev,
        error=float(best_fun - exact),
    )


def search_vqe_ansatz(
    hamiltonian: PauliSum,
    candidates: Sequence[Sequence[str]],
    layers: int,
    *,
    optimizer_steps: int = 120,
    restarts: int = 2,
    seed: int = 0,
) -> list[VQEResult]:
    """Score every candidate token sequence; returns results sorted by
    energy ascending (best first) — Algorithm 1's inner loop for VQE."""
    results = [
        train_vqe(
            hamiltonian,
            tokens,
            layers,
            optimizer=Cobyla(maxiter=optimizer_steps),
            restarts=restarts,
            seed=seed,
        )
        for tokens in candidates
    ]
    return sorted(results, key=lambda r: r.energy)
