"""Tensor-network quantum circuit simulator (the QTensor substitute).

Pipeline: circuit → :class:`TensorNetwork` (diagonal-gate-aware) →
elimination order (:mod:`~repro.qtensor.ordering`) → bucket elimination
(:mod:`~repro.qtensor.contraction`) on a pluggable backend
(:mod:`~repro.qtensor.backends`), with reverse-lightcone pruning for local
expectations (:mod:`~repro.qtensor.lightcone`). The
:class:`QTensorSimulator` façade ties it together.
"""

from repro.qtensor.backends import (
    ContractionBackend,
    DeviceModel,
    NumpyBackend,
    SimulatedGPUBackend,
    get_backend,
)
from repro.qtensor.contraction import (
    bucket_elimination,
    choose_slice_vars,
    contract_network,
    contract_sliced,
)
from repro.qtensor.lightcone import lightcone_circuit, lightcone_qubits
from repro.qtensor.network import TensorNetwork, interaction_graph, product_state_vectors
from repro.qtensor.ordering import (
    EliminationOrder,
    evaluate_order,
    greedy_random_restarts,
    min_degree_order,
    min_fill_order,
    order_for_tensors,
    random_order,
)
from repro.qtensor.simulator import CUT_DIAGONAL, ZZ_DIAGONAL, QTensorSimulator
from repro.qtensor.tensor import Tensor
from repro.qtensor.variables import Variable, VariableFactory

__all__ = [
    "QTensorSimulator",
    "TensorNetwork",
    "Tensor",
    "Variable",
    "VariableFactory",
    "interaction_graph",
    "product_state_vectors",
    "bucket_elimination",
    "contract_network",
    "contract_sliced",
    "choose_slice_vars",
    "lightcone_circuit",
    "lightcone_qubits",
    "EliminationOrder",
    "min_degree_order",
    "min_fill_order",
    "random_order",
    "greedy_random_restarts",
    "order_for_tensors",
    "evaluate_order",
    "ContractionBackend",
    "NumpyBackend",
    "SimulatedGPUBackend",
    "DeviceModel",
    "get_backend",
    "CUT_DIAGONAL",
    "ZZ_DIAGONAL",
]
