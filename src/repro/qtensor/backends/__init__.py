"""Pluggable tensor-contraction backends (CPU NumPy, simulated GPU)."""

from repro.qtensor.backends.base import ContractionBackend
from repro.qtensor.backends.mock_gpu import DeviceModel, SimulatedGPUBackend
from repro.qtensor.backends.numpy_backend import NumpyBackend

__all__ = ["ContractionBackend", "NumpyBackend", "SimulatedGPUBackend", "DeviceModel"]


def get_backend(name: str) -> ContractionBackend:
    """Backend factory: ``"numpy"`` or ``"gpu"`` (simulated).

    This is the selection point the paper's future-work section describes —
    swapping in a real device library would register it here.
    """
    if name == "numpy":
        return NumpyBackend()
    if name in ("gpu", "simulated_gpu"):
        return SimulatedGPUBackend()
    raise ValueError(f"unknown backend {name!r}; options: numpy, gpu")
