"""Contraction backend protocol.

A backend owns the two numeric kernels of bucket elimination:

* :meth:`ContractionBackend.contract_bucket` — multiply all tensors in a
  bucket (einsum over the union of their indices) and sum out one variable;
* :meth:`ContractionBackend.combine` — multiply leftover tensors into the
  final result over the requested open-variable order.

Everything above the backend (bucketing, ordering, slicing) is pure index
bookkeeping, so swapping NumPy for a device library — the GPU integration
the paper's future-work section describes — touches only this layer.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence

import numpy as np

from repro.qtensor.tensor import Tensor
from repro.qtensor.variables import Variable

__all__ = ["ContractionBackend", "einsum_bucket", "einsum_combine"]

#: einsum accepts at most 32 operands; we chunk well below that.
_MAX_OPERANDS = 16


def _einsum_subscripts(
    operands: Sequence[Tensor], out_vars: Sequence[Variable]
) -> list:
    """Build the integer-subscript argument list for ``np.einsum``."""
    local: dict[Variable, int] = {}
    args: list = []
    for tensor in operands:
        labels = []
        for v in tensor.indices:
            labels.append(local.setdefault(v, len(local)))
        args.extend([tensor.data, labels])
    args.append([local[v] for v in out_vars])
    return args


def einsum_bucket(
    einsum_fn, operands: Sequence[Tensor], sum_var: Variable, name: str
) -> Tensor:
    """Contract a bucket with the given einsum implementation.

    Output indices are the union of the operands' indices minus ``sum_var``,
    ordered by variable id (deterministic across runs and processes). Wide
    buckets are folded in chunks to respect einsum's operand limit.
    """
    while len(operands) > _MAX_OPERANDS:
        chunk, operands = operands[:_MAX_OPERANDS], operands[_MAX_OPERANDS:]
        chunk_out = sorted({v for t in chunk for v in t.indices})
        merged = einsum_fn(*_einsum_subscripts(chunk, chunk_out))
        operands = [Tensor(f"{name}_chunk", merged, chunk_out)] + list(operands)
    out_vars = sorted({v for t in operands for v in t.indices} - {sum_var})
    data = einsum_fn(*_einsum_subscripts(operands, out_vars))
    return Tensor(name, data, out_vars)


def einsum_combine(
    einsum_fn, operands: Sequence[Tensor], out_vars: Sequence[Variable], name: str
) -> Tensor:
    """Multiply leftover tensors into a tensor over exactly ``out_vars``."""
    if not operands:
        return Tensor(name, np.asarray(1.0 + 0.0j), [])
    while len(operands) > _MAX_OPERANDS:
        chunk, operands = operands[:_MAX_OPERANDS], operands[_MAX_OPERANDS:]
        chunk_out = sorted({v for t in chunk for v in t.indices})
        merged = einsum_fn(*_einsum_subscripts(chunk, chunk_out))
        operands = [Tensor(f"{name}_chunk", merged, chunk_out)] + list(operands)
    data = einsum_fn(*_einsum_subscripts(operands, list(out_vars)))
    return Tensor(name, data, list(out_vars))


class ContractionBackend(abc.ABC):
    """Abstract contraction engine."""

    name: str = "abstract"

    @abc.abstractmethod
    def contract_bucket(self, operands: Sequence[Tensor], sum_var: Variable) -> Tensor:
        """Product of ``operands`` summed over ``sum_var``."""

    @abc.abstractmethod
    def combine(self, operands: Sequence[Tensor], out_vars: Sequence[Variable]) -> Tensor:
        """Product of ``operands`` arranged over ``out_vars``."""

    def reset_stats(self) -> None:  # pragma: no cover - default no-op
        """Clear any accumulated instrumentation."""

    def stats(self) -> dict[str, float]:  # pragma: no cover - default no-op
        """Backend-specific counters (flops, bytes moved, device time)."""
        return {}
