"""Simulated-GPU contraction backend.

The paper's future-work section promises tight QTensor/GPU integration so a
user can "seamlessly select a GPU backend whenever possible". This box has
no CUDA device, so we *simulate* one (per the substitution policy in
DESIGN.md): computation runs on NumPy, while the backend meters what the
same contraction would cost on an accelerator under an explicit analytic
model — host↔device transfers at PCIe bandwidth, a fixed kernel-launch
latency, and einsum FLOPs at a device rate.

The point is to exercise the backend-selection code path and to let
``bench_ablation_backends`` show the crossover where offloading pays:
small QAOA buckets are launch-latency bound (GPU loses), wide buckets are
FLOP bound (GPU wins). The numbers are a model, not a measurement, and the
defaults are order-of-magnitude A100-class values.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.qtensor.backends.base import ContractionBackend
from repro.qtensor.backends.numpy_backend import NumpyBackend
from repro.qtensor.tensor import Tensor
from repro.qtensor.variables import Variable

__all__ = ["DeviceModel", "SimulatedGPUBackend"]

_COMPLEX_BYTES = 16  # complex128


@dataclass(frozen=True)
class DeviceModel:
    """Analytic accelerator cost model."""

    #: host<->device bandwidth, bytes/second (PCIe 4.0 x16 ~ 2.5e10)
    transfer_bandwidth: float = 2.5e10
    #: per-einsum-call kernel launch + planning latency, seconds
    kernel_latency: float = 2.0e-5
    #: sustained complex FLOP rate, operations/second
    flop_rate: float = 5.0e12

    def transfer_seconds(self, num_bytes: int) -> float:
        return num_bytes / self.transfer_bandwidth

    def compute_seconds(self, flops: float) -> float:
        return self.kernel_latency + flops / self.flop_rate


class SimulatedGPUBackend(ContractionBackend):
    """NumPy results + device-time accounting.

    Tensors created by this backend are considered device-resident: an
    operand is charged a host→device transfer the first time it is seen,
    and the final :meth:`combine` result is charged a device→host copy.
    """

    name = "simulated_gpu"

    def __init__(self, model: DeviceModel | None = None) -> None:
        self.model = model or DeviceModel()
        self._host = NumpyBackend()
        self._on_device: set[int] = set()
        self.device_seconds = 0.0
        self.bytes_transferred = 0
        self.flops = 0.0

    # -- accounting helpers ---------------------------------------------------

    def _charge_upload(self, operands: Sequence[Tensor]) -> None:
        for t in operands:
            if id(t) not in self._on_device:
                nbytes = t.data.size * _COMPLEX_BYTES
                self.bytes_transferred += nbytes
                self.device_seconds += self.model.transfer_seconds(nbytes)
                self._on_device.add(id(t))

    def _charge_einsum(self, operands: Sequence[Tensor], result: Tensor) -> None:
        # FLOP model: every output element sums over the eliminated index
        # space; bounded by prod of all distinct index sizes in the bucket.
        distinct = {v for t in operands for v in t.indices}
        total_space = float(np.prod([v.size for v in distinct], dtype=float)) if distinct else 1.0
        flops = total_space * max(len(operands) - 1, 1)
        self.flops += flops
        self.device_seconds += self.model.compute_seconds(flops)
        self._on_device.add(id(result))

    # -- backend protocol -------------------------------------------------------

    def contract_bucket(self, operands: Sequence[Tensor], sum_var: Variable) -> Tensor:
        self._charge_upload(operands)
        result = self._host.contract_bucket(operands, sum_var)
        self._charge_einsum(operands, result)
        return result

    def combine(self, operands: Sequence[Tensor], out_vars: Sequence[Variable]) -> Tensor:
        self._charge_upload(operands)
        result = self._host.combine(operands, out_vars)
        self._charge_einsum(operands, result)
        nbytes = result.data.size * _COMPLEX_BYTES
        self.bytes_transferred += nbytes
        self.device_seconds += self.model.transfer_seconds(nbytes)
        return result

    def reset_stats(self) -> None:
        self._host.reset_stats()
        self._on_device.clear()
        self.device_seconds = 0.0
        self.bytes_transferred = 0
        self.flops = 0.0

    def stats(self) -> dict[str, float]:
        out = dict(self._host.stats())
        out.update(
            device_seconds=self.device_seconds,
            bytes_transferred=float(self.bytes_transferred),
            flops=self.flops,
        )
        return out
