"""NumPy contraction backend — the engine the paper used on CPUs.

"In this work, we used NumPy for tensor contraction on CPUs." (§2.2)

Instrumented with simple operation counters so the ablation benches can
compare plans without re-timing.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.qtensor.backends.base import ContractionBackend, einsum_bucket, einsum_combine
from repro.qtensor.tensor import Tensor
from repro.qtensor.variables import Variable

__all__ = ["NumpyBackend"]


class NumpyBackend(ContractionBackend):
    """Bucket contraction via ``np.einsum`` on host memory."""

    name = "numpy"

    def __init__(self, *, optimize: bool = True) -> None:
        #: let einsum pick pairwise paths inside wide buckets
        self.optimize = optimize
        self._buckets = 0
        self._max_out_rank = 0
        self._elements_written = 0

    def _einsum(self, *args):
        return np.einsum(*args, optimize=self.optimize)

    def contract_bucket(self, operands: Sequence[Tensor], sum_var: Variable) -> Tensor:
        result = einsum_bucket(self._einsum, operands, sum_var, f"B{self._buckets}")
        self._buckets += 1
        self._max_out_rank = max(self._max_out_rank, result.rank)
        self._elements_written += result.data.size
        return result

    def combine(self, operands: Sequence[Tensor], out_vars: Sequence[Variable]) -> Tensor:
        result = einsum_combine(self._einsum, operands, out_vars, "final")
        self._elements_written += result.data.size
        return result

    def reset_stats(self) -> None:
        self._buckets = 0
        self._max_out_rank = 0
        self._elements_written = 0

    def stats(self) -> dict[str, float]:
        return {
            "buckets": float(self._buckets),
            "max_out_rank": float(self._max_out_rank),
            "elements_written": float(self._elements_written),
        }
