"""Bucket-elimination contraction and variable slicing.

Bucket elimination processes variables along an elimination order: every
tensor lives in the bucket of its earliest-ordered variable; eliminating a
variable multiplies its bucket together, sums the variable out, and files
the result into a later bucket. Cost is ``2^width`` in the order's
contraction width — the quantity :mod:`repro.qtensor.ordering` minimizes.

:func:`contract_sliced` implements QTensor's step-dependent parallelism:
fixing ``s`` slice variables splits the contraction into ``2^s``
independent summands, each a smaller network — the second level of the
paper's two-level parallelization scheme (the first level, across candidate
circuits, lives in :mod:`repro.parallel`).
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence

import numpy as np

from repro.qtensor.backends.base import ContractionBackend
from repro.qtensor.backends.numpy_backend import NumpyBackend
from repro.qtensor.network import TensorNetwork, interaction_graph
from repro.qtensor.ordering import EliminationOrder, order_for_tensors
from repro.qtensor.tensor import Tensor
from repro.qtensor.variables import Variable

__all__ = [
    "bucket_elimination",
    "contract_network",
    "contract_sliced",
    "choose_slice_vars",
]


def bucket_elimination(
    tensors: Sequence[Tensor],
    order: Sequence[Variable],
    open_vars: Sequence[Variable] = (),
    backend: ContractionBackend | None = None,
) -> Tensor:
    """Contract ``tensors``, eliminating ``order``, keeping ``open_vars``.

    Returns a tensor over exactly ``open_vars`` (scalar when empty). Raises
    if a non-open variable is missing from the order — silently keeping it
    would return a wrong-shaped result.
    """
    backend = backend or NumpyBackend()
    position: dict[Variable, int] = {v: i for i, v in enumerate(order)}
    open_set = set(open_vars)
    if open_set & set(position):
        overlap = sorted(v.name for v in open_set & set(position))
        raise ValueError(f"open variables {overlap} also appear in the order")
    all_vars = {v for t in tensors for v in t.indices}
    unaccounted = all_vars - set(position) - open_set
    if unaccounted:
        names = sorted(v.name for v in unaccounted)
        raise ValueError(f"variables {names} neither ordered nor open")

    buckets: list[list[Tensor]] = [[] for _ in order]
    leftovers: list[Tensor] = []

    def file_tensor(tensor: Tensor) -> None:
        eliminable = [position[v] for v in tensor.indices if v in position]
        if eliminable:
            buckets[min(eliminable)].append(tensor)
        else:
            leftovers.append(tensor)

    for t in tensors:
        file_tensor(t)

    for i, var in enumerate(order):
        bucket = buckets[i]
        if not bucket:
            continue
        result = backend.contract_bucket(bucket, var)
        file_tensor(result)

    return backend.combine(leftovers, list(open_vars))


def contract_network(
    network: TensorNetwork,
    *,
    backend: ContractionBackend | None = None,
    order: EliminationOrder | None = None,
    method: str = "min_fill",
    n_restarts: int = 1,
    seed=None,
) -> np.ndarray:
    """Order (if not given) + contract; returns the raw ndarray result.

    For a closed network the result is a 0-d complex array; for an open one
    the axes follow ``network.open_vars``.
    """
    if order is None:
        order = order_for_tensors(
            network.tensors,
            exclude=network.open_vars,
            method=method,
            n_restarts=n_restarts,
            seed=seed,
        )
    result = bucket_elimination(network.tensors, order.order, network.open_vars, backend)
    return result.data


def choose_slice_vars(
    tensors: Sequence[Tensor],
    num_vars: int,
    *,
    exclude: Sequence[Variable] = (),
) -> list[Variable]:
    """Pick slice variables by highest interaction-graph degree.

    High-degree variables appear in many tensors, so fixing them shrinks the
    most intermediates — the standard slicing heuristic.
    """
    graph = interaction_graph(tensors)
    excluded = set(exclude)
    candidates = sorted(
        (v for v in graph if v not in excluded),
        key=lambda v: (-len(graph[v]), v.id),
    )
    return candidates[:num_vars]


def contract_sliced(
    network: TensorNetwork,
    slice_vars: Sequence[Variable],
    *,
    backend_factory=NumpyBackend,
    method: str = "min_fill",
    map_fn=map,
) -> complex:
    """Contract a *closed* network as a sum over slice-variable assignments.

    ``map_fn`` lets callers inject a parallel map (e.g.
    ``multiprocessing.Pool.map`` or an executor from
    :mod:`repro.parallel.executor`) — each of the ``2^s`` slices is an
    independent contraction.
    """
    if network.open_vars:
        raise ValueError("sliced contraction currently supports closed networks only")
    slice_vars = list(slice_vars)
    assignments = list(itertools.product((0, 1), repeat=len(slice_vars)))
    jobs = [(network, slice_vars, values, method) for values in assignments]
    partials = list(map_fn(_contract_slice, jobs))
    # backend_factory kept for signature compatibility with executor kwargs
    del backend_factory
    return complex(sum(partials))


def _contract_slice(job) -> complex:
    """One slice: fix variables, re-order, contract. Top-level function so
    it pickles for multiprocessing maps."""
    network, slice_vars, values, method = job
    sliced = []
    for tensor in network.tensors:
        for var, value in zip(slice_vars, values):
            tensor = tensor.fix_variable(var, value)
        sliced.append(tensor)
    order = order_for_tensors(sliced, method=method)
    result = bucket_elimination(sliced, order.order, (), NumpyBackend())
    return result.scalar()
