"""Reverse-lightcone circuit pruning.

For an expectation ``<psi| O |psi>`` with ``psi = U|init>``, any gate of
``U`` outside the reverse lightcone of the observable's qubits cancels
against its adjoint (``G^+ G = I``) and can be dropped before building the
tensor network. For local observables on shallow circuits — exactly QAOA's
per-edge ``Z_u Z_v`` terms — this shrinks the network from the whole
circuit to a neighbourhood of the edge, and is the reason tensor-network
QAOA energy evaluation scales to huge graphs.

With ``diag_aware=True`` we additionally drop *diagonal* gates while the
accumulated operator is still diagonal on every qubit they touch
(``G^+ D G = D G^+ G = D`` when ``[G, D] = 0``) — the diagonal-gate
optimization of Lykov & Alexeev 2021. For max-cut QAOA this removes the
final cost layer entirely.

Correctness is only claimed for diagonal (computational-basis) observables,
which is all the package evaluates; the conservative per-qubit state
machine below never drops a gate the stronger analysis would keep.
"""

from __future__ import annotations

from collections.abc import Iterable
from enum import Enum

from repro.circuits.circuit import QuantumCircuit
from repro.utils.validation import check_qubit_index

__all__ = ["lightcone_circuit", "lightcone_qubits"]


class _WireState(Enum):
    """What the accumulated (conjugation-sandwich) operator looks like on a
    single qubit while walking the circuit backwards."""

    IDENTITY = 0  # operator acts trivially here
    DIAGONAL = 1  # operator is diagonal here (commutes with diagonal gates)
    GENERAL = 2  # anything


def lightcone_circuit(
    circuit: QuantumCircuit,
    observable_qubits: Iterable[int],
    *,
    diag_aware: bool = True,
) -> QuantumCircuit:
    """The subcircuit of gates that can influence ``<O>`` on the given qubits.

    Returns gates in their original order. The observable is assumed
    diagonal in the computational basis (Z-strings, the max-cut cost).
    """
    targets = sorted({check_qubit_index(q, circuit.num_qubits) for q in observable_qubits})
    state: list[_WireState] = [_WireState.IDENTITY] * circuit.num_qubits
    for q in targets:
        state[q] = _WireState.DIAGONAL
    keep_reversed = []
    for instr in reversed(circuit.instructions):
        qubits = instr.qubits
        wire_states = [state[q] for q in qubits]
        if all(s is _WireState.IDENTITY for s in wire_states):
            continue  # outside the cone: G^+ G = I
        if (
            diag_aware
            and instr.gate.is_diagonal
            and all(s is not _WireState.GENERAL for s in wire_states)
        ):
            continue  # diagonal gate commutes with a diagonal operator
        keep_reversed.append(instr)
        if diag_aware and instr.gate.is_diagonal:
            # Conjugating by a diagonal gate preserves per-qubit
            # diagonality: M block-diagonal in z_q stays block-diagonal in
            # z_q under G^+ M G when G is computational-basis diagonal. So
            # qubits that were identity/diagonal become (at most) diagonal,
            # which lets later diagonal gates on them still cancel.
            for q in qubits:
                if state[q] is not _WireState.GENERAL:
                    state[q] = _WireState.DIAGONAL
        else:
            for q in qubits:
                state[q] = _WireState.GENERAL
    out = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}_lightcone")
    for instr in reversed(keep_reversed):
        out.append(instr.gate, instr.qubits)
    return out


def lightcone_qubits(
    circuit: QuantumCircuit,
    observable_qubits: Iterable[int],
    *,
    diag_aware: bool = True,
) -> set[int]:
    """The qubits the pruned circuit actually touches (plus the observable's
    own qubits). Useful for reporting how local an energy term is."""
    cone = lightcone_circuit(circuit, observable_qubits, diag_aware=diag_aware)
    touched: set[int] = set(observable_qubits)
    for instr in cone.instructions:
        touched.update(instr.qubits)
    return touched
