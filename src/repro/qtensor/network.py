"""Circuit → tensor network conversion.

The QTensor construction (Lykov & Alexeev 2021): every qubit wire segment
is a :class:`Variable`; a gate becomes a tensor connecting its input and
output segments. The crucial optimization is the treatment of **diagonal
gates** — a gate diagonal in the computational basis (RZ, P, CZ, CP, RZZ,
...) does not mix its input and output wire, so it is stored as a rank-``m``
*diagonal* tensor attached to the current wire variables without creating
new ones. QAOA cost layers are entirely diagonal, which is why tensor
networks simulate QAOA so much more cheaply than generic circuits.

Axis conventions follow :mod:`repro.circuits.gates`: matrix index bit ``j``
corresponds to the gate's ``j``-th qubit, so reshaped gate axes are ordered
high-bit-first, ``(out_{m-1}..out_0, in_{m-1}..in_0)``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.qtensor.tensor import Tensor
from repro.qtensor.variables import Variable, VariableFactory

__all__ = ["TensorNetwork", "interaction_graph", "product_state_vectors"]

_SQ2 = 1.0 / math.sqrt(2.0)

#: named single-qubit product states accepted as ``initial_state``
_NAMED_STATES = {
    "0": np.array([1.0, 0.0], dtype=complex),
    "1": np.array([0.0, 1.0], dtype=complex),
    "+": np.array([_SQ2, _SQ2], dtype=complex),
    "-": np.array([_SQ2, -_SQ2], dtype=complex),
}


def product_state_vectors(
    spec: str | Sequence[np.ndarray], num_qubits: int
) -> list[np.ndarray]:
    """Resolve an initial-state spec into per-qubit 2-vectors.

    ``spec`` is either a named state applied to every qubit (``"0"``,
    ``"+"``, ...) or an explicit sequence of ``n`` single-qubit vectors.
    Tensor networks need *product* inputs; entangled initial states would
    require an MPS front-end, which none of the paper's workloads use.
    """
    if isinstance(spec, str):
        if spec not in _NAMED_STATES:
            raise ValueError(f"unknown initial state {spec!r}; options: {sorted(_NAMED_STATES)}")
        return [_NAMED_STATES[spec].copy() for _ in range(num_qubits)]
    vectors = [np.asarray(v, dtype=complex) for v in spec]
    if len(vectors) != num_qubits:
        raise ValueError(f"got {len(vectors)} qubit states for {num_qubits} qubits")
    for i, v in enumerate(vectors):
        if v.shape != (2,):
            raise ValueError(f"qubit state {i} has shape {v.shape}, expected (2,)")
    return vectors


@dataclass
class TensorNetwork:
    """A bag of tensors plus the variables that must stay open.

    ``open_vars`` are excluded from elimination; the contraction result is a
    tensor over them (a scalar when empty).
    """

    tensors: list[Tensor] = field(default_factory=list)
    open_vars: tuple[Variable, ...] = ()
    num_qubits: int = 0

    # -- construction -------------------------------------------------------

    @classmethod
    def from_circuit(
        cls,
        circuit: QuantumCircuit,
        *,
        bindings: Mapping[Parameter, float] | None = None,
        initial_state: str | Sequence[np.ndarray] = "0",
        output_bitstring: int | None = None,
    ) -> TensorNetwork:
        """Network for ``U|init>`` (open outputs) or ``<b|U|init>`` (scalar).

        ``output_bitstring`` is a basis index with qubit ``k`` at bit ``k``;
        when given, every output wire is capped by the corresponding basis
        vector and the contraction yields the amplitude ``<b|U|init>``.
        """
        builder = _NetworkBuilder(circuit.num_qubits)
        builder.add_input_state(product_state_vectors(initial_state, circuit.num_qubits))
        builder.add_circuit(circuit, bindings or {}, conjugate=False)
        if output_bitstring is None:
            open_vars = tuple(builder.current[q] for q in range(circuit.num_qubits))
            return cls(builder.tensors, open_vars, circuit.num_qubits)
        if not 0 <= output_bitstring < 2**circuit.num_qubits:
            raise ValueError(f"bitstring {output_bitstring} out of range")
        for q in range(circuit.num_qubits):
            bit = (output_bitstring >> q) & 1
            cap = np.zeros(2, dtype=complex)
            cap[bit] = 1.0
            builder.add_tensor(Tensor(f"out{q}", cap, [builder.current[q]]))
        return cls(builder.tensors, (), circuit.num_qubits)

    @classmethod
    def expectation(
        cls,
        circuit: QuantumCircuit,
        diagonal_terms: Sequence[tuple[Sequence[int], np.ndarray]],
        *,
        bindings: Mapping[Parameter, float] | None = None,
        initial_state: str | Sequence[np.ndarray] = "0",
    ) -> TensorNetwork:
        """Closed network for ``<init|U^+ (prod_k D_k) U|init>``.

        Each term is ``(qubits, diag)`` where ``diag`` has ``2^m`` entries in
        the usual bit convention (bit ``j`` of the index = ``qubits[j]``).
        Since the observable factors are diagonal, the forward and backward
        halves share their output-wire variables — the observable tensors
        simply sit on those shared wires. This is the construction QAOA
        energy evaluation uses with ``D = Z_u Z_v``.
        """
        n = circuit.num_qubits
        builder = _NetworkBuilder(n)
        vectors = product_state_vectors(initial_state, n)
        builder.add_input_state(vectors)
        builder.add_circuit(circuit, bindings or {}, conjugate=False)
        final = {q: builder.current[q] for q in range(n)}

        # Observable tensors sit on the shared output wires.
        for term_idx, (qubits, diag) in enumerate(diagonal_terms):
            qubits = list(qubits)
            diag = np.asarray(diag, dtype=complex)
            if diag.shape != (2 ** len(qubits),):
                raise ValueError(
                    f"diagonal term {term_idx} has {diag.shape[0]} entries "
                    f"for {len(qubits)} qubits"
                )
            data = diag.reshape((2,) * len(qubits))  # axes high-bit-first
            indices = [final[q] for q in reversed(qubits)]
            builder.add_tensor(Tensor(f"obs{term_idx}", data, indices))

        # Backward (conjugated) half, sharing the final wire variables.
        builder.add_circuit_reversed(circuit, bindings or {}, start=final)
        for q in range(n):
            builder.add_tensor(
                Tensor(f"in{q}*", vectors[q].conj(), [builder.current[q]])
            )
        return cls(builder.tensors, (), n)

    # -- queries ------------------------------------------------------------

    def all_vars(self) -> set[Variable]:
        out: set[Variable] = set()
        for t in self.tensors:
            out.update(t.indices)
        return out

    def closed(self) -> bool:
        return not self.open_vars

    def __len__(self) -> int:
        return len(self.tensors)


def interaction_graph(tensors: Iterable[Tensor]) -> dict[Variable, set[Variable]]:
    """Adjacency over variables: two variables are adjacent iff they share a
    tensor. This is the graph whose tree-width controls contraction cost
    (QTensor's "line graph" of the circuit)."""
    adj: dict[Variable, set[Variable]] = {}
    for tensor in tensors:
        for v in tensor.indices:
            adj.setdefault(v, set())
        for i, u in enumerate(tensor.indices):
            for w in tensor.indices[i + 1 :]:
                adj[u].add(w)
                adj[w].add(u)
    return adj


class _NetworkBuilder:
    """Stateful helper tracking the current wire variable per qubit."""

    def __init__(self, num_qubits: int) -> None:
        self.num_qubits = num_qubits
        self.factory = VariableFactory()
        self.current: dict[int, Variable] = {
            q: self.factory.fresh(f"q{q}_0") for q in range(num_qubits)
        }
        self._wire_step = {q: 0 for q in range(num_qubits)}
        self.tensors: list[Tensor] = []

    def add_tensor(self, tensor: Tensor) -> None:
        self.tensors.append(tensor)

    def add_input_state(self, vectors: Sequence[np.ndarray]) -> None:
        for q, vec in enumerate(vectors):
            self.add_tensor(Tensor(f"in{q}", np.asarray(vec, dtype=complex), [self.current[q]]))

    def _advance(self, qubit: int) -> Variable:
        self._wire_step[qubit] += 1
        var = self.factory.fresh(f"q{qubit}_{self._wire_step[qubit]}")
        self.current[qubit] = var
        return var

    def _gate_tensor(self, instr, bindings, conjugate: bool) -> None:
        """Append one gate tensor.

        The conjugate (bra) network is the elementwise conjugate of the ket
        network with the *same* in/out index roles — tensor contraction has
        no row/column distinction, so ``conj(psi)`` is built from
        ``conj(G)`` tensors wired exactly like the forward ones, just along
        a separate wire chain. When walking backwards (``conjugate=True``),
        "current" holds the later-time segment, so the fresh variable is the
        gate's *input*.
        """
        gate = instr.gate
        qubits = instr.qubits
        m = len(qubits)
        matrix = gate.matrix(bindings)
        if conjugate:
            matrix = matrix.conj()
        if gate.is_diagonal:
            diag = np.ascontiguousarray(np.diagonal(matrix))
            data = diag.reshape((2,) * m)
            indices = [self.current[q] for q in reversed(qubits)]
            self.add_tensor(Tensor(gate.name, data, indices))
            return
        if conjugate:
            out_vars = [self.current[q] for q in qubits]
            in_vars = [self._advance(q) for q in qubits]
        else:
            in_vars = [self.current[q] for q in qubits]
            out_vars = [self._advance(q) for q in qubits]
        data = matrix.reshape((2,) * (2 * m))
        indices = list(reversed(out_vars)) + list(reversed(in_vars))
        self.add_tensor(Tensor(gate.name, data, indices))

    def add_circuit(self, circuit: QuantumCircuit, bindings, *, conjugate: bool) -> None:
        for instr in circuit.instructions:
            self._gate_tensor(instr, bindings, conjugate)

    def add_circuit_reversed(
        self, circuit: QuantumCircuit, bindings, *, start: dict[int, Variable]
    ) -> None:
        """Append the bra half ``conj(U|init>)`` walking the gates backwards.

        Starting from the shared output-wire variables ``start``, each gate
        contributes ``conj(G)`` wired with its output on the later-time
        segment and its input on a fresh earlier-time segment — the mirror
        image of the forward chain, sharing only the output wires.
        """
        self.current = dict(start)
        for instr in reversed(circuit.instructions):
            self._gate_tensor(instr, bindings, conjugate=True)
