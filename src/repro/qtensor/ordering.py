"""Contraction-order (elimination-order) optimization.

Bucket elimination's cost is exponential in the *contraction width* — the
largest clique formed while eliminating variables from the interaction
graph. QTensor's headline trick is spending effort on a good **perfect
elimination order (PEO)** before contracting; we implement the classic
greedy heuristics it builds on:

* **min-degree** ("min-vertex"): eliminate the variable with the fewest
  live neighbours;
* **min-fill**: eliminate the variable whose elimination adds the fewest
  new edges;
* **randomized greedy with restarts**: min-degree/min-fill with random tie
  breaking, keeping the best of ``n_restarts`` orders (a cheap stand-in for
  QTensor's portfolio of third-party optimizers).

All heuristics simulate elimination on an adjacency-set copy, so they also
report the exact width and the total contraction cost estimate
``sum 2^(clique size)`` for the order they return.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.qtensor.network import interaction_graph
from repro.qtensor.tensor import Tensor
from repro.qtensor.variables import Variable
from repro.utils.rng import as_rng

__all__ = [
    "EliminationOrder",
    "min_degree_order",
    "min_fill_order",
    "random_order",
    "greedy_random_restarts",
    "order_for_tensors",
    "evaluate_order",
]


@dataclass(frozen=True)
class EliminationOrder:
    """A variable order plus its simulated quality metrics."""

    order: tuple[Variable, ...]
    width: int  # max clique size encountered (incl. the eliminated var)
    log2_cost: float  # log2 of sum over steps of 2^(clique size)

    def __len__(self) -> int:
        return len(self.order)


def _copy_graph(graph: dict[Variable, set[Variable]]) -> dict[Variable, set[Variable]]:
    return {v: set(nbrs) for v, nbrs in graph.items()}


def _eliminate(adj: dict[Variable, set[Variable]], var: Variable) -> int:
    """Remove ``var``, connect its neighbourhood into a clique; return the
    clique size (neighbours + the variable itself)."""
    nbrs = adj.pop(var)
    for u in nbrs:
        adj[u].discard(var)
    nbr_list = list(nbrs)
    for i, u in enumerate(nbr_list):
        for w in nbr_list[i + 1 :]:
            adj[u].add(w)
            adj[w].add(u)
    return len(nbrs) + 1


def _log2_sum(costs: Iterable[int]) -> float:
    """``log2(sum 2^c)`` computed stably."""
    costs = list(costs)
    if not costs:
        return 0.0
    peak = max(costs)
    return peak + float(np.log2(sum(2.0 ** (c - peak) for c in costs)))


def evaluate_order(
    graph: dict[Variable, set[Variable]],
    order: Sequence[Variable],
) -> EliminationOrder:
    """Simulate elimination along ``order`` and measure width and cost."""
    adj = _copy_graph(graph)
    cliques = []
    for var in order:
        if var not in adj:
            raise ValueError(f"variable {var} not in graph (or repeated)")
        cliques.append(_eliminate(adj, var))
    return EliminationOrder(tuple(order), max(cliques, default=0), _log2_sum(cliques))


def _greedy(
    graph: dict[Variable, set[Variable]],
    exclude: set[Variable],
    score: Callable[[dict[Variable, set[Variable]], Variable], int],
    rng: np.random.Generator | None = None,
) -> EliminationOrder:
    adj = _copy_graph(graph)
    to_eliminate = [v for v in adj if v not in exclude]
    order: list[Variable] = []
    cliques: list[int] = []
    remaining = set(to_eliminate)
    while remaining:
        best_score = None
        best_vars: list[Variable] = []
        for v in remaining:
            s = score(adj, v)
            if best_score is None or s < best_score:
                best_score, best_vars = s, [v]
            elif s == best_score:
                best_vars.append(v)
        best_vars.sort()  # deterministic tie-break by variable id
        var = best_vars[0] if rng is None else best_vars[int(rng.integers(len(best_vars)))]
        remaining.discard(var)
        order.append(var)
        cliques.append(_eliminate(adj, var))
    return EliminationOrder(tuple(order), max(cliques, default=0), _log2_sum(cliques))


def _degree_score(adj: dict[Variable, set[Variable]], v: Variable) -> int:
    return len(adj[v])


def _fill_score(adj: dict[Variable, set[Variable]], v: Variable) -> int:
    nbrs = list(adj[v])
    fill = 0
    for i, u in enumerate(nbrs):
        for w in nbrs[i + 1 :]:
            if w not in adj[u]:
                fill += 1
    return fill


def min_degree_order(
    graph: dict[Variable, set[Variable]],
    *,
    exclude: Iterable[Variable] = (),
    seed=None,
) -> EliminationOrder:
    """Greedy min-degree PEO over all variables except ``exclude``."""
    rng = None if seed is None else as_rng(seed)
    return _greedy(graph, set(exclude), _degree_score, rng)


def min_fill_order(
    graph: dict[Variable, set[Variable]],
    *,
    exclude: Iterable[Variable] = (),
    seed=None,
) -> EliminationOrder:
    """Greedy min-fill PEO over all variables except ``exclude``."""
    rng = None if seed is None else as_rng(seed)
    return _greedy(graph, set(exclude), _fill_score, rng)


def random_order(
    graph: dict[Variable, set[Variable]],
    *,
    exclude: Iterable[Variable] = (),
    seed=None,
) -> EliminationOrder:
    """Uniformly random order — the ablation baseline."""
    rng = as_rng(seed)
    excluded = set(exclude)
    vars_ = sorted(v for v in graph if v not in excluded)
    perm = rng.permutation(len(vars_))
    return evaluate_order(graph, [vars_[i] for i in perm])


def greedy_random_restarts(
    graph: dict[Variable, set[Variable]],
    *,
    exclude: Iterable[Variable] = (),
    n_restarts: int = 8,
    method: str = "min_fill",
    seed=None,
) -> EliminationOrder:
    """Best-of-``n_restarts`` randomized greedy orders (tie-break shuffled).

    Mirrors how QTensor runs a portfolio of orderers and keeps the cheapest
    contraction plan; the first restart uses deterministic tie-breaking so
    the result is never worse than the plain greedy heuristic.
    """
    score = {"min_fill": _fill_score, "min_degree": _degree_score}[method]
    excluded = set(exclude)
    best = _greedy(graph, excluded, score, None)
    rng = as_rng(seed)
    for _ in range(max(0, n_restarts - 1)):
        cand = _greedy(graph, excluded, score, rng)
        if (cand.width, cand.log2_cost) < (best.width, best.log2_cost):
            best = cand
    return best


def order_for_tensors(
    tensors: Sequence[Tensor],
    *,
    exclude: Iterable[Variable] = (),
    method: str = "min_fill",
    n_restarts: int = 1,
    seed=None,
) -> EliminationOrder:
    """Convenience: interaction graph + heuristic in one call.

    Variables that appear in ``exclude`` (open outputs) are kept till the
    end; isolated variables absent from every tensor are ignored.
    """
    graph = interaction_graph(tensors)
    if method == "random":
        return random_order(graph, exclude=exclude, seed=seed)
    if n_restarts > 1:
        return greedy_random_restarts(
            graph, exclude=exclude, n_restarts=n_restarts, method=method, seed=seed
        )
    if method == "min_fill":
        return min_fill_order(graph, exclude=exclude)
    if method == "min_degree":
        return min_degree_order(graph, exclude=exclude)
    raise ValueError(f"unknown ordering method {method!r}")
