"""High-level tensor-network simulator façade (the QTensor stand-in).

Bundles network construction, lightcone pruning, order optimization, and a
contraction backend behind the three calls the rest of the package uses:

* :meth:`QTensorSimulator.statevector` — full state (cross-validation path);
* :meth:`QTensorSimulator.amplitude` — one ``<b|U|init>`` amplitude;
* :meth:`QTensorSimulator.expectation_diagonal` /
  :meth:`QTensorSimulator.maxcut_energy` — diagonal-observable expectations,
  contracted per term on the term's reverse lightcone.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.graphs.generators import Graph
from repro.qtensor.backends import ContractionBackend, get_backend
from repro.qtensor.contraction import bucket_elimination, contract_network
from repro.qtensor.lightcone import lightcone_circuit
from repro.qtensor.network import TensorNetwork
from repro.qtensor.ordering import order_for_tensors

__all__ = ["QTensorSimulator", "CUT_DIAGONAL", "ZZ_DIAGONAL"]

#: diagonal of (1 - Z_u Z_v)/2 on two qubits — the per-edge cut indicator
CUT_DIAGONAL = np.array([0.0, 1.0, 1.0, 0.0], dtype=complex)
#: diagonal of Z (x) Z
ZZ_DIAGONAL = np.array([1.0, -1.0, -1.0, 1.0], dtype=complex)


@dataclass
class QTensorSimulator:
    """Tensor-network circuit simulator with pluggable contraction backend.

    Parameters mirror the knobs the ablation benches sweep: the ordering
    heuristic (``min_fill``/``min_degree``/``random``), greedy restarts, and
    the backend (``"numpy"`` or ``"gpu"``).
    """

    backend: str | ContractionBackend = "numpy"
    ordering_method: str = "min_fill"
    n_restarts: int = 1
    ordering_seed: int | None = None
    use_lightcone: bool = True
    name: str = field(init=False, default="qtensor")

    def __post_init__(self) -> None:
        if isinstance(self.backend, str):
            self.backend = get_backend(self.backend)
        #: contraction widths observed per expectation term (diagnostics)
        self.last_widths: list[int] = []

    # -- state / amplitude ----------------------------------------------------

    def statevector(
        self,
        circuit: QuantumCircuit,
        *,
        initial_state: str = "0",
        bindings: Mapping[Parameter, float] | None = None,
    ) -> np.ndarray:
        """Full state vector via tensor contraction with open output wires.

        Exponential in qubit count by construction — this exists to
        cross-validate against :mod:`repro.simulators.statevector`, not to
        scale.
        """
        network = TensorNetwork.from_circuit(
            circuit, bindings=bindings, initial_state=initial_state
        )
        data = contract_network(
            network,
            backend=self.backend,
            method=self.ordering_method,
            n_restarts=self.n_restarts,
            seed=self.ordering_seed,
        )
        # open_vars are ordered q0..q_{n-1}; flatten little-endian (qubit k
        # = bit k) by putting the highest qubit on the leading axis.
        n = circuit.num_qubits
        return data.transpose(tuple(reversed(range(n)))).reshape(2**n)

    def amplitude(
        self,
        circuit: QuantumCircuit,
        bitstring: int,
        *,
        initial_state: str = "0",
        bindings: Mapping[Parameter, float] | None = None,
    ) -> complex:
        """``<bitstring|U|init>`` from a fully closed network."""
        network = TensorNetwork.from_circuit(
            circuit,
            bindings=bindings,
            initial_state=initial_state,
            output_bitstring=bitstring,
        )
        data = contract_network(
            network,
            backend=self.backend,
            method=self.ordering_method,
            n_restarts=self.n_restarts,
            seed=self.ordering_seed,
        )
        return complex(data)

    # -- expectations -----------------------------------------------------------

    def expectation_diagonal(
        self,
        circuit: QuantumCircuit,
        terms: Sequence[tuple[Sequence[int], np.ndarray, float]],
        *,
        initial_state: str = "+",
        bindings: Mapping[Parameter, float] | None = None,
    ) -> float:
        """``sum_k w_k <init|U^+ D_k U|init>`` for diagonal terms ``D_k``.

        Each term is ``(qubits, diagonal, weight)``. With lightcone pruning
        each term contracts only its causal neighbourhood — independent
        work items that the parallel layer can fan out.
        """
        self.last_widths = []
        total = 0.0
        for qubits, diagonal, weight in terms:
            value = self._single_term(circuit, qubits, diagonal, initial_state, bindings)
            total += weight * value
        return total

    def _single_term(
        self,
        circuit: QuantumCircuit,
        qubits: Sequence[int],
        diagonal: np.ndarray,
        initial_state: str,
        bindings: Mapping[Parameter, float] | None,
    ) -> float:
        cone = (
            lightcone_circuit(circuit, qubits) if self.use_lightcone else circuit
        )
        network = TensorNetwork.expectation(
            cone,
            [(list(qubits), np.asarray(diagonal, dtype=complex))],
            bindings=bindings,
            initial_state=initial_state,
        )
        order = order_for_tensors(
            network.tensors,
            method=self.ordering_method,
            n_restarts=self.n_restarts,
            seed=self.ordering_seed,
        )
        self.last_widths.append(order.width)
        result = bucket_elimination(network.tensors, order.order, (), self.backend)
        value = result.scalar()
        if abs(value.imag) > 1e-8 * max(1.0, abs(value.real)):
            raise AssertionError(
                f"diagonal expectation has imaginary part {value.imag:.3g}; "
                "network construction is inconsistent"
            )
        return value.real

    def maxcut_energy(
        self,
        circuit: QuantumCircuit,
        graph: Graph,
        *,
        initial_state: str = "+",
        bindings: Mapping[Parameter, float] | None = None,
    ) -> float:
        """``<C>`` of Eq. (1): one lightcone contraction per graph edge."""
        terms = [
            ((u, v), CUT_DIAGONAL, w)
            for (u, v), w in zip(graph.edges, graph.weights)
        ]
        return self.expectation_diagonal(
            circuit, terms, initial_state=initial_state, bindings=bindings
        )
