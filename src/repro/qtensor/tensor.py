"""Tensors with named indices.

A :class:`Tensor` couples an ndarray with the tuple of
:class:`~repro.qtensor.variables.Variable` labelling its axes. All
contraction logic manipulates variables; the ndarray tags along and is only
touched by the backend's einsum calls.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.qtensor.variables import Variable

__all__ = ["Tensor"]


class Tensor:
    """An ndarray whose axes are labelled by Variables."""

    __slots__ = ("name", "data", "indices")

    def __init__(self, name: str, data: np.ndarray, indices: Sequence[Variable]) -> None:
        data = np.asarray(data)
        indices = tuple(indices)
        if data.ndim != len(indices):
            raise ValueError(
                f"tensor '{name}': data rank {data.ndim} != {len(indices)} indices"
            )
        for axis, var in enumerate(indices):
            if data.shape[axis] != var.size:
                raise ValueError(
                    f"tensor '{name}': axis {axis} has size {data.shape[axis]} "
                    f"but variable {var} has size {var.size}"
                )
        if len(set(indices)) != len(indices):
            raise ValueError(f"tensor '{name}': repeated variable in {indices}")
        self.name = name
        self.data = data
        self.indices = indices

    @property
    def rank(self) -> int:
        return len(self.indices)

    def conj(self) -> Tensor:
        return Tensor(f"{self.name}*", self.data.conj(), self.indices)

    def rename_vars(self, mapping: Mapping[Variable, Variable]) -> Tensor:
        """Substitute variables (used to glue forward/backward networks)."""
        return Tensor(
            self.name,
            self.data,
            tuple(mapping.get(v, v) for v in self.indices),
        )

    def fix_variable(self, var: Variable, value: int) -> Tensor:
        """Slice the tensor at ``var = value`` (removes that axis).

        Backbone of sliced contraction: fixing a variable on every tensor
        that carries it splits the contraction into independent summands.
        """
        if var not in self.indices:
            return self
        axis = self.indices.index(var)
        new_data = np.take(self.data, value, axis=axis)
        new_indices = self.indices[:axis] + self.indices[axis + 1 :]
        return Tensor(self.name, new_data, new_indices)

    def scalar(self) -> complex:
        """The value of a rank-0 tensor."""
        if self.rank != 0:
            raise ValueError(f"tensor '{self.name}' has rank {self.rank}, not scalar")
        return complex(self.data)

    def __repr__(self) -> str:
        inner = ",".join(v.name for v in self.indices)
        return f"{self.name}({inner})"
