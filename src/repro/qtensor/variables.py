"""Tensor-network index variables.

A :class:`Variable` is one contraction index (a qubit wire segment between
two gates, in the circuit picture). Identity matters, names don't: two
variables with the same label are still distinct wires. A monotone id makes
orderings reproducible and lets bucket elimination sort deterministically.
"""

from __future__ import annotations

import itertools

__all__ = ["Variable", "VariableFactory"]


class Variable:
    """One index of size ``size`` (2 for qubit wires)."""

    __slots__ = ("id", "size", "name")

    def __init__(self, id: int, size: int = 2, name: str = "") -> None:
        self.id = id
        self.size = size
        self.name = name or f"v{id}"

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and self.id == other.id

    def __lt__(self, other: Variable) -> bool:
        return self.id < other.id

    def __hash__(self) -> int:
        return hash(self.id)

    def __repr__(self) -> str:
        return self.name


class VariableFactory:
    """Hands out fresh variables with sequential ids.

    Each network builder owns one factory, so variable ids are dense and
    reproducible per network (important: the greedy ordering heuristics
    break ties by id, and tests pin expected orders).
    """

    def __init__(self) -> None:
        self._counter = itertools.count()

    def fresh(self, name: str = "") -> Variable:
        return Variable(next(self._counter), 2, name)

    def fresh_many(self, count: int, prefix: str = "v") -> list[Variable]:
        return [self.fresh(f"{prefix}{i}") for i in range(count)]
