"""Search-as-a-service: queue, multiplexer, and HTTP front door.

This package turns the search stack into a long-running service — the
ROADMAP's "serves heavy traffic" shape. Three layers, each usable alone:

* :class:`~repro.service.jobs.JobQueue` — a persistent (sqlite) queue of
  submitted sweeps with crash-safe state transitions;
* :class:`~repro.service.multiplexer.SweepMultiplexer` — N concurrent
  sweeps multiplexed over **one** shared worker fleet (the async executor)
  and **one** shared multi-tenant result cache, so identical candidates
  across live sweeps are trained once;
* :class:`~repro.service.server.SearchService` + its stdlib HTTP/JSON API
  (``submit`` / ``status/{id}`` / ``result/{id}`` / ``healthz``) behind
  ``python -m repro serve``.

Clients use :func:`repro.api.connect`; the deploy recipe (including
attaching ``--shard-index`` worker processes to a service's cache) is in
``docs/service.md``.
"""

from repro.service.jobs import JOB_STATES, TERMINAL_STATES, JobQueue, JobRecord
from repro.service.multiplexer import SweepMultiplexer
from repro.service.server import SearchService, make_http_server, serve

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobQueue",
    "JobRecord",
    "SweepMultiplexer",
    "SearchService",
    "make_http_server",
    "serve",
]
