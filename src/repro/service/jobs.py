"""Persistent job queue: submitted sweeps survive service restarts.

One sqlite file per service directory, in WAL mode like the result cache,
so the queue tolerates a killed service. State transitions are guarded
conditional updates — a claim flips exactly one claimable row to
``running`` and checks the rowcount, which is what lets several
multiplexer slot threads (or several service processes on one directory)
drain one queue without double-claiming.

Hardened lifecycle (PR 7):

* **Priorities** — claims come out ``priority DESC, submitted_at ASC``;
  a tenant's urgent sweep overtakes the backlog without preemption.
* **Leases** — a claim holds the job for ``lease_seconds`` and must be
  renewed via :meth:`heartbeat`. A slot that wedges or dies stops
  renewing, and at expiry the job becomes claimable again by any live
  slot (same process, a restarted process, or a sibling on the shared
  directory) — recovery no longer waits for a queue re-open. Completed
  candidate evaluations live in the shared result cache, so the re-run
  pays only for the unfinished tail.
* **Ownership** — every claim stamps an ``owner``; terminal transitions
  (:meth:`mark_done` & co.) are owner-guarded, so a wedged slot that
  comes back after its job was reclaimed cannot clobber the new owner's
  outcome (it observes ``False`` and stands down).
* **Bounded retry + dead-letter** — a failed run goes back to the queue
  with exponential backoff (``backoff_base * 2**(attempts-1)``, capped);
  after ``max_attempts`` claims the job fails permanently (the
  dead-letter terminal: ``state='failed'`` with a ``dead-letter`` error)
  instead of crash-looping a poison spec through the fleet forever.
* **Cancellation** — queued rows cancel directly; running rows get a
  ``cancel_requested`` flag that the running sweep observes through its
  heartbeat / :class:`~repro.core.runtime.CancellationToken` and stops
  cooperatively, after which :meth:`mark_cancelled` lands the terminal
  state.

States: ``queued`` → ``running`` → ``done`` | ``failed`` | ``cancelled``
(with ``running`` → ``queued`` again on transient failure or lease
expiry).
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry

__all__ = ["JOB_STATES", "TERMINAL_STATES", "JobQueue", "JobRecord"]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

#: columns added since the PR-6 schema; existing stores migrate in place
_MIGRATED_COLUMNS = (
    ("tenant", "TEXT NOT NULL DEFAULT 'default'"),
    ("priority", "INTEGER NOT NULL DEFAULT 0"),
    ("attempts", "INTEGER NOT NULL DEFAULT 0"),
    ("not_before", "REAL NOT NULL DEFAULT 0"),
    ("lease_expires", "REAL"),
    ("owner", "TEXT"),
    ("cancel_requested", "INTEGER NOT NULL DEFAULT 0"),
)


@dataclass(frozen=True)
class JobRecord:
    """One submitted sweep's lifecycle snapshot."""

    id: str
    state: str
    #: the submit payload: workload wire graphs + depths + flat config
    spec: dict
    #: the finished sweep's ``SearchResult.to_dict()`` (done only)
    result: dict | None
    #: terminal error message (failed only)
    error: str | None
    tenant: str
    priority: int
    #: claims so far (each claim — first run, retry, or lease reclaim —
    #: counts; ``max_attempts`` of these dead-letters the job)
    attempts: int
    #: earliest time the job may be claimed again (retry backoff)
    not_before: float
    #: current lease deadline while running (renewed by heartbeats)
    lease_expires: float | None
    #: slot/worker id holding the current claim
    owner: str | None
    cancel_requested: bool
    submitted_at: float
    started_at: float | None
    finished_at: float | None

    def to_status(self) -> dict[str, Any]:
        """The ``/status/{id}`` payload: lifecycle without the big blobs."""
        return {
            "id": self.id,
            "state": self.state,
            "error": self.error,
            "tenant": self.tenant,
            "priority": self.priority,
            "attempts": self.attempts,
            "cancel_requested": self.cancel_requested,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "depths": self.spec.get("depths"),
            "num_graphs": self.spec.get("num_graphs"),
        }


class JobQueue:
    """Crash-safe sqlite-backed queue of sweep jobs (thread-safe).

    Parameters
    ----------
    service_dir:
        Directory holding ``jobs.sqlite`` (shared with the result cache
        and checkpoints of one service deployment).
    lease_seconds:
        How long one claim holds a job without a heartbeat; a wedged or
        killed slot's job becomes claimable again this long after its
        last renewal.
    max_attempts:
        Total claims a job may consume before it dead-letters (fails
        permanently). Must be >= 1.
    backoff_base / backoff_cap:
        Transient-failure requeue backoff: attempt ``n`` waits
        ``min(backoff_base * 2**(n-1), backoff_cap)`` seconds before the
        job is claimable again.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`. When given,
        the queue records submissions and claim wait per tenant, lease
        renewals, lease-expiry reclaims, and dead-letter transitions.
    """

    def __init__(
        self,
        service_dir: str | Path,
        *,
        lease_seconds: float = 30.0,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be positive, got {lease_seconds}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_base < 0 or backoff_cap < 0:
            raise ValueError("backoff_base/backoff_cap must be >= 0")
        self.service_dir = Path(service_dir)
        self.service_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.service_dir / "jobs.sqlite"
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.metrics = metrics
        self._m: dict[str, Any] | None = None
        if metrics is not None:
            self._m = {
                "submitted": metrics.counter(
                    "repro_queue_submitted_total",
                    "Sweep jobs enqueued, by tenant",
                    labels=("tenant",),
                ),
                "claim_wait": metrics.histogram(
                    "repro_queue_claim_wait_seconds",
                    "Time a claimable job waited in the queue before a "
                    "slot claimed it, by tenant",
                    labels=("tenant",),
                ),
                "renewals": metrics.counter(
                    "repro_lease_renewals_total",
                    "Successful heartbeat lease renewals",
                ),
                "reclaims": metrics.counter(
                    "repro_queue_reclaims_total",
                    "Jobs reclaimed after their holder's lease expired",
                ),
                "dead_letters": metrics.counter(
                    "repro_queue_dead_letters_total",
                    "Jobs failed permanently after exhausting max_attempts",
                ),
            }
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._execute("PRAGMA journal_mode=WAL")
        self._execute("PRAGMA busy_timeout=30000")
        self._execute(
            "CREATE TABLE IF NOT EXISTS jobs ("
            " id TEXT PRIMARY KEY,"
            " state TEXT NOT NULL,"
            " spec TEXT NOT NULL,"
            " result TEXT,"
            " error TEXT,"
            " submitted_at REAL NOT NULL,"
            " started_at REAL,"
            " finished_at REAL)"
        )
        columns = {row[1] for row in self._execute("PRAGMA table_info(jobs)")}
        for name, decl in _MIGRATED_COLUMNS:
            if name not in columns:
                self._execute(f"ALTER TABLE jobs ADD COLUMN {name} {decl}")
        # Crash recovery for pre-lease rows only: a running job without a
        # lease deadline can never expire, so requeue it here. Leased rows
        # are left alone — if their holder is really gone the lease
        # expires and claim_next reclaims them, which stays correct even
        # when several processes share one queue file.
        self._execute(
            "UPDATE jobs SET state = 'queued', started_at = NULL, owner = NULL"
            " WHERE state = 'running' AND lease_expires IS NULL"
        )
        self._conn.commit()

    # -- the sqlite seam ---------------------------------------------------

    def _execute(self, sql: str, params: tuple = ()) -> sqlite3.Cursor:
        """Every statement funnels through here — the fault-injection seam
        (:class:`~repro.parallel.faults.FaultInjectingJobQueue` overrides
        it to raise scheduled ``database is locked`` errors)."""
        return self._conn.execute(sql, params)

    # -- producer side -----------------------------------------------------

    def submit(
        self, spec: dict, *, tenant: str = "default", priority: int = 0
    ) -> str:
        """Enqueue one sweep spec; returns its job id."""
        job_id = uuid.uuid4().hex[:12]
        with self._lock:
            self._execute(
                "INSERT INTO jobs"
                " (id, state, spec, tenant, priority, submitted_at)"
                " VALUES (?, 'queued', ?, ?, ?, ?)",
                (job_id, json.dumps(spec), str(tenant), int(priority), time.time()),
            )
            self._conn.commit()
        if self._m is not None:
            self._m["submitted"].labels(tenant=str(tenant)).inc()
        return job_id

    # -- consumer side -----------------------------------------------------

    def claim_next(
        self, *, owner: str | None = None, tenant: str | None = None
    ) -> JobRecord | None:
        """Claim the best claimable job: highest priority, oldest first.

        Claimable means ``queued`` with its retry backoff elapsed, or
        ``running`` with an **expired lease** (the holder stopped
        heartbeating — wedged or dead — so the job is reclaimed by this
        live slot). A job that has burned through ``max_attempts`` claims
        dead-letters here instead of running again; a reclaimed job whose
        cancellation was requested lands directly in ``cancelled``.
        """
        owner = owner or uuid.uuid4().hex[:8]
        with self._lock:
            while True:
                now = time.time()
                clause = (
                    "((state = 'queued' AND not_before <= ?) OR"
                    " (state = 'running' AND lease_expires IS NOT NULL"
                    "  AND lease_expires < ?))"
                )
                params: list = [now, now]
                if tenant is not None:
                    clause += " AND tenant = ?"
                    params.append(tenant)
                row = self._execute(
                    "SELECT id, state, attempts, cancel_requested, tenant,"
                    " submitted_at, not_before FROM jobs"
                    f" WHERE {clause}"
                    " ORDER BY priority DESC, submitted_at ASC, rowid ASC"
                    " LIMIT 1",
                    tuple(params),
                ).fetchone()
                if row is None:
                    return None
                (
                    job_id,
                    state,
                    attempts,
                    cancel_requested,
                    job_tenant,
                    submitted_at,
                    not_before,
                ) = row
                if cancel_requested:
                    # Cancelled while queued-for-retry or while its dead
                    # holder ran: no live owner will ever acknowledge, so
                    # the reclaim resolves the cancellation directly.
                    self._finish_locked(job_id, "cancelled")
                    continue
                if attempts >= self.max_attempts:
                    self._finish_locked(
                        job_id,
                        "failed",
                        error=(
                            f"dead-letter: job gave out after {attempts} "
                            f"attempt(s) (max_attempts={self.max_attempts})"
                        ),
                    )
                    if self._m is not None:
                        self._m["dead_letters"].inc()
                    continue
                # Conditional claim: the observed state must still hold, so
                # concurrent claimants (threads or sibling processes) race
                # on the rowcount, never on a double-claim.
                claimed = self._execute(
                    "UPDATE jobs SET state = 'running', started_at = ?,"
                    " owner = ?, attempts = attempts + 1, lease_expires = ?"
                    " WHERE id = ? AND state = ?"
                    " AND (state != 'running' OR lease_expires < ?)",
                    (now, owner, now + self.lease_seconds, job_id, state, now),
                )
                self._conn.commit()
                if claimed.rowcount == 1:
                    if self._m is not None:
                        if state == "running":
                            # The previous holder's lease expired.
                            self._m["reclaims"].inc()
                        else:
                            waited = max(
                                0.0, now - max(submitted_at, not_before)
                            )
                            self._m["claim_wait"].labels(
                                tenant=str(job_tenant)
                            ).observe(waited)
                            self.metrics.trace_event(
                                "queue_claim_wait",
                                waited,
                                tenant=str(job_tenant),
                                job=job_id,
                            )
                    return self.get(job_id)

    def heartbeat(self, job_id: str, owner: str) -> str:
        """Renew a claim's lease; returns the holder's marching orders.

        ``"ok"``      — lease extended, keep working.
        ``"cancel"``  — lease extended, but cancellation was requested:
                        stop cooperatively and :meth:`mark_cancelled`.
        ``"lost"``    — the job is no longer this owner's (lease expired
                        and was reclaimed, or it was finished elsewhere):
                        abandon the work and do **not** record an outcome.
        """
        with self._lock:
            row = self._execute(
                "SELECT state, owner, cancel_requested FROM jobs WHERE id = ?",
                (job_id,),
            ).fetchone()
            if row is None or row[0] != "running" or row[1] != owner:
                return "lost"
            self._execute(
                "UPDATE jobs SET lease_expires = ? WHERE id = ? AND owner = ?",
                (time.time() + self.lease_seconds, job_id, owner),
            )
            self._conn.commit()
            if self._m is not None:
                self._m["renewals"].inc()
            return "cancel" if row[2] else "ok"

    def cancel(self, job_id: str) -> str:
        """Request cancellation; returns the job's resulting disposition.

        Queued jobs cancel immediately (``"cancelled"``); running jobs
        are flagged and stop cooperatively at the sweep's next
        cancellation checkpoint (``"cancelling"``); terminal jobs report
        their state unchanged.
        """
        with self._lock:
            record = self.get(job_id)
            if record is None:
                raise KeyError(f"unknown job id {job_id!r}")
            if record.state in TERMINAL_STATES:
                return record.state
            if record.state == "queued":
                self._finish_locked(job_id, "cancelled")
                return "cancelled"
            self._execute(
                "UPDATE jobs SET cancel_requested = 1 WHERE id = ?", (job_id,)
            )
            self._conn.commit()
            return "cancelling"

    def mark_done(self, job_id: str, result: dict, *, owner: str | None = None) -> bool:
        return self._finish(job_id, "done", result=result, owner=owner)

    def mark_failed(self, job_id: str, error: str, *, owner: str | None = None) -> bool:
        """Terminal failure, bypassing the retry budget (e.g. a spec that
        can never run). :meth:`record_failure` is the retrying path."""
        return self._finish(job_id, "failed", error=error, owner=owner)

    def mark_cancelled(self, job_id: str, *, owner: str | None = None) -> bool:
        return self._finish(job_id, "cancelled", owner=owner)

    def record_failure(
        self, job_id: str, error: str, *, owner: str | None = None
    ) -> str:
        """One failed run: requeue with backoff, or dead-letter.

        Returns ``"queued"`` (will retry after backoff), ``"failed"``
        (dead-lettered: the attempt budget is spent), or ``"lost"`` (this
        owner no longer holds the job — another slot reclaimed it).
        """
        with self._lock:
            record = self.get(job_id)
            if record is None:
                raise KeyError(f"unknown job id {job_id!r}")
            if record.state != "running" or (
                owner is not None and record.owner != owner
            ):
                return "lost"
            if record.attempts >= self.max_attempts:
                self._finish_locked(
                    job_id,
                    "failed",
                    error=(
                        f"dead-letter: failed on all {record.attempts} "
                        f"attempt(s); last error: {error}"
                    ),
                )
                if self._m is not None:
                    self._m["dead_letters"].inc()
                return "failed"
            delay = min(
                self.backoff_base * (2 ** max(0, record.attempts - 1)),
                self.backoff_cap,
            )
            self._execute(
                "UPDATE jobs SET state = 'queued', started_at = NULL,"
                " owner = NULL, lease_expires = NULL, not_before = ?,"
                " error = ? WHERE id = ?",
                (time.time() + delay, error, job_id),
            )
            self._conn.commit()
            return "queued"

    def requeue(self, job_id: str, *, owner: str | None = None) -> bool:
        """Hand a running job back unharmed (graceful-shutdown abort).

        The interrupted attempt is refunded — shutdown is not the job's
        fault, so repeated drains can never dead-letter a healthy sweep.
        """
        with self._lock:
            guard = "" if owner is None else " AND owner = ?"
            params: tuple = (job_id,) if owner is None else (job_id, owner)
            updated = self._execute(
                "UPDATE jobs SET state = 'queued', started_at = NULL,"
                " owner = NULL, lease_expires = NULL,"
                " attempts = MAX(attempts - 1, 0)"
                f" WHERE id = ? AND state = 'running'{guard}",
                params,
            )
            self._conn.commit()
            return updated.rowcount == 1

    def _finish(
        self,
        job_id: str,
        state: str,
        *,
        result: dict | None = None,
        error: str | None = None,
        owner: str | None = None,
    ) -> bool:
        """Owner-guarded terminal transition; False = ownership was lost
        (the job was reclaimed or finished by another slot — stand down)."""
        with self._lock:
            if self.get(job_id) is None:
                raise KeyError(f"unknown job id {job_id!r}")
            return self._finish_locked(
                job_id, state, result=result, error=error, owner=owner
            )

    def _finish_locked(
        self,
        job_id: str,
        state: str,
        *,
        result: dict | None = None,
        error: str | None = None,
        owner: str | None = None,
    ) -> bool:
        guard = "" if owner is None else " AND owner = ? AND state = 'running'"
        params: list = [
            state,
            None if result is None else json.dumps(result),
            error,
            time.time(),
            job_id,
        ]
        if owner is not None:
            params.append(owner)
        updated = self._execute(
            "UPDATE jobs SET state = ?, result = ?, error = ?,"
            " finished_at = ?, lease_expires = NULL, owner = NULL"
            f" WHERE id = ?{guard}",
            tuple(params),
        )
        self._conn.commit()
        return updated.rowcount == 1

    # -- inspection --------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            row = self._execute(
                "SELECT id, state, spec, result, error, tenant, priority,"
                " attempts, not_before, lease_expires, owner,"
                " cancel_requested, submitted_at, started_at, finished_at"
                " FROM jobs WHERE id = ?",
                (job_id,),
            ).fetchone()
        if row is None:
            return None
        return JobRecord(
            id=row[0],
            state=row[1],
            spec=json.loads(row[2]),
            result=None if row[3] is None else json.loads(row[3]),
            error=row[4],
            tenant=row[5],
            priority=int(row[6]),
            attempts=int(row[7]),
            not_before=float(row[8]),
            lease_expires=row[9],
            owner=row[10],
            cancel_requested=bool(row[11]),
            submitted_at=row[12],
            started_at=row[13],
            finished_at=row[14],
        )

    def counts(self) -> dict[str, int]:
        """Jobs per state (zero-filled), the queue-depth health signal."""
        with self._lock:
            rows = self._execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        out = dict.fromkeys(JOB_STATES, 0)
        out.update({state: int(n) for state, n in rows})
        return out

    def counts_by_tenant(self) -> dict[str, dict[str, int]]:
        """Per-tenant per-state counts (quota checks, healthz breakdown)."""
        with self._lock:
            rows = self._execute(
                "SELECT tenant, state, COUNT(*) FROM jobs GROUP BY tenant, state"
            ).fetchall()
        out: dict[str, dict[str, int]] = {}
        for tenant, state, n in rows:
            out.setdefault(tenant, dict.fromkeys(JOB_STATES, 0))[state] = int(n)
        return out

    def claimable_tenants(self) -> list[str]:
        """Tenants that currently have a claimable job (fairness input)."""
        now = time.time()
        with self._lock:
            rows = self._execute(
                "SELECT DISTINCT tenant FROM jobs"
                " WHERE (state = 'queued' AND not_before <= ?)"
                " OR (state = 'running' AND lease_expires IS NOT NULL"
                " AND lease_expires < ?)"
                " ORDER BY tenant",
                (now, now),
            ).fetchall()
        return [tenant for (tenant,) in rows]

    def __len__(self) -> int:
        return sum(self.counts().values())

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> JobQueue:
        return self

    def __exit__(self, *exc) -> None:
        self.close()
