"""Persistent job queue: submitted sweeps survive service restarts.

One sqlite file per service directory, in WAL mode like the result cache,
so the queue tolerates a killed service: jobs that were ``running`` when
the process died are re-queued on the next open (their partial work is
already in the shared result cache, so the re-run costs only the
unfinished tail). State transitions are atomic single statements —
``claim_next`` flips exactly one ``queued`` row to ``running`` under the
connection lock, which is what lets several multiplexer worker threads
drain one queue without double-claiming.

States: ``queued`` → ``running`` → ``done`` | ``failed``.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = ["JOB_STATES", "JobQueue", "JobRecord"]

JOB_STATES = ("queued", "running", "done", "failed")


@dataclass(frozen=True)
class JobRecord:
    """One submitted sweep's lifecycle snapshot."""

    id: str
    state: str
    #: the submit payload: workload wire graphs + depths + flat config
    spec: dict
    #: the finished sweep's ``SearchResult.to_dict()`` (done only)
    result: dict | None
    #: terminal error message (failed only)
    error: str | None
    submitted_at: float
    started_at: float | None
    finished_at: float | None

    def to_status(self) -> dict[str, Any]:
        """The ``/status/{id}`` payload: lifecycle without the big blobs."""
        return {
            "id": self.id,
            "state": self.state,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "depths": self.spec.get("depths"),
            "num_graphs": self.spec.get("num_graphs"),
        }


class JobQueue:
    """Crash-safe sqlite-backed queue of sweep jobs (thread-safe)."""

    def __init__(self, service_dir: str | Path) -> None:
        self.service_dir = Path(service_dir)
        self.service_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.service_dir / "jobs.sqlite"
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS jobs ("
            " id TEXT PRIMARY KEY,"
            " state TEXT NOT NULL,"
            " spec TEXT NOT NULL,"
            " result TEXT,"
            " error TEXT,"
            " submitted_at REAL NOT NULL,"
            " started_at REAL,"
            " finished_at REAL)"
        )
        # Crash recovery: a job that was mid-run when the previous service
        # process died goes back to the queue. Its completed candidate
        # evaluations are in the shared result cache, so the re-run pays
        # only for the tail that never got cached.
        self._conn.execute(
            "UPDATE jobs SET state = 'queued', started_at = NULL"
            " WHERE state = 'running'"
        )
        self._conn.commit()

    # -- producer side -----------------------------------------------------

    def submit(self, spec: dict) -> str:
        """Enqueue one sweep spec; returns its job id."""
        job_id = uuid.uuid4().hex[:12]
        with self._lock:
            self._conn.execute(
                "INSERT INTO jobs (id, state, spec, submitted_at)"
                " VALUES (?, 'queued', ?, ?)",
                (job_id, json.dumps(spec), time.time()),
            )
            self._conn.commit()
        return job_id

    # -- consumer side -----------------------------------------------------

    def claim_next(self) -> JobRecord | None:
        """Atomically move the oldest queued job to running and return it."""
        with self._lock:
            row = self._conn.execute(
                "SELECT id FROM jobs WHERE state = 'queued'"
                " ORDER BY submitted_at ASC, rowid ASC LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE jobs SET state = 'running', started_at = ? WHERE id = ?",
                (time.time(), row[0]),
            )
            self._conn.commit()
            return self.get(row[0])

    def mark_done(self, job_id: str, result: dict) -> None:
        self._finish(job_id, "done", result=result)

    def mark_failed(self, job_id: str, error: str) -> None:
        self._finish(job_id, "failed", error=error)

    def _finish(
        self,
        job_id: str,
        state: str,
        *,
        result: dict | None = None,
        error: str | None = None,
    ) -> None:
        with self._lock:
            updated = self._conn.execute(
                "UPDATE jobs SET state = ?, result = ?, error = ?,"
                " finished_at = ? WHERE id = ?",
                (
                    state,
                    None if result is None else json.dumps(result),
                    error,
                    time.time(),
                    job_id,
                ),
            )
            self._conn.commit()
            if updated.rowcount == 0:
                raise KeyError(f"unknown job id {job_id!r}")

    # -- inspection --------------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT id, state, spec, result, error,"
                " submitted_at, started_at, finished_at"
                " FROM jobs WHERE id = ?",
                (job_id,),
            ).fetchone()
        if row is None:
            return None
        return JobRecord(
            id=row[0],
            state=row[1],
            spec=json.loads(row[2]),
            result=None if row[3] is None else json.loads(row[3]),
            error=row[4],
            submitted_at=row[5],
            started_at=row[6],
            finished_at=row[7],
        )

    def counts(self) -> dict[str, int]:
        """Jobs per state (zero-filled), the queue-depth health signal."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) FROM jobs GROUP BY state"
            ).fetchall()
        out = dict.fromkeys(JOB_STATES, 0)
        out.update({state: int(n) for state, n in rows})
        return out

    def __len__(self) -> int:
        return sum(self.counts().values())

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> JobQueue:
        return self

    def __exit__(self, *exc) -> None:
        self.close()
