"""Sweep multiplexer: N concurrent sweeps, one fleet, one cache.

A sweep used to own the whole process; here each is just a job. The
multiplexer runs ``max_concurrent`` sweep slots (threads), each draining
the persistent :class:`~repro.service.jobs.JobQueue`. Every slot drives
the *same* :class:`~repro.parallel.async_executor.AsyncExecutor` — the
asyncio dispatch plane admits all sweeps' jobs and its semaphore meters
them onto one bounded worker fleet, so a wide sweep cannot starve the
service and an idle one costs nothing.

All slots also share one multi-tenant :class:`~repro.core.cache.
ResultCache` in ``shared`` mode: when two live sweeps propose the same
(workload, tokens, p, config) candidate, the first to claim it trains it
and the second collects the cached result (or blocks briefly on the
in-flight claim) — cross-sweep deduplication measured by the cache-hit
accounting each ``SearchResult.config`` carries.
"""

from __future__ import annotations

import threading
import traceback

from repro.api import Config, resolve_workload
from repro.core.cache import ResultCache
from repro.core.runtime import RuntimeConfig
from repro.core.search import search_mixer
from repro.parallel.async_executor import AsyncExecutor
from repro.parallel.executor import Executor
from repro.service.jobs import JobQueue, JobRecord

__all__ = ["SweepMultiplexer"]


class SweepMultiplexer:
    """Drains the job queue with ``max_concurrent`` sweeps at a time.

    Parameters
    ----------
    queue:
        The persistent job queue to drain.
    executor:
        Shared worker fleet; defaults to a fresh :class:`AsyncExecutor`
        (owned, closed on :meth:`stop`). A passed-in executor is borrowed.
    cache:
        Shared result store, normally constructed with ``shared=True``;
        optional — without it sweeps just lose cross-sweep reuse.
    max_concurrent:
        Sweep slots (worker threads draining the queue).
    poll_interval:
        Idle-slot sleep between queue polls, in seconds.
    """

    def __init__(
        self,
        queue: JobQueue,
        *,
        executor: Executor | None = None,
        cache: ResultCache | None = None,
        max_concurrent: int = 2,
        poll_interval: float = 0.05,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        self.queue = queue
        self._owns_executor = executor is None
        self.executor = executor or AsyncExecutor()
        self.cache = cache
        self.max_concurrent = int(max_concurrent)
        self.poll_interval = float(poll_interval)
        self.sweeps_completed = 0
        self.sweeps_failed = 0
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("multiplexer already started")
        self._stop.clear()
        self._threads = [
            threading.Thread(
                target=self._slot, name=f"sweep-slot-{i}", daemon=True
            )
            for i in range(self.max_concurrent)
        ]
        for thread in self._threads:
            thread.start()

    def stop(self) -> None:
        """Stop claiming new jobs, finish in-flight sweeps, release fleet."""
        self._stop.set()
        for thread in self._threads:
            thread.join()
        self._threads = []
        if self._owns_executor:
            self.executor.close()
        if self.cache is not None:
            self.cache.flush()

    def __enter__(self) -> SweepMultiplexer:
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the sweep slots ---------------------------------------------------

    def _slot(self) -> None:
        while not self._stop.is_set():
            job = self.queue.claim_next()
            if job is None:
                self._stop.wait(self.poll_interval)
                continue
            self._run_job(job)

    def _run_job(self, job: JobRecord) -> None:
        try:
            result = self.run_spec(job.spec)
        except Exception as error:  # noqa: BLE001 - a bad sweep must not kill the slot
            self.sweeps_failed += 1
            self.queue.mark_failed(
                job.id, f"{type(error).__name__}: {error}\n{traceback.format_exc()}"
            )
        else:
            self.sweeps_completed += 1
            self.queue.mark_done(job.id, result.to_dict())

    def run_spec(self, spec: dict):
        """Execute one submit payload on the shared fleet + cache.

        Exposed for the smoke path (run a spec without queue round-trip);
        the result's ``config`` carries per-sweep cache-hit accounting.
        """
        graphs = resolve_workload(spec["workload"])
        config = Config.from_dict(spec.get("config", {}))
        depths = int(spec.get("depths", 1))
        search_cfg = config.search_config(depths)
        # The service owns persistence: sweeps get the shared cache object,
        # never a private cache_dir (and checkpoints stay per-service too).
        runtime_cfg = RuntimeConfig(
            max_retries=config.retries,
            job_timeout=config.job_timeout,
        )
        return search_mixer(
            graphs,
            search_cfg,
            executor=self.executor,
            runtime=runtime_cfg,
            cache=self.cache,
        )
