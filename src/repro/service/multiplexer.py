"""Sweep multiplexer: N concurrent sweeps, one fleet, one cache.

A sweep used to own the whole process; here each is just a job. The
multiplexer runs ``max_concurrent`` sweep slots (threads), each draining
the persistent :class:`~repro.service.jobs.JobQueue`. Every slot drives
the *same* :class:`~repro.parallel.async_executor.AsyncExecutor` — the
asyncio dispatch plane admits all sweeps' jobs and its semaphore meters
them onto one bounded worker fleet, so a wide sweep cannot starve the
service and an idle one costs nothing.

All slots also share one multi-tenant :class:`~repro.core.cache.
ResultCache` in ``shared`` mode: when two live sweeps propose the same
(workload, tokens, p, config) candidate, the first to claim it trains it
and the second collects the cached result (or blocks briefly on the
in-flight claim) — cross-sweep deduplication measured by the cache-hit
accounting each ``SearchResult.config`` carries.

Hardened claiming and execution (PR 7):

* **Per-tenant fairness** — instead of strict oldest-first, each claim
  picks a tenant by weighted stride scheduling (tenants with claimable
  work are served proportionally to ``tenant_weights``, default weight
  1), then claims that tenant's best job. One tenant flooding the queue
  delays only itself. ``max_running_per_tenant`` additionally caps how
  many slots one tenant may occupy at once.
* **Leases + heartbeats** — every running job's lease is renewed from a
  per-job heartbeat thread; the heartbeat is also the cancellation
  channel (a ``cancel`` request flips the job's
  :class:`~repro.core.runtime.CancellationToken`, and a ``lost`` lease —
  this slot wedged long enough to be reclaimed — aborts the local run
  without recording an outcome).
* **Bounded retry / dead-letter** — a sweep that raises goes back
  through :meth:`JobQueue.record_failure` (requeue with exponential
  backoff until the attempt budget dead-letters it), so a poison spec
  fails permanently instead of crash-looping a slot.
* **Transient queue faults** — every queue operation in the slot loop is
  retried with short backoff on ``sqlite3.OperationalError`` (a busy
  shared store), so a lock storm costs latency, not a dead slot.
* **Graceful drain** — :meth:`stop` stops claiming, then waits up to
  ``drain_timeout`` for running sweeps to finish; past the deadline they
  are cancelled cooperatively and their jobs requeued (attempt refunded)
  for the next process to resume from cache.
* **Slot liveness** — a slot thread that somehow dies records itself in
  :meth:`slot_health`, which ``/healthz`` surfaces instead of silently
  shrinking capacity.
"""

from __future__ import annotations

import sqlite3
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro.api import Config, reconcile_workload, resolve_workload_spec
from repro.core.cache import ResultCache
from repro.core.runtime import CancellationToken, RuntimeConfig, SweepCancelled
from repro.core.search import search_mixer
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import SweepProgress
from repro.parallel.async_executor import AsyncExecutor
from repro.parallel.executor import Executor
from repro.service.jobs import JobQueue, JobRecord

__all__ = ["SweepMultiplexer"]

#: transient-queue-error retry schedule (seconds between attempts)
_QUEUE_RETRY_DELAYS = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0)


@dataclass
class _Slot:
    """One sweep slot's live bookkeeping."""

    name: str
    thread: threading.Thread | None = None
    #: job currently running here (None = idle)
    job_id: str | None = None
    token: CancellationToken | None = None
    #: the traceback that killed the slot thread, if it died
    died: str | None = None

    @property
    def alive(self) -> bool:
        return self.thread is not None and self.thread.is_alive()


@dataclass
class _TenantStride:
    """Weighted stride scheduling state: pick the eligible tenant with the
    lowest virtual finishing time ``(served + 1) / weight``."""

    weights: dict[str, float] = field(default_factory=dict)
    served: dict[str, int] = field(default_factory=dict)

    def weight(self, tenant: str) -> float:
        return max(float(self.weights.get(tenant, 1.0)), 1e-9)

    def pick(self, eligible: list[str]) -> str:
        choice = min(
            eligible,
            key=lambda t: ((self.served.get(t, 0) + 1) / self.weight(t), t),
        )
        self.served[choice] = self.served.get(choice, 0) + 1
        return choice


class SweepMultiplexer:
    """Drains the job queue with ``max_concurrent`` sweeps at a time.

    Parameters
    ----------
    queue:
        The persistent job queue to drain (its ``lease_seconds`` also
        sets the heartbeat cadence: one renewal per third of a lease).
    executor:
        Shared worker fleet; defaults to a fresh :class:`AsyncExecutor`
        (owned, closed on :meth:`stop`). A passed-in executor is borrowed.
    cache:
        Shared result store, normally constructed with ``shared=True``;
        optional — without it sweeps just lose cross-sweep reuse.
    max_concurrent:
        Sweep slots (worker threads draining the queue).
    poll_interval:
        Idle-slot sleep between queue polls, in seconds.
    tenant_weights:
        Fairness weights per tenant (missing tenants weigh 1.0); a tenant
        with weight 2 gets twice the claim share of a weight-1 tenant
        while both have work queued.
    max_running_per_tenant:
        Cap on jobs of one tenant running at once across the whole queue
        (None = no cap).
    drain_timeout:
        Default grace period :meth:`stop` gives running sweeps before
        cancelling them and requeueing their jobs (None = wait forever).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`, threaded
        into every sweep it runs (scheduler/cache/progress
        instrumentation) and fed outcome counters
        (``repro_sweeps_total{outcome=...}``).
    """

    #: finished-sweep progress snapshots kept for late ``/status`` polls
    PROGRESS_KEEP = 256

    def __init__(
        self,
        queue: JobQueue,
        *,
        executor: Executor | None = None,
        cache: ResultCache | None = None,
        max_concurrent: int = 2,
        poll_interval: float = 0.05,
        tenant_weights: dict[str, float] | None = None,
        max_running_per_tenant: int | None = None,
        drain_timeout: float | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if max_running_per_tenant is not None and max_running_per_tenant < 1:
            raise ValueError(
                f"max_running_per_tenant must be >= 1, got {max_running_per_tenant}"
            )
        self.queue = queue
        self._owns_executor = executor is None
        self.executor = executor or AsyncExecutor()
        self.cache = cache
        self.max_concurrent = int(max_concurrent)
        self.poll_interval = float(poll_interval)
        self.max_running_per_tenant = max_running_per_tenant
        self.drain_timeout = drain_timeout
        self.sweeps_completed = 0
        self.sweeps_failed = 0
        self.sweeps_cancelled = 0
        self.sweeps_requeued = 0
        self.queue_retries = 0
        self.metrics = metrics
        self._m_sweeps = None
        self._m_queue_retries = None
        if metrics is not None:
            self._m_sweeps = metrics.counter(
                "repro_sweeps_total",
                "Sweeps that reached a local outcome, by outcome",
                labels=("outcome",),
            )
            self._m_queue_retries = metrics.counter(
                "repro_queue_retries_total",
                "Queue operations retried on transient sqlite contention",
            )
        self._stride = _TenantStride(dict(tenant_weights or {}))
        self._stop = threading.Event()
        self._state_lock = threading.Lock()
        self._slots: list[_Slot] = []
        #: job id -> its sweep's progress tracker (kept after the job
        #: leaves this process, bounded by PROGRESS_KEEP)
        self._progress: dict[str, SweepProgress] = {}

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if any(slot.alive for slot in self._slots):
            raise RuntimeError("multiplexer already started")
        self._stop.clear()
        self._slots = [
            _Slot(name=f"sweep-slot-{i}") for i in range(self.max_concurrent)
        ]
        for slot in self._slots:
            slot.thread = threading.Thread(
                target=self._slot_loop, args=(slot,), name=slot.name, daemon=True
            )
            slot.thread.start()

    def stop(self, drain_timeout: float | None = None) -> None:
        """Stop claiming, drain running sweeps, then release the fleet.

        Waits up to ``drain_timeout`` (default: the constructor's) for
        in-flight sweeps to finish; past the deadline they are cancelled
        at their next checkpoint and their jobs requeued with the attempt
        refunded, so a restart resumes them from cache.
        """
        self._stop.set()
        deadline = drain_timeout if drain_timeout is not None else self.drain_timeout
        expires = None if deadline is None else time.monotonic() + deadline
        for slot in self._slots:
            if slot.thread is None:
                continue
            remaining = None if expires is None else max(0.0, expires - time.monotonic())
            slot.thread.join(timeout=remaining)
        # Past the drain deadline: abort the stragglers cooperatively.
        aborted = False
        with self._state_lock:
            for slot in self._slots:
                if slot.alive and slot.token is not None:
                    slot.token.cancel("service shutdown (drain deadline)")
                    aborted = True
        if aborted:
            for slot in self._slots:
                if slot.thread is not None:
                    slot.thread.join()
        self._slots = []
        if self._owns_executor:
            self.executor.close()
        if self.cache is not None:
            self.cache.flush()

    def __enter__(self) -> SweepMultiplexer:
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- health ------------------------------------------------------------

    def slot_health(self) -> dict:
        """Liveness of every slot thread — a crashed slot must be visible
        in ``/healthz``, not a silent capacity shrink."""
        with self._state_lock:
            dead = [
                {"slot": slot.name, "error": slot.died or "thread died"}
                for slot in self._slots
                if slot.died is not None or (slot.thread is not None and not slot.alive)
            ] if not self._stop.is_set() else [
                {"slot": slot.name, "error": slot.died}
                for slot in self._slots
                if slot.died is not None
            ]
            return {
                "configured": self.max_concurrent,
                "alive": sum(1 for slot in self._slots if slot.alive),
                "dead": dead,
            }

    def progress_for(self, job_id: str) -> dict | None:
        """Live (or recently finished) progress snapshot of a job that ran
        in this process; None for jobs this process never executed."""
        with self._state_lock:
            progress = self._progress.get(job_id)
        return None if progress is None else progress.to_dict()

    # -- transient queue faults --------------------------------------------

    def _queue_op(self, fn, *args, **kwargs):
        """Run one queue operation, absorbing transient sqlite contention.

        A shared WAL store under load surfaces as ``OperationalError:
        database is locked``; bounded backoff-retry turns that into
        latency. The last attempt re-raises — a persistently broken store
        is a real outage the slot's catch-all then records.
        """
        for delay in _QUEUE_RETRY_DELAYS:
            try:
                return fn(*args, **kwargs)
            except sqlite3.OperationalError:
                self.queue_retries += 1
                if self._m_queue_retries is not None:
                    self._m_queue_retries.inc()
                time.sleep(delay)
        return fn(*args, **kwargs)

    def _count_sweep(self, outcome: str) -> None:
        setattr(self, f"sweeps_{outcome}", getattr(self, f"sweeps_{outcome}") + 1)
        if self._m_sweeps is not None:
            self._m_sweeps.labels(outcome=outcome).inc()

    # -- the sweep slots ---------------------------------------------------

    def _slot_loop(self, slot: _Slot) -> None:
        try:
            while not self._stop.is_set():
                job = self._claim(slot)
                if job is None:
                    self._stop.wait(self.poll_interval)
                    continue
                self._run_job(slot, job)
        except BaseException:  # noqa: BLE001 - a dying slot must leave a trace
            # Recorded, not re-raised: there is nobody above a slot thread
            # to catch it, and /healthz (via slot_health) is the channel
            # that surfaces the death.
            with self._state_lock:
                slot.died = traceback.format_exc()

    def _claim(self, slot: _Slot) -> JobRecord | None:
        """One fair claim attempt: pick a tenant by weighted stride over
        those with claimable work (quota-eligible), then claim its best
        job."""
        tenants = self._queue_op(self.queue.claimable_tenants)
        if not tenants:
            return None
        if self.max_running_per_tenant is not None:
            by_tenant = self._queue_op(self.queue.counts_by_tenant)
            tenants = [
                t
                for t in tenants
                if by_tenant.get(t, {}).get("running", 0) < self.max_running_per_tenant
            ]
            if not tenants:
                return None
        with self._state_lock:
            tenant = self._stride.pick(tenants)
        # The claim can still miss (a sibling slot won the race, or the
        # tenant's only job was backing off); the loop just polls again.
        return self._queue_op(self.queue.claim_next, owner=slot.name, tenant=tenant)

    def _run_job(self, slot: _Slot, job: JobRecord) -> None:
        token = CancellationToken()
        lost = threading.Event()
        progress = SweepProgress(metrics=self.metrics, labels={"job": job.id})
        with self._state_lock:
            slot.job_id, slot.token = job.id, token
            self._progress[job.id] = progress
            while len(self._progress) > self.PROGRESS_KEEP:
                # dicts iterate in insertion order: drop the oldest entry
                self._progress.pop(next(iter(self._progress)))
        beat_stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(job.id, slot.name, token, lost, beat_stop),
            name=f"{slot.name}-heartbeat",
            daemon=True,
        )
        beat.start()
        try:
            try:
                result = self.run_spec(job.spec, cancel=token, progress=progress)
            finally:
                beat_stop.set()
                beat.join()
            if lost.is_set():
                return  # reclaimed elsewhere; the new owner records the outcome
            if self._queue_op(
                self.queue.mark_done, job.id, result.to_dict(), owner=slot.name
            ):
                self._count_sweep("completed")
        except SweepCancelled:
            if lost.is_set():
                return
            if self._stop.is_set() and not job.cancel_requested and not self._queue_op(
                self.queue.get, job.id
            ).cancel_requested:
                # Shutdown abort, not a user cancel: hand the job back for
                # the next process, attempt refunded.
                if self._queue_op(self.queue.requeue, job.id, owner=slot.name):
                    self._count_sweep("requeued")
            elif self._queue_op(self.queue.mark_cancelled, job.id, owner=slot.name):
                self._count_sweep("cancelled")
        except Exception as error:  # noqa: BLE001 - a bad sweep must not kill the slot
            if lost.is_set():
                return
            outcome = self._queue_op(
                self.queue.record_failure,
                job.id,
                f"{type(error).__name__}: {error}\n{traceback.format_exc()}",
                owner=slot.name,
            )
            if outcome == "failed":
                self._count_sweep("failed")
        finally:
            # Label hygiene: a job leaving this process must not leave its
            # gauge children in /metrics forever (the snapshot stays
            # readable via progress_for for late /status polls).
            progress.finish_sweep()
            progress.unregister()
            with self._state_lock:
                slot.job_id, slot.token = None, None

    def _heartbeat_loop(
        self,
        job_id: str,
        owner: str,
        token: CancellationToken,
        lost: threading.Event,
        stop: threading.Event,
    ) -> None:
        """Renew the job's lease until the run ends; doubles as the
        cancellation channel and the lost-lease detector."""
        interval = max(self.queue.lease_seconds / 3.0, 0.01)
        while not stop.wait(interval):
            try:
                status = self._queue_op(self.queue.heartbeat, job_id, owner)
            except sqlite3.OperationalError:
                continue  # exhausted retries; the lease survives one miss
            if status == "cancel":
                token.cancel("cancellation requested")
            elif status == "lost":
                lost.set()
                token.cancel("lease lost (job reclaimed)")
                return

    def run_spec(
        self,
        spec: dict,
        *,
        cancel: CancellationToken | None = None,
        progress: SweepProgress | None = None,
    ):
        """Execute one submit payload on the shared fleet + cache.

        Exposed for the smoke path (run a spec without queue round-trip);
        the result's ``config`` carries per-sweep cache-hit accounting.
        """
        implied, graphs = resolve_workload_spec(spec["workload"])
        config = reconcile_workload(Config.from_dict(spec.get("config", {})), implied)
        depths = int(spec.get("depths", 1))
        search_cfg = config.search_config(depths)
        # The service owns persistence: sweeps get the shared cache object,
        # never a private cache_dir (and checkpoints stay per-service too).
        runtime_cfg = RuntimeConfig(
            max_retries=config.retries,
            job_timeout=config.job_timeout,
        )
        return search_mixer(
            graphs,
            search_cfg,
            executor=self.executor,
            runtime=runtime_cfg,
            cache=self.cache,
            cancel=cancel,
            metrics=self.metrics,
            progress=progress,
        )
