"""The service front door: one object tying queue + fleet + cache, and a
stdlib HTTP/JSON API over it.

:class:`SearchService` is the deployable unit — everything lives under one
``service_dir`` (queue sqlite, shared result cache, checkpoints), so a
restart resumes where the last process stopped: queued jobs are still
queued, running jobs re-queue, and finished candidate evaluations are
cache hits. The HTTP layer is deliberately small (``http.server`` +
JSON — no framework, nothing to install):

====================  =====================================================
``POST /submit``      body ``{"workload": [...], "depths": p, "config": {}}``
                      → ``{"id": "..."}`` (202)
``GET /status/{id}``  job lifecycle record (state, timestamps, error)
``GET /result/{id}``  the finished sweep's versioned ``SearchResult`` wire
                      object (409 until done)
``GET /healthz``      liveness + queue depth + cache and fleet counters
====================  =====================================================

Run it with ``python -m repro serve`` (see ``docs/service.md`` for the
deploy recipe, including sharded workers attached to the same cache).
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.api import Config, resolve_workload
from repro.core.cache import ResultCache
from repro.parallel.async_executor import AsyncExecutor
from repro.service.jobs import JobQueue
from repro.service.multiplexer import SweepMultiplexer

__all__ = ["SearchService", "make_http_server", "serve"]


class ServiceRequestError(ValueError):
    """A client error with the HTTP status it should map to."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class SearchService:
    """Queue + shared cache + multiplexed sweep fleet under one directory."""

    def __init__(
        self,
        service_dir: str | Path,
        *,
        max_concurrent: int = 2,
        workers: int | None = None,
        cache_max_entries: int | None = None,
        cache_flush_every: int = 4,
    ) -> None:
        self.service_dir = Path(service_dir)
        self.service_dir.mkdir(parents=True, exist_ok=True)
        self.queue = JobQueue(self.service_dir)
        # shared=True: concurrent sweeps coordinate on in-flight keys; the
        # cache dir is also where --shard-index worker processes attach.
        self.cache = ResultCache(
            self.service_dir / "cache",
            flush_every=cache_flush_every,
            max_entries=cache_max_entries,
            shared=True,
        )
        self.multiplexer = SweepMultiplexer(
            self.queue,
            executor=AsyncExecutor(workers),
            cache=self.cache,
            max_concurrent=max_concurrent,
        )
        # The multiplexer borrows the executor, so the service must close
        # it; track it for stop().
        self._executor = self.multiplexer.executor
        self.started_at = time.time()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.multiplexer.start()

    def stop(self) -> None:
        self.multiplexer.stop()
        self._executor.close()
        self.cache.close()
        self.queue.close()

    def __enter__(self) -> SearchService:
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the API surface (transport-independent) ---------------------------

    def submit(self, payload: dict) -> dict:
        """Validate a submit payload, enqueue it, return ``{"id": ...}``.

        Validation happens here — workload resolves, config constructs,
        depths is a positive int — so a bad sweep fails at submit time
        with a 400, not minutes later in a worker.
        """
        if not isinstance(payload, dict):
            raise ServiceRequestError(400, "submit body must be a JSON object")
        try:
            graphs = resolve_workload(payload.get("workload", ()))
            config = Config.from_dict(payload.get("config", {}))
            depths = int(payload.get("depths", 1))
            if depths < 1:
                raise ValueError(f"depths must be >= 1, got {depths}")
            config.search_config(depths)  # constructs → validates every knob
        except (ValueError, TypeError, KeyError) as error:
            raise ServiceRequestError(400, f"invalid sweep spec: {error}") from None
        spec = {
            "workload": payload.get("workload"),
            "depths": depths,
            "config": config.to_dict(),
            "num_graphs": len(graphs),
        }
        return {"id": self.queue.submit(spec)}

    def status(self, job_id: str) -> dict:
        record = self.queue.get(job_id)
        if record is None:
            raise ServiceRequestError(404, f"unknown job id {job_id!r}")
        return record.to_status() | {"queue": self.queue.counts()}

    def result(self, job_id: str) -> dict:
        record = self.queue.get(job_id)
        if record is None:
            raise ServiceRequestError(404, f"unknown job id {job_id!r}")
        if record.state == "failed":
            raise ServiceRequestError(410, record.error or "sweep failed")
        if record.state != "done" or record.result is None:
            raise ServiceRequestError(
                409, f"job {job_id} is {record.state}; result not ready"
            )
        return record.result

    def healthz(self) -> dict:
        return {
            "ok": True,
            "uptime_seconds": time.time() - self.started_at,
            "queue": self.queue.counts(),
            "sweeps_completed": self.multiplexer.sweeps_completed,
            "sweeps_failed": self.multiplexer.sweeps_failed,
            "workers": self._executor.num_workers,
            "executor": self._executor.name,
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "max_entries": self.cache.max_entries,
            },
        }


class _Handler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the service object."""

    service: SearchService  # set by make_http_server

    # Silence per-request stderr lines; the service is often a test/CI
    # subprocess and request logs are noise there.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, handler) -> None:
        try:
            status, payload = handler()
        except ServiceRequestError as error:
            self._respond(error.status, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - a handler bug must return 500
            self._respond(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._respond(status, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        def handle() -> tuple[int, dict]:
            if self.path == "/healthz":
                return 200, self.service.healthz()
            if self.path.startswith("/status/"):
                return 200, self.service.status(self.path[len("/status/"):])
            if self.path.startswith("/result/"):
                return 200, self.service.result(self.path[len("/result/"):])
            raise ServiceRequestError(404, f"no route for GET {self.path}")

        self._dispatch(handle)

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        def handle() -> tuple[int, dict]:
            if self.path != "/submit":
                raise ServiceRequestError(404, f"no route for POST {self.path}")
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(raw.decode("utf-8") or "null")
            except json.JSONDecodeError as error:
                raise ServiceRequestError(400, f"invalid JSON body: {error}") from None
            return 202, self.service.submit(payload)

        self._dispatch(handle)


def make_http_server(
    service: SearchService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind (but do not start) the HTTP front end; port 0 picks a free one."""
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)


def serve(
    service_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 8787,
    max_concurrent: int = 2,
    workers: int | None = None,
    cache_max_entries: int | None = None,
) -> None:
    """Run the service until interrupted (the ``repro serve`` entrypoint)."""
    with SearchService(
        service_dir,
        max_concurrent=max_concurrent,
        workers=workers,
        cache_max_entries=cache_max_entries,
    ) as service:
        server = make_http_server(service, host, port)
        bound_host, bound_port = server.server_address[:2]
        print(
            f"search service on http://{bound_host}:{bound_port} "
            f"(dir {service.service_dir}, {max_concurrent} concurrent sweeps, "
            f"{service.multiplexer.executor.num_workers} workers)"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            server.shutdown()
            server.server_close()
