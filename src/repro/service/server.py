"""The service front door: one object tying queue + fleet + cache, and a
stdlib HTTP/JSON API over it.

:class:`SearchService` is the deployable unit — everything lives under one
``service_dir`` (queue sqlite, shared result cache, checkpoints), so a
restart resumes where the last process stopped: queued jobs are still
queued, running jobs come back via lease expiry, and finished candidate
evaluations are cache hits. The HTTP layer is deliberately small
(``http.server`` + JSON — no framework, nothing to install):

=====================  ====================================================
``POST /submit``       body ``{"workload": [...], "depths": p, "config":
                       {}, "tenant": "...", "priority": n}`` →
                       ``{"id": "..."}`` (202); 429 + ``Retry-After`` when
                       the queue or the tenant's quota is full
``POST /cancel/{id}``  cancel a queued job immediately, or request
                       cooperative cancellation of a running one →
                       ``{"id": ..., "state": "cancelled"|"cancelling"}``
``GET /status/{id}``   job lifecycle record (state, tenant, attempts,
                       timestamps, error)
``GET /result/{id}``   the finished sweep's versioned ``SearchResult``
                       wire object (409 until done, 410 if failed or
                       cancelled)
``GET /healthz``       liveness + queue depth (per tenant) + cache, fleet,
                       and slot-health counters; ``ok`` is false when a
                       sweep slot thread has died
``GET /metrics``       Prometheus text exposition of the service's
                       :class:`~repro.obs.metrics.MetricsRegistry` —
                       latency histograms, cache/scheduler counters,
                       per-sweep progress gauges (``text/plain``, not
                       JSON; see ``docs/observability.md``)
=====================  ====================================================

``GET /status/{id}`` additionally carries a ``progress`` field (candidates
done/total per depth, live throughput) while the job runs in this process.

Run it with ``python -m repro serve`` (see ``docs/service.md`` for the
deploy recipe and the operations runbook — cancellation, priorities,
tenant quotas, lease/backoff knobs, and what a 429 means;
``docs/observability.md`` for the metric catalog and scrape recipe).
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.api import Config, reconcile_workload, resolve_workload_spec
from repro.core.cache import ResultCache
from repro.obs.metrics import MetricsRegistry
from repro.parallel.async_executor import AsyncExecutor
from repro.service.jobs import JobQueue
from repro.service.multiplexer import SweepMultiplexer

__all__ = ["SearchService", "make_http_server", "serve"]


class ServiceRequestError(ValueError):
    """A client error with the HTTP status (and headers) it maps to."""

    def __init__(
        self, status: int, message: str, *, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.headers: dict[str, str] = {}
        if retry_after is not None:
            self.headers["Retry-After"] = str(max(1, round(retry_after)))


class SearchService:
    """Queue + shared cache + multiplexed sweep fleet under one directory.

    Hardening knobs (all optional; defaults keep the PR-6 behaviour):

    * ``max_queue_depth`` / ``max_queued_per_tenant`` — admission control:
      a submit that would exceed either cap is rejected with 429 +
      ``Retry-After`` instead of letting the backlog grow without bound.
    * ``max_running_per_tenant`` / ``tenant_weights`` — fairness: caps one
      tenant's share of the sweep slots, and weights the round-robin
      between tenants with queued work.
    * ``lease_seconds`` / ``max_attempts`` — the queue's crash-recovery
      lease and retry budget (see :class:`~repro.service.jobs.JobQueue`).
    * ``drain_timeout`` — how long :meth:`stop` lets running sweeps finish
      before cancelling them and requeueing their jobs.
    """

    def __init__(
        self,
        service_dir: str | Path,
        *,
        max_concurrent: int = 2,
        workers: int | None = None,
        cache_max_entries: int | None = None,
        cache_flush_every: int = 4,
        max_queue_depth: int | None = None,
        max_queued_per_tenant: int | None = None,
        max_running_per_tenant: int | None = None,
        tenant_weights: dict[str, float] | None = None,
        lease_seconds: float = 30.0,
        max_attempts: int = 3,
        drain_timeout: float | None = None,
        trace_log: str | Path | None = None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if max_queued_per_tenant is not None and max_queued_per_tenant < 1:
            raise ValueError(
                f"max_queued_per_tenant must be >= 1, got {max_queued_per_tenant}"
            )
        self.service_dir = Path(service_dir)
        self.service_dir.mkdir(parents=True, exist_ok=True)
        self.max_queue_depth = max_queue_depth
        self.max_queued_per_tenant = max_queued_per_tenant
        # One registry for the whole deployment: every layer below reports
        # into it, GET /metrics renders it.
        self.metrics = MetricsRegistry()
        if trace_log is not None:
            self.metrics.enable_trace(trace_log)
        self.queue = JobQueue(
            self.service_dir,
            lease_seconds=lease_seconds,
            max_attempts=max_attempts,
            metrics=self.metrics,
        )
        # shared=True: concurrent sweeps coordinate on in-flight keys; the
        # cache dir is also where --shard-index worker processes attach.
        self.cache = ResultCache(
            self.service_dir / "cache",
            flush_every=cache_flush_every,
            max_entries=cache_max_entries,
            shared=True,
            metrics=self.metrics,
        )
        self.multiplexer = SweepMultiplexer(
            self.queue,
            executor=AsyncExecutor(workers, metrics=self.metrics),
            cache=self.cache,
            max_concurrent=max_concurrent,
            tenant_weights=tenant_weights,
            max_running_per_tenant=max_running_per_tenant,
            drain_timeout=drain_timeout,
            metrics=self.metrics,
        )
        # The multiplexer borrows the executor, so the service must close
        # it; track it for stop().
        self._executor = self.multiplexer.executor
        self.started_at = time.time()
        self._register_collectors()

    def _register_collectors(self) -> None:
        """Point-in-time gauges sampled at scrape time — no background
        thread, no cost between scrapes."""
        uptime = self.metrics.gauge(
            "repro_service_uptime_seconds", "Seconds since the service started"
        )
        queue_jobs = self.metrics.gauge(
            "repro_queue_jobs", "Jobs currently in each queue state",
            labels=("state",),
        )
        slots_alive = self.metrics.gauge(
            "repro_slots_alive", "Sweep slot threads currently alive"
        )
        slots_configured = self.metrics.gauge(
            "repro_slots_configured", "Sweep slots the service was started with"
        )

        def collect() -> None:
            uptime.set(time.time() - self.started_at)
            for state, n in self.queue.counts().items():
                queue_jobs.labels(state=state).set(n)
            slots = self.multiplexer.slot_health()
            slots_alive.set(slots["alive"])
            slots_configured.set(slots["configured"])

        self.metrics.add_collector(collect)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.multiplexer.start()

    def stop(self, drain_timeout: float | None = None) -> None:
        """Drain running sweeps (bounded by ``drain_timeout``), then
        release the fleet, cache, and queue. Jobs still running past the
        deadline are cancelled cooperatively and requeued unharmed."""
        self.multiplexer.stop(drain_timeout)
        self._executor.close()
        self.cache.close()
        self.queue.close()
        self.metrics.disable_trace()

    def __enter__(self) -> SearchService:
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- the API surface (transport-independent) ---------------------------

    def submit(self, payload: dict) -> dict:
        """Validate a submit payload, enqueue it, return ``{"id": ...}``.

        Validation happens here — workload resolves, config constructs,
        depths is a positive int — so a bad sweep fails at submit time
        with a 400, not minutes later in a worker. Admission control also
        happens here: a full queue (global or per-tenant) is a 429 with
        ``Retry-After``, the client's signal to back off and retry.
        """
        if not isinstance(payload, dict):
            raise ServiceRequestError(400, "submit body must be a JSON object")
        try:
            implied, graphs = resolve_workload_spec(payload.get("workload", ()))
            config = reconcile_workload(
                Config.from_dict(payload.get("config", {})), implied
            )
            depths = int(payload.get("depths", 1))
            if depths < 1:
                raise ValueError(f"depths must be >= 1, got {depths}")
            config.search_config(depths)  # constructs → validates every knob
            tenant = str(payload.get("tenant", config.tenant) or "default")
            priority = int(payload.get("priority", config.priority))
        except (ValueError, TypeError, KeyError) as error:
            raise ServiceRequestError(400, f"invalid sweep spec: {error}") from None
        self._admit(tenant)
        spec = {
            "workload": payload.get("workload"),
            "depths": depths,
            "config": config.to_dict(),
            "num_graphs": len(graphs),
        }
        return {"id": self.queue.submit(spec, tenant=tenant, priority=priority)}

    def _admit(self, tenant: str) -> None:
        """Reject the submit if the backlog (global or tenant) is full."""
        retry_after = max(self.queue.lease_seconds / 2.0, 1.0)
        if self.max_queue_depth is not None:
            backlog = self.queue.counts()
            pending = backlog["queued"] + backlog["running"]
            if pending >= self.max_queue_depth:
                raise ServiceRequestError(
                    429,
                    f"queue full: {pending} pending jobs >= "
                    f"max_queue_depth={self.max_queue_depth}; retry later",
                    retry_after=retry_after,
                )
        if self.max_queued_per_tenant is not None:
            queued = (
                self.queue.counts_by_tenant()
                .get(tenant, {})
                .get("queued", 0)
            )
            if queued >= self.max_queued_per_tenant:
                raise ServiceRequestError(
                    429,
                    f"tenant {tenant!r} has {queued} queued jobs >= "
                    f"max_queued_per_tenant={self.max_queued_per_tenant}; "
                    "retry later",
                    retry_after=retry_after,
                )

    def cancel(self, job_id: str) -> dict:
        """Cancel a job: queued → cancelled now; running → cooperative
        stop at the sweep's next checkpoint (state ``cancelling``)."""
        try:
            state = self.queue.cancel(job_id)
        except KeyError:
            raise ServiceRequestError(404, f"unknown job id {job_id!r}") from None
        return {"id": job_id, "state": state}

    def status(self, job_id: str) -> dict:
        record = self.queue.get(job_id)
        if record is None:
            raise ServiceRequestError(404, f"unknown job id {job_id!r}")
        status = record.to_status() | {"queue": self.queue.counts()}
        # Live per-sweep progress (candidates done/total per depth) for
        # jobs running — or recently finished — in this process; absent
        # when another process on the shared directory ran the job.
        progress = self.multiplexer.progress_for(job_id)
        if progress is not None:
            status["progress"] = progress
        return status

    def metrics_text(self) -> str:
        """The Prometheus text exposition ``GET /metrics`` serves."""
        return self.metrics.render()

    def result(self, job_id: str) -> dict:
        record = self.queue.get(job_id)
        if record is None:
            raise ServiceRequestError(404, f"unknown job id {job_id!r}")
        if record.state == "failed":
            raise ServiceRequestError(410, record.error or "sweep failed")
        if record.state == "cancelled":
            raise ServiceRequestError(410, f"job {job_id} was cancelled")
        if record.state != "done" or record.result is None:
            raise ServiceRequestError(
                409, f"job {job_id} is {record.state}; result not ready"
            )
        return record.result

    def healthz(self) -> dict:
        slots = self.multiplexer.slot_health()
        return {
            # A dead slot thread is silently lost capacity — exactly what a
            # liveness probe exists to catch, so it flips ok to false.
            "ok": not slots["dead"],
            "uptime_seconds": time.time() - self.started_at,
            "queue": self.queue.counts(),
            "tenants": self.queue.counts_by_tenant(),
            "slots": slots,
            "sweeps_completed": self.multiplexer.sweeps_completed,
            "sweeps_failed": self.multiplexer.sweeps_failed,
            "sweeps_cancelled": self.multiplexer.sweeps_cancelled,
            "sweeps_requeued": self.multiplexer.sweeps_requeued,
            "queue_retries": self.multiplexer.queue_retries,
            "workers": self._executor.num_workers,
            "executor": self._executor.name,
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "max_entries": self.cache.max_entries,
            },
        }


class _Handler(BaseHTTPRequestHandler):
    """Routes the five endpoints onto the service object."""

    service: SearchService  # set by make_http_server

    # Silence per-request stderr lines; the service is often a test/CI
    # subprocess and request logs are noise there.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _respond(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _dispatch(self, handler) -> None:
        try:
            status, payload = handler()
        except ServiceRequestError as error:
            self._respond(error.status, {"error": str(error)}, error.headers)
        except Exception as error:  # noqa: BLE001 - a handler bug must return 500
            self._respond(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._respond(status, payload)

    def _respond_text(self, status: int, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        # Prometheus text exposition format 0.0.4 content type.
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        if self.path == "/metrics":
            try:
                body = self.service.metrics_text()
            except Exception as error:  # noqa: BLE001 - must return 500
                self._respond(500, {"error": f"{type(error).__name__}: {error}"})
            else:
                self._respond_text(200, body)
            return

        def handle() -> tuple[int, dict]:
            if self.path == "/healthz":
                return 200, self.service.healthz()
            if self.path.startswith("/status/"):
                return 200, self.service.status(self.path[len("/status/"):])
            if self.path.startswith("/result/"):
                return 200, self.service.result(self.path[len("/result/"):])
            raise ServiceRequestError(404, f"no route for GET {self.path}")

        self._dispatch(handle)

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        def handle() -> tuple[int, dict]:
            if self.path == "/submit":
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length else b""
                try:
                    payload = json.loads(raw.decode("utf-8") or "null")
                except json.JSONDecodeError as error:
                    raise ServiceRequestError(
                        400, f"invalid JSON body: {error}"
                    ) from None
                return 202, self.service.submit(payload)
            if self.path.startswith("/cancel/"):
                return 200, self.service.cancel(self.path[len("/cancel/"):])
            raise ServiceRequestError(404, f"no route for POST {self.path}")

        self._dispatch(handle)


def make_http_server(
    service: SearchService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind (but do not start) the HTTP front end; port 0 picks a free one."""
    handler = type("BoundHandler", (_Handler,), {"service": service})
    return ThreadingHTTPServer((host, port), handler)


def serve(
    service_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 8787,
    max_concurrent: int = 2,
    workers: int | None = None,
    cache_max_entries: int | None = None,
    max_queue_depth: int | None = None,
    max_queued_per_tenant: int | None = None,
    max_running_per_tenant: int | None = None,
    tenant_weights: dict[str, float] | None = None,
    lease_seconds: float = 30.0,
    max_attempts: int = 3,
    drain_timeout: float | None = None,
    trace_log: str | Path | None = None,
) -> None:
    """Run the service until interrupted (the ``repro serve`` entrypoint).

    Shutdown is graceful: running sweeps get ``drain_timeout`` seconds to
    finish; past that they are cancelled at their next checkpoint and
    their jobs requeued (attempt refunded) for the next process.
    ``trace_log`` additionally streams span events (JSONL) to a file —
    see ``docs/observability.md`` for the format.
    """
    service = SearchService(
        service_dir,
        max_concurrent=max_concurrent,
        workers=workers,
        cache_max_entries=cache_max_entries,
        max_queue_depth=max_queue_depth,
        max_queued_per_tenant=max_queued_per_tenant,
        max_running_per_tenant=max_running_per_tenant,
        tenant_weights=tenant_weights,
        lease_seconds=lease_seconds,
        max_attempts=max_attempts,
        drain_timeout=drain_timeout,
        trace_log=trace_log,
    )
    service.start()
    server = make_http_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"search service on http://{bound_host}:{bound_port} "
        f"(dir {service.service_dir}, {max_concurrent} concurrent sweeps, "
        f"{service.multiplexer.executor.num_workers} workers; "
        f"metrics at /metrics)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (draining running sweeps)", flush=True)
    finally:
        server.shutdown()
        server.server_close()
        service.stop()
