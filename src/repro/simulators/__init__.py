"""Quantum circuit simulators.

* :mod:`repro.simulators.statevector` — exact dense simulation, the
  package's reference engine.
* :mod:`repro.simulators.expectation` — vectorized observable evaluation
  (max-cut cost, Pauli strings).
* :mod:`repro.simulators.noise` — Kraus channels + density-matrix engine
  for noisy candidate ranking.
"""

from repro.simulators.expectation import (
    bit_table,
    cut_values,
    maxcut_expectation,
    pauli_expectation,
    z_expectations,
    zz_expectation,
)
from repro.simulators.noise import (
    DensityMatrixSimulator,
    KrausChannel,
    NoiseModel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    phase_flip_channel,
)
from repro.simulators.statevector import (
    StatevectorSimulator,
    apply_gate,
    basis_state,
    circuit_unitary,
    plus_state,
    sample_counts,
    simulate,
    zero_state,
)

__all__ = [
    "StatevectorSimulator",
    "simulate",
    "circuit_unitary",
    "apply_gate",
    "zero_state",
    "plus_state",
    "basis_state",
    "sample_counts",
    "bit_table",
    "cut_values",
    "maxcut_expectation",
    "z_expectations",
    "zz_expectation",
    "pauli_expectation",
    "DensityMatrixSimulator",
    "NoiseModel",
    "KrausChannel",
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "amplitude_damping_channel",
]
