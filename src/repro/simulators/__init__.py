"""Quantum circuit simulators.

* :mod:`repro.simulators.compiled` — the evaluator's fast path: a one-time
  compile pass lowers an ansatz into fused, pre-materialized array ops
  (cost layers collapse to single phase diagonals), so every optimizer
  step is pure vectorized work. Pick it (the default engine) whenever the
  same parameterized circuit is evaluated many times.
* :mod:`repro.simulators.backends` — the array library behind the compiled
  engine, as a knob: NumPy (default), CuPy (registered when importable),
  or the metered mock GPU that keeps the dispatch seam tested on CPU-only
  CI. Mirrors :mod:`repro.qtensor.backends` one layer down.
* :mod:`repro.simulators.statevector` — exact per-gate dense simulation of
  a concrete bound circuit; the reference engine every other path is
  cross-validated against, and the one to use for one-off circuits.
* :mod:`repro.simulators.expectation` — vectorized observable evaluation
  (max-cut cost — memoized per graph — and Pauli strings).
* :mod:`repro.simulators.noise` — Kraus channels + density-matrix engine
  for noisy candidate ranking.

(The tensor-network alternative for circuits too wide for a dense state
lives in :mod:`repro.qtensor`.)
"""

from repro.simulators.backends import (
    ArrayBackend,
    CupyArrayBackend,
    MockGPUArrayBackend,
    NumpyArrayBackend,
    available_array_backends,
    get_array_backend,
    register_array_backend,
)
from repro.simulators.compiled import CompiledProgram, compile_ansatz, compile_circuit
from repro.simulators.expectation import (
    bit_table,
    cut_values,
    maxcut_expectation,
    pauli_expectation,
    z_expectations,
    zz_expectation,
)
from repro.simulators.noise import (
    DensityMatrixSimulator,
    KrausChannel,
    NoiseModel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    phase_flip_channel,
)
from repro.simulators.statevector import (
    StatevectorSimulator,
    apply_gate,
    basis_state,
    circuit_unitary,
    plus_state,
    sample_counts,
    simulate,
    zero_state,
)

__all__ = [
    "ArrayBackend",
    "CupyArrayBackend",
    "MockGPUArrayBackend",
    "NumpyArrayBackend",
    "available_array_backends",
    "get_array_backend",
    "register_array_backend",
    "CompiledProgram",
    "compile_ansatz",
    "compile_circuit",
    "StatevectorSimulator",
    "simulate",
    "circuit_unitary",
    "apply_gate",
    "zero_state",
    "plus_state",
    "basis_state",
    "sample_counts",
    "bit_table",
    "cut_values",
    "maxcut_expectation",
    "z_expectations",
    "zz_expectation",
    "pauli_expectation",
    "DensityMatrixSimulator",
    "NoiseModel",
    "KrausChannel",
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "amplitude_damping_channel",
]
