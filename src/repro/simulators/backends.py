"""Pluggable array backends for the compiled engine (the GPU seam).

:class:`~repro.simulators.compiled.CompiledProgram` lowered the evaluator
hot path into exactly the shapes a device array library accelerates —
fused elementwise phase multiplies, unique-value gathers, and stacks of
small gemms. This module makes the array library a *knob* instead of a
hard-coded ``import numpy``: an :class:`ArrayBackend` owns

* the array namespace ``xp`` (NumPy, CuPy, or an instrumented proxy) that
  every array the engine creates is born under, so operator math — the
  bulk of the hot loop — dispatches to the right device natively;
* the handful of named ops the engine routes explicitly
  (:meth:`~ArrayBackend.asarray`, :meth:`~ArrayBackend.einsum`,
  :meth:`~ArrayBackend.tensordot`, :meth:`~ArrayBackend.take`,
  :meth:`~ArrayBackend.moveaxis`, :meth:`~ArrayBackend.exp`,
  :meth:`~ArrayBackend.multiply`);
* the host boundary: :meth:`~ArrayBackend.asarray` is the only way data
  enters the backend and :meth:`~ArrayBackend.to_host` the only way
  results leave, so transfers are explicit, meterable, and — on a real
  device — minimizable.

This deliberately mirrors :mod:`repro.qtensor.backends`, where the same
seam already swaps the tensor-*contraction* engine: ``NumpyBackend`` is
the measured default, ``SimulatedGPUBackend`` (``mock_gpu.py``) models an
accelerator so the dispatch path stays tested on CPU-only CI, and a real
device library registers without touching the layers above. Here the
three registered backends are

* ``"numpy"`` — the default; ``xp`` *is* :mod:`numpy` and the host
  boundary is the identity, so the compiled engine behaves (and benches)
  exactly as before this layer existed;
* ``"mock_gpu"`` — :class:`MockGPUArrayBackend`: computation runs on
  NumPy for bit-identical results, while every namespace call is metered
  as a device kernel and every host crossing as a PCIe transfer under an
  analytic :class:`DeviceModel` (the CPU-only stand-in that keeps the
  whole dispatch seam exercised in CI);
* ``"cupy"`` — :class:`CupyArrayBackend`, registered **only when CuPy is
  importable**: ``xp`` is :mod:`cupy`, ``to_host`` is ``cupy.asnumpy``,
  and :meth:`~ArrayBackend.synchronize` fences the stream so timings
  measure work, not launches.

Select one with ``EvaluationConfig(array_backend=...)`` / the CLI's
``--array-backend`` (it is part of the cache fingerprint, like
``engine``), or pass an instance straight to
:func:`~repro.simulators.compiled.compile_ansatz`. See
``docs/architecture.md`` for where this seam sits in the evaluation
pipeline.
"""

from __future__ import annotations

import abc
import importlib.util
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ArrayBackend",
    "CupyArrayBackend",
    "DeviceModel",
    "MockGPUArrayBackend",
    "NumpyArrayBackend",
    "available_array_backends",
    "get_array_backend",
    "register_array_backend",
]


class ArrayBackend(abc.ABC):
    """One array library, behind the compiled engine's dispatch seam.

    Concrete backends fix :attr:`name`, :attr:`xp`, and the two host
    boundaries. The named ops below default to their ``xp`` namesakes;
    the engine's kernels route contraction/gather/exponential work
    through them (so a backend may instrument or override each — the
    mock GPU meters them, a device library could fuse them), while pure
    elementwise operator math (``*``, ``+``, ``@``) dispatches natively
    on the arrays ``xp`` allocated.
    """

    name: str = "abstract"

    @property
    @abc.abstractmethod
    def xp(self):
        """The array namespace (``numpy``, ``cupy``, or a proxy).

        Every array the engine creates is allocated through this
        namespace, so ordinary operator math on those arrays runs on the
        backend's device without further dispatch.
        """

    @abc.abstractmethod
    def asarray(self, a, dtype=None):
        """Bring host (or device) data onto this backend's device."""

    @abc.abstractmethod
    def to_host(self, a) -> np.ndarray:
        """Bring a device array back as a host :class:`numpy.ndarray`.

        The single exit point for results — energies, gradients, final
        states — so a device backend pays exactly one download per batch.
        """

    # -- named ops the engine routes explicitly ---------------------------

    def einsum(self, subscripts: str, *operands):
        return self.xp.einsum(subscripts, *operands)

    def tensordot(self, a, b, axes):
        return self.xp.tensordot(a, b, axes=axes)

    def take(self, a, indices, axis=None):
        return self.xp.take(a, indices, axis=axis)

    def moveaxis(self, a, source, destination):
        return self.xp.moveaxis(a, source, destination)

    def exp(self, a):
        return self.xp.exp(a)

    def multiply(self, a, b, out=None):
        """Elementwise product; ``out=a`` is the engine's in-place
        phase-application idiom (``state *= phases``)."""
        return self.xp.multiply(a, b, out=out)

    # -- device lifecycle --------------------------------------------------

    def synchronize(self) -> None:  # pragma: no cover - default no-op
        """Fence outstanding device work (no-op on host backends)."""

    def reset_stats(self) -> None:  # pragma: no cover - default no-op
        """Clear any accumulated instrumentation."""

    def stats(self) -> dict[str, float]:
        """Backend-specific counters (kernels, bytes moved, device time)."""
        return {}


class NumpyArrayBackend(ArrayBackend):
    """Host NumPy — the measured default; the identity backend.

    ``asarray``/``to_host`` are :func:`numpy.asarray` (no copies for
    arrays already on the host), so routing the engine through this
    backend is free and the committed perf baselines stay comparable.
    """

    name = "numpy"

    @property
    def xp(self):
        return np

    def asarray(self, a, dtype=None):
        return np.asarray(a, dtype=dtype)

    def to_host(self, a) -> np.ndarray:
        return np.asarray(a)


@dataclass(frozen=True)
class DeviceModel:
    """Analytic accelerator cost model (order-of-magnitude A100 values).

    The same shape as ``repro.qtensor.backends.mock_gpu.DeviceModel`` —
    host↔device transfers at PCIe bandwidth, a fixed kernel-launch
    latency, and elementwise work at a device rate — redeclared here so
    the simulators layer stays import-cycle-free of :mod:`repro.qtensor`.
    """

    #: host<->device bandwidth, bytes/second (PCIe 4.0 x16 ~ 2.5e10)
    transfer_bandwidth: float = 2.5e10
    #: per-kernel launch + dispatch latency, seconds
    kernel_latency: float = 2.0e-5
    #: sustained elementwise complex op rate, operations/second
    element_rate: float = 5.0e12

    def transfer_seconds(self, num_bytes: int) -> float:
        return num_bytes / self.transfer_bandwidth

    def kernel_seconds(self, elements: float) -> float:
        return self.kernel_latency + elements / self.element_rate


class _InstrumentedNamespace:
    """NumPy, with every function call metered as one device kernel.

    Attribute access forwards to :mod:`numpy`; callables (functions and
    ufuncs, not dtypes/classes) come back wrapped so each invocation
    charges the owning :class:`MockGPUArrayBackend` one kernel launch
    plus per-element device time. Results stay ordinary host ndarrays —
    the point is to exercise and meter the dispatch seam, not to compute
    differently.
    """

    def __init__(self, backend: MockGPUArrayBackend) -> None:
        self._backend = backend
        self._wrapped: dict[str, object] = {}

    def __getattr__(self, name: str):
        cached = self._wrapped.get(name)
        if cached is not None:
            return cached
        attr = getattr(np, name)
        if callable(attr) and not isinstance(attr, type):
            backend = self._backend

            def kernel(*args, _fn=attr, _name=name, **kwargs):
                result = _fn(*args, **kwargs)
                backend._charge_kernel(_name, result)
                return result

            self._wrapped[name] = kernel
            return kernel
        return attr


class MockGPUArrayBackend(ArrayBackend):
    """Simulated-GPU array backend: NumPy results + device accounting.

    Mirrors ``repro.qtensor.backends.mock_gpu.SimulatedGPUBackend`` one
    layer down the stack: this box has no CUDA device, so computation
    runs on NumPy — results are **bit-identical** to the ``"numpy"``
    backend — while the backend meters what the same evaluation would
    cost on an accelerator: :meth:`asarray` charges a host→device
    transfer, :meth:`to_host` a device→host one, and every ``xp`` call a
    kernel launch under :class:`DeviceModel`. CPU-only CI drives the
    complete dispatch seam through this backend, so a raw ``np.`` call
    sneaking back into the engine shows up as missing kernels/transfers
    long before real hardware does.
    """

    name = "mock_gpu"

    def __init__(self, model: DeviceModel | None = None) -> None:
        self.model = model or DeviceModel()
        self._xp = _InstrumentedNamespace(self)
        self.kernels = 0
        self.elements = 0.0
        self.bytes_to_device = 0
        self.bytes_to_host = 0
        self.device_seconds = 0.0

    @property
    def xp(self):
        return self._xp

    def _charge_kernel(self, name: str, result) -> None:
        elements = float(getattr(result, "size", 1) or 1)
        self.kernels += 1
        self.elements += elements
        self.device_seconds += self.model.kernel_seconds(elements)

    def asarray(self, a, dtype=None):
        out = np.asarray(a, dtype=dtype)
        self.bytes_to_device += out.nbytes
        self.device_seconds += self.model.transfer_seconds(out.nbytes)
        return out

    def to_host(self, a) -> np.ndarray:
        out = np.asarray(a)
        self.bytes_to_host += out.nbytes
        self.device_seconds += self.model.transfer_seconds(out.nbytes)
        return out

    def reset_stats(self) -> None:
        self.kernels = 0
        self.elements = 0.0
        self.bytes_to_device = 0
        self.bytes_to_host = 0
        self.device_seconds = 0.0

    def stats(self) -> dict[str, float]:
        return {
            "kernels": float(self.kernels),
            "elements": self.elements,
            "bytes_to_device": float(self.bytes_to_device),
            "bytes_to_host": float(self.bytes_to_host),
            "device_seconds": self.device_seconds,
        }


class CupyArrayBackend(ArrayBackend):
    """CuPy on a real CUDA device.

    Only registered when :mod:`cupy` is importable (see module bottom);
    constructing it without CuPy raises the underlying ``ImportError``.
    The engine's arrays live on the device end to end — one upload of the
    program constants plus the parameter batch in, one download of the
    per-point energies out.
    """

    name = "cupy"

    def __init__(self) -> None:
        import cupy  # deferred: only importable on CUDA-capable installs

        self._cupy = cupy

    @property
    def xp(self):
        return self._cupy

    def asarray(self, a, dtype=None):
        return self._cupy.asarray(a, dtype=dtype)

    def to_host(self, a) -> np.ndarray:
        return self._cupy.asnumpy(a)

    def synchronize(self) -> None:
        self._cupy.cuda.get_current_stream().synchronize()


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, Callable[[], ArrayBackend]] = {}


def register_array_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` (later wins).

    This is the drop-in point the ROADMAP's GPU item describes: a new
    device library (torch, jax, dpnp, ...) implements
    :class:`ArrayBackend` and registers here; everything above — the
    evaluator, the cache fingerprint, the CLI flag — picks it up by name.
    """
    _REGISTRY[name] = factory


def available_array_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_array_backend`, registration order."""
    return tuple(_REGISTRY)


def get_array_backend(backend: str | ArrayBackend) -> ArrayBackend:
    """Resolve a backend name (or pass an instance through).

    Each call constructs a fresh instance, so stateful backends (the mock
    GPU's counters) never leak accounting across programs.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    factory = _REGISTRY.get(backend)
    if factory is None:
        options = ", ".join(available_array_backends())
        raise ValueError(
            f"unknown array backend {backend!r}; options: {options}"
        )
    return factory()


register_array_backend("numpy", NumpyArrayBackend)
register_array_backend("mock_gpu", MockGPUArrayBackend)
if importlib.util.find_spec("cupy") is not None:  # pragma: no cover - GPU box
    register_array_backend("cupy", CupyArrayBackend)
