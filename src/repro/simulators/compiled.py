"""Compiled statevector evaluation: the optimizer's inner loop as pure NumPy.

The dense engine in :mod:`repro.simulators.statevector` is exact but pays
Python-object overhead on *every* energy call: the ansatz is re-bound into
a fresh :class:`~repro.circuits.circuit.QuantumCircuit`, every gate matrix
is re-materialized, and every ``apply_gate`` re-derives its contraction
metadata. None of that depends on the parameter values — only the angles
change between the ~200 COBYLA steps the Evaluator spends per candidate.

:func:`compile_circuit` runs once per candidate and lowers the symbolic
circuit into a :class:`CompiledProgram`, a flat list of three op kinds:

* **Fused diagonal blocks** — a maximal run of diagonal gates (the entire
  cost layer ``e^{-i gamma C}``, plus any adjacent ``rz``/``p``/``cz``
  mixer columns) collapses into per-parameter *generator vectors* built
  from each gate's :attr:`~repro.circuits.gates.GateSpec.diag_phase`
  (Lykov & Alexeev 2021's diagonal-gate observation, taken to its dense
  conclusion). Applying the block is one ``state *= exp(1j * (g0 + sum_j
  x_j * G_j))`` elementwise op, independent of how many gates it fuses.
* **Matrix columns** — a run of non-diagonal single-qubit gates is grouped
  per qubit (gates on distinct qubits commute) and chained into one 2x2
  product per qubit; qubits whose chain is structurally identical (the
  weight-shared mixer columns) share a single op whose matrix is built
  once per call and applied with a strided in-place kernel.
* **Static gates** — anything parameter-free has its matrix materialized
  at compile time; a complete leading Hadamard column is folded into the
  ``|+>^n`` initial state outright.

``CompiledProgram.energy(x)`` therefore runs the whole optimizer step with
zero circuit rebuilds, zero dict bindings, and zero matrix
re-materialization. ``energies(X)`` evaluates a batch of parameter vectors
through the same ops with a trailing batch axis, and ``gradient(x)``
implements the exact two-term parameter-shift rule by injecting per-column
shifts into a single batched run instead of reconstructing shifted
circuits per gate occurrence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter, ParameterExpression
from repro.graphs.generators import Graph
from repro.simulators.expectation import bit_table, cut_values
from repro.simulators.statevector import plus_state, zero_state

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (qaoa imports us)
    from repro.qaoa.ansatz import QAOAAnsatz

__all__ = [
    "SHIFT_RULE_GATES",
    "CompiledProgram",
    "compile_ansatz",
    "compile_circuit",
]

#: gates whose expectation is single-frequency in the angle, so the exact
#: two-term shift rule applies (shared with repro.qaoa.energy)
SHIFT_RULE_GATES = frozenset({"rx", "ry", "rz", "p", "rzz", "rxx", "cp"})

_SHIFT = np.pi / 2

#: linear angle expression lowered to flat-parameter indices:
#: ``(((j, coeff), ...), offset)``
_Expr = Tuple[Tuple[Tuple[int, float], ...], float]


def _lower_expr(value, index: Dict[Parameter, int]) -> _Expr:
    """Lower a gate angle (number or linear expression) to index space."""
    if isinstance(value, ParameterExpression):
        try:
            terms = tuple(
                (index[param], coeff) for param, coeff in value.terms.items()
            )
        except KeyError:
            unknown = sorted(
                p.name for p in value.parameters if p not in index
            )
            raise ValueError(
                f"circuit uses parameters {unknown} missing from the "
                "compile-time parameter ordering"
            ) from None
        return terms, value.offset
    return (), float(value)


def _eval_expr(expr: _Expr, x: np.ndarray) -> float:
    terms, offset = expr
    return offset + sum(coeff * x[j] for j, coeff in terms)


def _eval_expr_batch(expr: _Expr, X: np.ndarray) -> np.ndarray:
    terms, offset = expr
    out = np.full(X.shape[0], offset)
    for j, coeff in terms:
        out += coeff * X[:, j]
    return out


def _expand_diag(small: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Lift a ``2^m`` per-gate vector to the full ``2^n`` basis."""
    bits = bit_table(num_qubits)
    local = np.zeros(2**num_qubits, dtype=np.int64)
    for j, q in enumerate(qubits):
        local += bits[:, q].astype(np.int64) << j
    return np.asarray(small)[local]


# -- compiled op kinds ----------------------------------------------------


@dataclass(frozen=True)
class _DiagAtom:
    """One parameterized diagonal gate occurrence inside a fused block,
    kept in compact per-gate form so gradient shifts can re-expand it."""

    h_small: Tuple[float, ...]
    qubits: Tuple[int, ...]


@dataclass
class _DiagBlock:
    """A maximal run of diagonal gates fused into phase-exponent vectors."""

    #: parameter-independent part of the exponent (None when zero)
    gen_const: Optional[np.ndarray]
    #: flat indices of the parameters this block depends on
    param_indices: np.ndarray
    #: ``(k, 2^n)`` generator vectors, one row per parameter above
    gens: np.ndarray
    #: per-occurrence generators for parameter-shift injection
    atoms: List[_DiagAtom]
    #: ``exp(1j * gen_const)`` precomputed when the block is parameter-free
    static_phase: Optional[np.ndarray]


@dataclass(frozen=True)
class _Factor:
    """One primitive gate inside a fused matrix chain."""

    name: str
    matrix_fn: object
    exprs: Tuple[_Expr, ...]
    has_free: bool


@dataclass
class _MatrixColumn:
    """One factor chain applied to each of several disjoint qubit tuples.

    For the weight-shared mixer columns all qubits carry the identical
    chain, so the matrix is built once per call and applied n times.
    """

    targets: Tuple[Tuple[int, ...], ...]
    factors: Tuple[_Factor, ...]
    #: precomputed product when no factor has free parameters
    static_matrix: Optional[np.ndarray]


@dataclass(frozen=True)
class _ShiftSite:
    """One parameterized gate occurrence, addressable for a shift rule."""

    op_index: int
    #: atom index for diagonal occurrences, -1 otherwise
    atom: int
    #: (factor, target) indices for matrix occurrences, (-1, -1) otherwise
    factor: int
    target: int
    coeffs: Tuple[Tuple[int, float], ...]
    gate_name: str
    shiftable: bool


# -- kernels ---------------------------------------------------------------


def _apply_1q(state: np.ndarray, matrix: np.ndarray, qubit: int) -> np.ndarray:
    """Strided in-place 2x2 apply on a flat (or flattened-batch) state.

    ``state`` may be ``(2^n,)`` or a ``(2^n, B)`` batch — either way bit
    ``qubit`` of the basis index has stride ``2^qubit * B``, so one
    reshape exposes it as the middle axis. Mutates (and returns) ``state``,
    copying first only if it is not C-contiguous — a reshape of a
    non-contiguous array would silently write into a throwaway copy.
    """
    if not state.flags.c_contiguous:
        state = np.ascontiguousarray(state)
    inner = (1 << qubit) * (state.size // state.shape[0])
    view = state.reshape(-1, 2, inner)
    a = view[:, 0, :]
    b = view[:, 1, :]
    new_a = matrix[0, 0] * a + matrix[0, 1] * b
    view[:, 1, :] = matrix[1, 0] * a + matrix[1, 1] * b
    view[:, 0, :] = new_a
    return state


def _contract(
    state: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Lean apply_gate: same contraction, validation and reshape math done
    at compile time. Supports trailing batch axes."""
    m = len(qubits)
    batch_shape = state.shape[1:]
    tensor = state.reshape((2,) * num_qubits + batch_shape)
    gate_tensor = matrix.reshape((2,) * (2 * m))
    axes = [num_qubits - 1 - qubits[j] for j in reversed(range(m))]
    moved = np.tensordot(gate_tensor, tensor, axes=(list(range(m, 2 * m)), axes))
    result = np.moveaxis(moved, list(range(m)), axes)
    return result.reshape(state.shape)


def _contract_per_column(
    state: np.ndarray, matrices: np.ndarray, qubits: Sequence[int], num_qubits: int
) -> np.ndarray:
    """Apply a different ``2^m x 2^m`` matrix to every batch column.

    ``state`` is ``(2^n, B)``; ``matrices`` is ``(2^m, 2^m, B)``.
    """
    m = len(qubits)
    batch = state.shape[1]
    axes = [num_qubits - 1 - qubits[j] for j in reversed(range(m))]
    tensor = state.reshape((2,) * num_qubits + (batch,))
    moved = np.moveaxis(tensor, axes, range(m))
    rest = moved.shape[m:]
    view = moved.reshape((2**m, -1, batch))
    out = np.einsum("ijb,jrb->irb", matrices, view)
    out = out.reshape((2,) * m + rest)
    out = np.moveaxis(out, range(m), axes)
    return out.reshape(state.shape)


# -- the program -----------------------------------------------------------


class CompiledProgram:
    """A lowered circuit: flat vectorized ops over a fixed parameter order.

    Produced by :func:`compile_circuit` / :func:`compile_ansatz`; see the
    module docstring for the op kinds. All evaluation entry points take
    flat parameter vectors in the compile-time ordering.
    """

    def __init__(
        self,
        num_qubits: int,
        num_parameters: int,
        ops: List[object],
        shift_sites: List[_ShiftSite],
        initial_state_label: str,
        graph: Optional[Graph],
        source_gates: int,
    ) -> None:
        self.num_qubits = num_qubits
        self.num_parameters = num_parameters
        self.ops = ops
        self.shift_sites = shift_sites
        self.initial_state_label = initial_state_label
        self.graph = graph
        #: gate count of the source circuit (fusion diagnostics)
        self.source_gates = source_gates
        self._cut = None if graph is None else cut_values(graph)
        # Atom generators expanded to the full basis, memoized per distinct
        # (h_small, qubits): a cost-layer edge appears once per QAOA layer,
        # so this caches p-fold fewer vectors than storing one per atom
        # while sparing the gradient path any repeated expansion.
        self._atom_vectors: Dict[Tuple, np.ndarray] = {}

    # -- introspection -----------------------------------------------------

    @property
    def num_ops(self) -> int:
        """Fused op count — compare against :attr:`source_gates`."""
        return len(self.ops)

    @property
    def num_shift_sites(self) -> int:
        """Parameterized gate occurrences (2 energy evals each per
        gradient, matching the dense engine's accounting)."""
        return len(self.shift_sites)

    # -- single evaluation -------------------------------------------------

    def _initial_state(self) -> np.ndarray:
        if self.initial_state_label == "+":
            return plus_state(self.num_qubits)
        if self.initial_state_label == "0":
            return zero_state(self.num_qubits)
        raise ValueError(
            f"unknown initial state label {self.initial_state_label!r}"
        )

    def _atom_vector(self, atom: _DiagAtom) -> np.ndarray:
        key = (atom.h_small, atom.qubits)
        vector = self._atom_vectors.get(key)
        if vector is None:
            vector = _expand_diag(atom.h_small, atom.qubits, self.num_qubits)
            self._atom_vectors[key] = vector
        return vector

    def _check_x(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.shape[0] != self.num_parameters:
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {x.shape[0]}"
            )
        return x

    def state(self, x: Sequence[float]) -> np.ndarray:
        """The final statevector at the flat parameter vector ``x``.

        (Shifted evaluations for the gradient's parameter-shift rule go
        through the batched :meth:`states` path, which injects shifts per
        column — there is deliberately no single-state shift variant.)
        """
        x = self._check_x(x)
        state = self._initial_state()
        n = self.num_qubits
        for op in self.ops:
            if isinstance(op, _DiagBlock):
                if op.static_phase is not None:
                    state *= op.static_phase
                    continue
                exponent = np.dot(x[op.param_indices], op.gens)
                if op.gen_const is not None:
                    exponent = exponent + op.gen_const
                state *= np.exp(1j * exponent)
            else:
                matrix = self._column_matrix(op, x)
                if len(op.targets) == n and len(op.targets[0]) == 1:
                    # The column covers every qubit with one shared 2x2 (the
                    # weight-shared mixer case): rotate the leading qubit
                    # axis through a small gemm n times. Each product takes
                    # (2, 2^{n-1}) -> (2^{n-1}, 2), cycling the axis order
                    # left, so after n rounds every qubit has been hit once
                    # and the layout is back where it started — one BLAS
                    # call per qubit instead of eight strided ufunc sweeps.
                    transposed = matrix.T
                    for _ in range(n):
                        state = state.reshape(2, -1).T @ transposed
                    state = state.reshape(-1)
                    continue
                for target in op.targets:
                    if len(target) == 1:
                        state = _apply_1q(state, matrix, target[0])
                    else:
                        state = _contract(state, matrix, target, n)
        return state

    def _column_matrix(self, op: _MatrixColumn, x: np.ndarray) -> np.ndarray:
        if op.static_matrix is not None:
            return op.static_matrix
        matrix = None
        for factor in op.factors:
            values = [_eval_expr(e, x) for e in factor.exprs]
            factor_matrix = factor.matrix_fn(values)
            matrix = factor_matrix if matrix is None else factor_matrix @ matrix
        return matrix

    def energy(self, x: Sequence[float]) -> float:
        """``<C>`` of the attached graph at ``x``."""
        state = self.state(x)
        probs = state.real**2 + state.imag**2
        return float(probs @ self._cut_table())

    def _cut_table(self) -> np.ndarray:
        if self._cut is None:
            raise ValueError(
                "program was compiled without a graph; only state() is available"
            )
        return self._cut

    # -- batched evaluation ------------------------------------------------

    def states(
        self,
        X: np.ndarray,
        _shifts: Optional[Sequence[Optional[Tuple[_ShiftSite, float]]]] = None,
    ) -> np.ndarray:
        """Final statevectors of a ``(B, num_parameters)`` batch, as
        ``(2^n, B)`` columns."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.num_parameters:
            raise ValueError(
                f"expected batch of {self.num_parameters}-parameter rows, "
                f"got shape {X.shape}"
            )
        batch = X.shape[0]
        by_op: Dict[int, List[Tuple[int, _ShiftSite, float]]] = {}
        if _shifts is not None:
            for column, entry in enumerate(_shifts):
                if entry is not None:
                    site, s = entry
                    by_op.setdefault(site.op_index, []).append((column, site, s))

        state = np.ascontiguousarray(
            np.repeat(self._initial_state()[:, None], batch, axis=1)
        )
        for op_index, op in enumerate(self.ops):
            shifts_here = by_op.get(op_index, ())
            if isinstance(op, _DiagBlock):
                if op.static_phase is not None:
                    state *= op.static_phase[:, None]
                    continue
                exponent = X[:, op.param_indices] @ op.gens  # (B, 2^n)
                if op.gen_const is not None:
                    exponent += op.gen_const
                for column, site, s in shifts_here:
                    exponent[column] += s * self._atom_vector(op.atoms[site.atom])
                state *= np.exp(1j * exponent).T
            else:
                state = self._apply_column_batch(op, state, X, shifts_here)
        return state

    def _apply_column_batch(
        self,
        op: _MatrixColumn,
        state: np.ndarray,
        X: np.ndarray,
        shifts_here: Sequence[Tuple[int, _ShiftSite, float]],
    ) -> np.ndarray:
        n = self.num_qubits
        if op.static_matrix is not None and not shifts_here:
            for target in op.targets:
                if len(target) == 1:
                    state = _apply_1q(state, op.static_matrix, target[0])
                else:
                    state = _contract(state, op.static_matrix, target, n)
            return state

        batch = X.shape[0]
        # Per-column angles, deduplicated: gradient batches carry at most a
        # handful of distinct angle combinations (x and x +- pi/2).
        angle_rows = np.stack(
            [
                _eval_expr_batch(expr, X)
                for factor in op.factors
                for expr in factor.exprs
            ],
            axis=1,
        ) if any(factor.exprs for factor in op.factors) else np.zeros((batch, 0))
        unique_rows, inverse = np.unique(angle_rows, axis=0, return_inverse=True)
        dim = 2 ** len(op.targets[0])
        built = np.empty((dim, dim, unique_rows.shape[0]), dtype=complex)
        for u_index in range(unique_rows.shape[0]):
            built[:, :, u_index] = self._chain_matrix(op, unique_rows[u_index])
        base = built[:, :, inverse]  # (dim, dim, B)

        for t_index, target in enumerate(op.targets):
            shifted = [
                (column, site, s)
                for column, site, s in shifts_here
                if site.target == t_index
            ]
            matrices = base
            if shifted:
                matrices = base.copy()
                for column, site, s in shifted:
                    matrices[:, :, column] = self._chain_matrix(
                        op, angle_rows[column], shift_factor=site.factor, shift=s
                    )
            state = _contract_per_column(state, matrices, target, n)
        return state

    def _chain_matrix(
        self,
        op: _MatrixColumn,
        angles: np.ndarray,
        *,
        shift_factor: int = -1,
        shift: float = 0.0,
    ) -> np.ndarray:
        matrix = None
        cursor = 0
        for f_index, factor in enumerate(op.factors):
            count = len(factor.exprs)
            values = list(angles[cursor:cursor + count])
            cursor += count
            if f_index == shift_factor:
                values[0] += shift
            factor_matrix = factor.matrix_fn(values)
            matrix = factor_matrix if matrix is None else factor_matrix @ matrix
        return matrix

    def energies(self, X: np.ndarray) -> np.ndarray:
        """``<C>`` for every row of a ``(B, num_parameters)`` batch."""
        states = self.states(X)
        probs = states.real**2 + states.imag**2
        return self._cut_table() @ probs

    # -- gradient ----------------------------------------------------------

    def gradient(self, x: Sequence[float]) -> np.ndarray:
        """Exact parameter-shift gradient of :meth:`energy` at ``x``.

        All ``2 * num_shift_sites`` shifted evaluations run as one batched
        pass (chunked to bound memory) with the shift injected into the
        relevant op, instead of rebuilding a shifted circuit per site.
        """
        x = self._check_x(x)
        grad = np.zeros(self.num_parameters)
        sites = self.shift_sites
        if not sites:
            return grad
        for site in sites:
            if not site.shiftable:
                raise NotImplementedError(
                    f"no shift rule for gate '{site.gate_name}'"
                )
        specs: List[Tuple[_ShiftSite, float]] = []
        for site in sites:
            specs.append((site, +_SHIFT))
            specs.append((site, -_SHIFT))
        energies = np.empty(len(specs))
        chunk = max(1, (1 << 22) >> self.num_qubits)
        for start in range(0, len(specs), chunk):
            part = specs[start:start + chunk]
            X = np.tile(x, (len(part), 1))
            energies[start:start + len(part)] = self.energies_shifted(X, part)
        for k, site in enumerate(sites):
            site_grad = (energies[2 * k] - energies[2 * k + 1]) / 2.0
            for j, coeff in site.coeffs:
                grad[j] += coeff * site_grad
        return grad

    def energies_shifted(
        self, X: np.ndarray, shifts: Sequence[Optional[Tuple[_ShiftSite, float]]]
    ) -> np.ndarray:
        states = self.states(X, shifts)
        probs = states.real**2 + states.imag**2
        return self._cut_table() @ probs


# -- the compile pass ------------------------------------------------------


def compile_circuit(
    circuit: QuantumCircuit,
    parameters: Sequence[Parameter],
    *,
    initial_state: str = "0",
    graph: Optional[Graph] = None,
) -> CompiledProgram:
    """Lower ``circuit`` over the flat parameter ordering ``parameters``.

    ``initial_state`` is ``"0"`` or ``"+"``; pass ``graph`` to enable the
    max-cut ``energy``/``energies``/``gradient`` entry points.
    """
    n = circuit.num_qubits
    index = {param: j for j, param in enumerate(parameters)}
    if len(index) != len(parameters):
        raise ValueError("duplicate parameters in the compile-time ordering")
    instructions = list(circuit.instructions)
    source_gates = len(instructions)

    # Fold a complete leading Hadamard column into the |+>^n start.
    initial_label = initial_state
    if initial_state == "0":
        seen: set = set()
        cursor = 0
        while (
            cursor < len(instructions)
            and instructions[cursor].gate.name == "h"
            and instructions[cursor].qubits[0] not in seen
        ):
            seen.add(instructions[cursor].qubits[0])
            cursor += 1
        if len(seen) == n:
            instructions = instructions[cursor:]
            initial_label = "+"

    ops: List[object] = []
    sites: List[_ShiftSite] = []
    diag_run: List = []  # pending diagonal instructions
    sq_run: List = []  # pending non-diagonal single-qubit instructions

    def flush_diag() -> None:
        if not diag_run:
            return
        gen_const: Optional[np.ndarray] = None
        gen_by_param: Dict[int, np.ndarray] = {}
        atoms: List[_DiagAtom] = []
        op_index = len(ops)

        def add_const(vector: np.ndarray) -> None:
            nonlocal gen_const
            if gen_const is None:
                gen_const = np.zeros(2**n)
            gen_const += vector

        for instr in diag_run:
            spec = instr.gate.spec
            h_small, g0_small = spec.diag_phase
            if any(g0_small):
                add_const(_expand_diag(g0_small, instr.qubits, n))
            if spec.num_params == 0:
                continue
            terms, offset = _lower_expr(instr.gate.params[0], index)
            if offset:
                add_const(offset * _expand_diag(h_small, instr.qubits, n))
            if terms:
                h_full = _expand_diag(h_small, instr.qubits, n)
                for j, coeff in terms:
                    if j not in gen_by_param:
                        gen_by_param[j] = np.zeros(2**n)
                    gen_by_param[j] += coeff * h_full
                sites.append(
                    _ShiftSite(
                        op_index=op_index,
                        atom=len(atoms),
                        factor=-1,
                        target=-1,
                        coeffs=terms,
                        gate_name=spec.name,
                        shiftable=spec.name in SHIFT_RULE_GATES,
                    )
                )
                atoms.append(_DiagAtom(tuple(h_small), instr.qubits))
        diag_run.clear()

        if not gen_by_param:
            if gen_const is None:
                return  # a run of identity gates
            ops.append(
                _DiagBlock(
                    gen_const=None,
                    param_indices=np.empty(0, dtype=np.int64),
                    gens=np.empty((0, 2**n)),
                    atoms=[],
                    static_phase=np.exp(1j * gen_const),
                )
            )
            return
        indices = sorted(gen_by_param)
        ops.append(
            _DiagBlock(
                gen_const=gen_const,
                param_indices=np.asarray(indices, dtype=np.int64),
                gens=np.stack([gen_by_param[j] for j in indices]),
                atoms=atoms,
                static_phase=None,
            )
        )

    def make_factor(gate) -> _Factor:
        exprs = tuple(_lower_expr(value, index) for value in gate.params)
        return _Factor(
            name=gate.spec.name,
            matrix_fn=gate.spec.matrix_fn,
            exprs=exprs,
            has_free=any(terms for terms, _ in exprs),
        )

    def emit_column(
        targets: Tuple[Tuple[int, ...], ...], factors: Tuple[_Factor, ...]
    ) -> None:
        op_index = len(ops)
        static_matrix = None
        if not any(factor.has_free for factor in factors):
            matrix = None
            for factor in factors:
                values = [offset for _, offset in factor.exprs]
                factor_matrix = factor.matrix_fn(values)
                matrix = factor_matrix if matrix is None else factor_matrix @ matrix
            static_matrix = matrix
        ops.append(
            _MatrixColumn(targets=targets, factors=factors, static_matrix=static_matrix)
        )
        for t_index in range(len(targets)):
            for f_index, factor in enumerate(factors):
                if not factor.has_free:
                    continue
                sites.append(
                    _ShiftSite(
                        op_index=op_index,
                        atom=-1,
                        factor=f_index,
                        target=t_index,
                        coeffs=factor.exprs[0][0],
                        gate_name=factor.name,
                        shiftable=(
                            factor.name in SHIFT_RULE_GATES
                            and len(factor.exprs) == 1
                        ),
                    )
                )

    def flush_sq() -> None:
        if not sq_run:
            return
        # Group the run per qubit (distinct qubits commute, per-qubit order
        # is preserved), then share one op across qubits whose factor
        # chains are structurally identical — the weight-shared mixer case.
        per_qubit: Dict[int, List[_Factor]] = {}
        qubit_order: List[int] = []
        for instr in sq_run:
            qubit = instr.qubits[0]
            if qubit not in per_qubit:
                per_qubit[qubit] = []
                qubit_order.append(qubit)
            per_qubit[qubit].append(make_factor(instr.gate))
        sq_run.clear()
        groups: Dict[Tuple, List[int]] = {}
        group_order: List[Tuple] = []
        for qubit in qubit_order:
            signature = tuple(
                (factor.name, factor.exprs) for factor in per_qubit[qubit]
            )
            if signature not in groups:
                groups[signature] = []
                group_order.append(signature)
            groups[signature].append(qubit)
        for signature in group_order:
            qubits = groups[signature]
            emit_column(
                tuple((q,) for q in qubits), tuple(per_qubit[qubits[0]])
            )

    for instr in instructions:
        spec = instr.gate.spec
        if spec.is_diagonal:
            flush_sq()
            diag_run.append(instr)
        elif spec.num_qubits == 1:
            flush_diag()
            sq_run.append(instr)
        else:
            flush_diag()
            flush_sq()
            emit_column((instr.qubits,), (make_factor(instr.gate),))
    flush_diag()
    flush_sq()

    return CompiledProgram(
        num_qubits=n,
        num_parameters=len(parameters),
        ops=ops,
        shift_sites=sites,
        initial_state_label=initial_label,
        graph=graph,
        source_gates=source_gates,
    )


def compile_ansatz(ansatz: "QAOAAnsatz") -> CompiledProgram:
    """One-time lowering of a QAOA ansatz into its compiled program.

    The parameter ordering is the ansatz's flat ``[gammas..., betas...]``
    layout — the same vectors the optimizers drive — and the ansatz's
    graph is attached so the max-cut energy entry points are live.
    """
    return compile_circuit(
        ansatz.circuit,
        ansatz.parameters,
        initial_state=ansatz.initial_state_label,
        graph=ansatz.graph,
    )
