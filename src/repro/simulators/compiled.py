"""Compiled statevector evaluation: the optimizer's inner loop as pure NumPy.

The dense engine in :mod:`repro.simulators.statevector` is exact but pays
Python-object overhead on *every* energy call: the ansatz is re-bound into
a fresh :class:`~repro.circuits.circuit.QuantumCircuit`, every gate matrix
is re-materialized, and every ``apply_gate`` re-derives its contraction
metadata. None of that depends on the parameter values — only the angles
change between the ~200 COBYLA steps the Evaluator spends per candidate.

:func:`compile_circuit` runs once per candidate and lowers the symbolic
circuit into a :class:`CompiledProgram`, a flat list of three op kinds:

* **Fused diagonal blocks** — a maximal run of diagonal gates (the entire
  cost layer ``e^{-i gamma C}``, plus any adjacent ``rz``/``p``/``cz``
  mixer columns) collapses into per-parameter *generator vectors* built
  from each gate's :attr:`~repro.circuits.gates.GateSpec.diag_phase`
  (Lykov & Alexeev 2021's diagonal-gate observation, taken to its dense
  conclusion). Applying the block is one ``state *= exp(1j * (g0 + sum_j
  x_j * G_j))`` elementwise op, independent of how many gates it fuses.
* **Matrix columns** — a run of non-diagonal single-qubit gates is grouped
  per qubit (gates on distinct qubits commute) and chained into one 2x2
  product per qubit; qubits whose chain is structurally identical (the
  weight-shared mixer columns) share a single op whose matrix is built
  once per call and applied with a strided in-place kernel.
* **Static gates** — anything parameter-free has its matrix materialized
  at compile time; a complete leading Hadamard column is folded into the
  ``|+>^n`` initial state outright.

``CompiledProgram.energy(x)`` therefore runs the whole optimizer step with
zero circuit rebuilds, zero dict bindings, and zero matrix
re-materialization. ``energies(X)`` evaluates a batch of parameter vectors
through the same ops with a trailing batch axis, and ``gradient(x)``
implements the exact two-term parameter-shift rule by injecting per-column
shifts into a single batched run instead of reconstructing shifted
circuits per gate occurrence.

The array library itself is a knob: every array the program allocates is
born under an :class:`~repro.simulators.backends.ArrayBackend` (NumPy by
default — behavior and speed identical to the pre-backend engine — or a
CuPy/mock-GPU device backend), program constants are uploaded to the
device once and memoized, and results cross back to the host only through
``to_host`` at the public entry points. See
:mod:`repro.simulators.backends` for the seam and the registered
backends.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter, ParameterExpression
from repro.graphs.generators import Graph
from repro.simulators.backends import ArrayBackend, get_array_backend
from repro.simulators.expectation import bit_table, cut_values
from repro.simulators.statevector import plus_state, zero_state

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (qaoa imports us)
    from repro.qaoa.ansatz import QAOAAnsatz

__all__ = [
    "SHIFT_RULE_GATES",
    "CompiledProgram",
    "compile_ansatz",
    "compile_circuit",
]

#: gates whose expectation is single-frequency in the angle, so the exact
#: two-term shift rule applies (shared with repro.qaoa.energy)
SHIFT_RULE_GATES = frozenset({"rx", "ry", "rz", "p", "rzz", "rxx", "cp"})

_SHIFT = np.pi / 2

#: linear angle expression lowered to flat-parameter indices:
#: ``(((j, coeff), ...), offset)``
_Expr = tuple[tuple[tuple[int, float], ...], float]


def _lower_expr(value, index: dict[Parameter, int]) -> _Expr:
    """Lower a gate angle (number or linear expression) to index space."""
    if isinstance(value, ParameterExpression):
        try:
            terms = tuple(
                (index[param], coeff) for param, coeff in value.terms.items()
            )
        except KeyError:
            unknown = sorted(
                p.name for p in value.parameters if p not in index
            )
            raise ValueError(
                f"circuit uses parameters {unknown} missing from the "
                "compile-time parameter ordering"
            ) from None
        return terms, value.offset
    return (), float(value)


def _eval_expr(expr: _Expr, x: np.ndarray) -> float:
    terms, offset = expr
    return offset + sum(coeff * x[j] for j, coeff in terms)


def _eval_expr_batch(expr: _Expr, X: np.ndarray) -> np.ndarray:
    terms, offset = expr
    out = np.full(X.shape[0], offset)
    for j, coeff in terms:
        out += coeff * X[:, j]
    return out


def _expand_diag(small: np.ndarray, qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Lift a ``2^m`` per-gate vector to the full ``2^n`` basis."""
    bits = bit_table(num_qubits)
    local = np.zeros(2**num_qubits, dtype=np.int64)
    for j, q in enumerate(qubits):
        local += bits[:, q].astype(np.int64) << j
    return np.asarray(small)[local]


# -- compiled op kinds ----------------------------------------------------


@dataclass(frozen=True)
class _DiagAtom:
    """One parameterized diagonal gate occurrence inside a fused block,
    kept in compact per-gate form so gradient shifts can re-expand it."""

    h_small: tuple[float, ...]
    qubits: tuple[int, ...]


@dataclass
class _DiagBlock:
    """A maximal run of diagonal gates fused into phase-exponent vectors."""

    #: parameter-independent part of the exponent (None when zero)
    gen_const: np.ndarray | None
    #: flat indices of the parameters this block depends on
    param_indices: np.ndarray
    #: ``(k, 2^n)`` generator vectors, one row per parameter above
    gens: np.ndarray
    #: per-occurrence generators for parameter-shift injection
    atoms: list[_DiagAtom]
    #: ``exp(1j * gen_const)`` precomputed when the block is parameter-free
    static_phase: np.ndarray | None


@dataclass(frozen=True)
class _Factor:
    """One primitive gate inside a fused matrix chain."""

    name: str
    matrix_fn: object
    exprs: tuple[_Expr, ...]
    has_free: bool


@dataclass
class _MatrixColumn:
    """One factor chain applied to each of several disjoint qubit tuples.

    For the weight-shared mixer columns all qubits carry the identical
    chain, so the matrix is built once per call and applied n times.
    """

    targets: tuple[tuple[int, ...], ...]
    factors: tuple[_Factor, ...]
    #: precomputed product when no factor has free parameters
    static_matrix: np.ndarray | None


@dataclass(frozen=True)
class _ShiftSite:
    """One parameterized gate occurrence, addressable for a shift rule."""

    op_index: int
    #: atom index for diagonal occurrences, -1 otherwise
    atom: int
    #: (factor, target) indices for matrix occurrences, (-1, -1) otherwise
    factor: int
    target: int
    coeffs: tuple[tuple[int, float], ...]
    gate_name: str
    shiftable: bool


# -- kernels ---------------------------------------------------------------


def _apply_1q(
    state: np.ndarray, matrix: np.ndarray, qubit: int, backend: ArrayBackend
) -> np.ndarray:
    """Strided in-place 2x2 apply on a flat (or flattened-batch) state.

    ``state`` may be ``(2^n,)`` or a ``(2^n, B)`` batch — either way bit
    ``qubit`` of the basis index has stride ``2^qubit * B``, so one
    reshape exposes it as the middle axis. Mutates (and returns) ``state``,
    copying first only if it is not C-contiguous — a reshape of a
    non-contiguous array would silently write into a throwaway copy.
    ``state`` and ``matrix`` must live under ``backend``.
    """
    if not state.flags.c_contiguous:
        state = backend.xp.ascontiguousarray(state)
    inner = (1 << qubit) * (state.size // state.shape[0])
    view = state.reshape(-1, 2, inner)
    a = view[:, 0, :]
    b = view[:, 1, :]
    new_a = matrix[0, 0] * a + matrix[0, 1] * b
    view[:, 1, :] = matrix[1, 0] * a + matrix[1, 1] * b
    view[:, 0, :] = new_a
    return state


def _contract(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
    backend: ArrayBackend,
) -> np.ndarray:
    """Lean apply_gate: same contraction, validation and reshape math done
    at compile time. Supports trailing batch axes."""
    m = len(qubits)
    batch_shape = state.shape[1:]
    tensor = state.reshape((2,) * num_qubits + batch_shape)
    gate_tensor = matrix.reshape((2,) * (2 * m))
    axes = [num_qubits - 1 - qubits[j] for j in reversed(range(m))]
    moved = backend.tensordot(
        gate_tensor, tensor, axes=(list(range(m, 2 * m)), axes)
    )
    result = backend.moveaxis(moved, list(range(m)), axes)
    return result.reshape(state.shape)


def _batch_mat_rx(angles: np.ndarray) -> np.ndarray:
    half = angles / 2.0
    c, s = np.cos(half), np.sin(half)
    out = np.empty((angles.size, 2, 2), dtype=complex)
    out[:, 0, 0] = c
    out[:, 0, 1] = -1j * s
    out[:, 1, 0] = -1j * s
    out[:, 1, 1] = c
    return out


def _batch_mat_ry(angles: np.ndarray) -> np.ndarray:
    half = angles / 2.0
    c, s = np.cos(half), np.sin(half)
    out = np.empty((angles.size, 2, 2), dtype=complex)
    out[:, 0, 0] = c
    out[:, 0, 1] = -s
    out[:, 1, 0] = s
    out[:, 1, 1] = c
    return out


#: vectorized (angle-vector -> (U, 2, 2)) builders for the hot mixer
#: rotations; chains of anything else fall back to the per-row loop
_BATCH_MATRIX_FNS = {"rx": _batch_mat_rx, "ry": _batch_mat_ry}


def _kron_pairs(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Per-point ``kron(hi, lo)``: ``(B, d, d)`` x ``(B, e, e)`` stacks
    -> ``(B, d*e, d*e)``."""
    dim = hi.shape[1] * lo.shape[1]
    return np.einsum("bij,bkl->bikjl", hi, lo).reshape(hi.shape[0], dim, dim)


def _apply_1q_per_column(
    state: np.ndarray, matrices: np.ndarray, qubit: int, backend: ArrayBackend
) -> np.ndarray:
    """Apply a different 2x2 matrix to every batch column on one qubit.

    ``state`` is ``(2^n, B)``; ``matrices`` is ``(2, 2, B)``. In the
    C-contiguous layout the batch index is the fastest axis, so exposing
    bit ``qubit`` as its own axis leaves ``B`` trailing — the per-column
    matrix entries then broadcast straight across it, turning the apply
    into six ufunc sweeps instead of a per-qubit einsum contraction.
    Mutates (and returns) ``state``; copies first only if non-contiguous.
    """
    if not state.flags.c_contiguous:
        state = backend.xp.ascontiguousarray(state)
    batch = state.shape[1]
    view = state.reshape(-1, 2, 1 << qubit, batch)
    a = view[:, 0]
    b = view[:, 1]
    new_a = matrices[0, 0] * a + matrices[0, 1] * b
    view[:, 1] = matrices[1, 0] * a + matrices[1, 1] * b
    view[:, 0] = new_a
    return state


def _contract_per_column(
    state: np.ndarray,
    matrices: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
    backend: ArrayBackend,
) -> np.ndarray:
    """Apply a different ``2^m x 2^m`` matrix to every batch column.

    ``state`` is ``(2^n, B)``; ``matrices`` is ``(2^m, 2^m, B)``.
    """
    m = len(qubits)
    batch = state.shape[1]
    axes = [num_qubits - 1 - qubits[j] for j in reversed(range(m))]
    tensor = state.reshape((2,) * num_qubits + (batch,))
    moved = backend.moveaxis(tensor, axes, range(m))
    rest = moved.shape[m:]
    view = moved.reshape((2**m, -1, batch))
    out = backend.einsum("ijb,jrb->irb", matrices, view)
    out = out.reshape((2,) * m + rest)
    out = backend.moveaxis(out, range(m), axes)
    return out.reshape(state.shape)


# -- the program -----------------------------------------------------------


class CompiledProgram:
    """A lowered circuit: flat vectorized ops over a fixed parameter order.

    Produced by :func:`compile_circuit` / :func:`compile_ansatz`; see the
    module docstring for the op kinds. All evaluation entry points take
    flat parameter vectors in the compile-time ordering.
    """

    def __init__(
        self,
        num_qubits: int,
        num_parameters: int,
        ops: list[object],
        shift_sites: list[_ShiftSite],
        initial_state_label: str,
        graph: Graph | None,
        source_gates: int,
        backend: ArrayBackend | str | None = None,
        cost_values: np.ndarray | None = None,
    ) -> None:
        self.num_qubits = num_qubits
        self.num_parameters = num_parameters
        self.ops = ops
        self.shift_sites = shift_sites
        self.initial_state_label = initial_state_label
        self.graph = graph
        #: gate count of the source circuit (fusion diagnostics)
        self.source_gates = source_gates
        #: the array backend every evaluation runs under (see
        #: :mod:`repro.simulators.backends`); program constants are
        #: uploaded to it lazily, once, via :meth:`_dev`
        self.backend = get_array_backend(backend if backend is not None else "numpy")
        self._device: dict[int, object] = {}
        # the objective diagonal `energy`/`energies` contract against: an
        # explicit workload table when given, else the graph's MaxCut cuts
        # (the seed behavior — the maxcut workload passes the identical
        # memoized cut_values array, so this path stays bit-for-bit)
        if cost_values is not None:
            self._cut = np.asarray(cost_values, dtype=float)
            if self._cut.shape != (2**num_qubits,):
                raise ValueError(
                    f"cost_values has shape {self._cut.shape}; expected "
                    f"({2**num_qubits},) for {num_qubits} qubits"
                )
        else:
            self._cut = None if graph is None else cut_values(graph)
        # Atom generators expanded to the full basis, memoized per distinct
        # (h_small, qubits): a cost-layer edge appears once per QAOA layer,
        # so this caches p-fold fewer vectors than storing one per atom
        # while sparing the gradient path any repeated expansion.
        self._atom_vectors: dict[tuple, np.ndarray] = {}
        # Batched-path memos: per-op unique-value decompositions of diagonal
        # generators (phase lookup tables) and exp(1j * s * atom) vectors
        # for the +-pi/2 gradient shifts.
        self._diag_lookups: dict[int, tuple] = {}
        self._atom_shift_phases: dict[tuple, np.ndarray] = {}

    # -- introspection -----------------------------------------------------

    @property
    def num_ops(self) -> int:
        """Fused op count — compare against :attr:`source_gates`."""
        return len(self.ops)

    @property
    def num_shift_sites(self) -> int:
        """Parameterized gate occurrences (2 energy evals each per
        gradient, matching the dense engine's accounting)."""
        return len(self.shift_sites)

    # -- single evaluation -------------------------------------------------

    def _dev(self, host: np.ndarray):
        """Device-resident view of a *persistent* host constant.

        Program constants (generator vectors, static phases, the cut
        table, memoized atom vectors) are built on the host at compile
        time and uploaded through ``backend.asarray`` the first time an
        evaluation touches them; the upload is memoized by object
        identity, so a device backend pays one transfer per constant per
        program lifetime. On the NumPy backend this is the identity.
        """
        key = id(host)
        dev = self._device.get(key)
        if dev is None:
            dev = self.backend.asarray(host)
            self._device[key] = dev
        return dev

    def _initial_state(self):
        """A fresh device-resident initial state (safe to mutate)."""
        if self.initial_state_label == "+":
            return self.backend.asarray(plus_state(self.num_qubits))
        if self.initial_state_label == "0":
            return self.backend.asarray(zero_state(self.num_qubits))
        raise ValueError(
            f"unknown initial state label {self.initial_state_label!r}"
        )

    def _atom_vector(self, atom: _DiagAtom) -> np.ndarray:
        key = (atom.h_small, atom.qubits)
        vector = self._atom_vectors.get(key)
        if vector is None:
            vector = _expand_diag(atom.h_small, atom.qubits, self.num_qubits)
            self._atom_vectors[key] = vector
        return vector

    def _atom_shift_phase(self, atom: _DiagAtom, shift: float) -> np.ndarray:
        """``exp(1j * shift * atom_generator)`` memoized per (atom, shift):
        the gradient's +-pi/2 shifts reuse two vectors per distinct edge
        generator instead of re-exponentiating every call."""
        key = (atom.h_small, atom.qubits, shift)
        phase = self._atom_shift_phases.get(key)
        if phase is None:
            phase = np.exp(1j * shift * self._atom_vector(atom))
            self._atom_shift_phases[key] = phase
        return phase

    def _diag_lookup(self, op_index: int, op: _DiagBlock) -> tuple:
        """Unique-value decomposition of a diag block's phase exponent.

        The exponent column at basis state ``z`` is ``const[z] + sum_j x_j
        gens[j, z]``; a cost layer takes only ~num_edges distinct values
        over all 2^n basis states, so exponentials are computed per
        *unique* column and gathered — O(B*U) exps plus an O(B*2^n) take
        instead of O(B*2^n) exps. Returns ``(gens_u, const_u, inverse)``
        as device-resident arrays; ``inverse`` is None when the block is
        too dense to pay off. The decomposition itself runs on the host
        (it is a one-time compile-style pass), only the results live on
        the backend.
        """
        cached = self._diag_lookups.get(op_index)
        if cached is None:
            if op.gen_const is None:
                rows = op.gens
            else:
                rows = np.vstack([op.gen_const[None, :], op.gens])
            unique_cols, inverse = np.unique(rows, axis=1, return_inverse=True)
            asarray = self.backend.asarray
            if unique_cols.shape[1] * 4 > rows.shape[1]:
                cached = (None, None, None)  # dense block: exp directly
            elif op.gen_const is None:
                cached = (asarray(unique_cols), None, asarray(inverse.reshape(-1)))
            else:
                cached = (
                    asarray(unique_cols[1:]),
                    asarray(unique_cols[0]),
                    asarray(inverse.reshape(-1)),
                )
            self._diag_lookups[op_index] = cached
        return cached

    def _check_x(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float).reshape(-1)
        if x.shape[0] != self.num_parameters:
            raise ValueError(
                f"expected {self.num_parameters} parameters, got {x.shape[0]}"
            )
        return x

    def state(self, x: Sequence[float]) -> np.ndarray:
        """The final statevector at the flat parameter vector ``x``, as a
        host array.

        (Shifted evaluations for the gradient's parameter-shift rule go
        through the batched :meth:`states` path, which injects shifts per
        column — there is deliberately no single-state shift variant.)
        """
        return self.backend.to_host(self._state_device(self._check_x(x)))

    def _state_device(self, x: np.ndarray):
        """:meth:`state` without the final device→host crossing; ``x`` is
        an already-validated host vector."""
        backend = self.backend
        xp = backend.xp
        state = self._initial_state()
        n = self.num_qubits
        for op in self.ops:
            if isinstance(op, _DiagBlock):
                if op.static_phase is not None:
                    state = backend.multiply(
                        state, self._dev(op.static_phase), out=state
                    )
                    continue
                exponent = xp.dot(
                    backend.asarray(x[op.param_indices]), self._dev(op.gens)
                )
                if op.gen_const is not None:
                    exponent = exponent + self._dev(op.gen_const)
                state = backend.multiply(state, backend.exp(1j * exponent), out=state)
            else:
                if op.static_matrix is not None:
                    matrix = self._dev(op.static_matrix)
                else:
                    matrix = backend.asarray(self._column_matrix(op, x))
                if len(op.targets) == n and len(op.targets[0]) == 1:
                    # The column covers every qubit with one shared 2x2 (the
                    # weight-shared mixer case): rotate the leading qubit
                    # axis through a small gemm n times. Each product takes
                    # (2, 2^{n-1}) -> (2^{n-1}, 2), cycling the axis order
                    # left, so after n rounds every qubit has been hit once
                    # and the layout is back where it started — one BLAS
                    # call per qubit instead of eight strided ufunc sweeps.
                    transposed = matrix.T
                    for _ in range(n):
                        state = state.reshape(2, -1).T @ transposed
                    state = state.reshape(-1)
                    continue
                for target in op.targets:
                    if len(target) == 1:
                        state = _apply_1q(state, matrix, target[0], backend)
                    else:
                        state = _contract(state, matrix, target, n, backend)
        return state

    def _column_matrix(self, op: _MatrixColumn, x: np.ndarray) -> np.ndarray:
        if op.static_matrix is not None:
            return op.static_matrix
        matrix = None
        for factor in op.factors:
            values = [_eval_expr(e, x) for e in factor.exprs]
            factor_matrix = factor.matrix_fn(values)
            matrix = factor_matrix if matrix is None else factor_matrix @ matrix
        return matrix

    def energy(self, x: Sequence[float]) -> float:
        """``<C>`` of the attached graph at ``x``."""
        state = self._state_device(self._check_x(x))
        probs = state.real**2 + state.imag**2
        value = self.backend.xp.dot(probs, self._dev(self._cut_table()))
        return float(self.backend.to_host(value))

    def _cut_table(self) -> np.ndarray:
        if self._cut is None:
            raise ValueError(
                "program was compiled without a graph; only state() is available"
            )
        return self._cut

    # -- batched evaluation ------------------------------------------------

    def states(
        self,
        X: np.ndarray,
        _shifts: Sequence[tuple[_ShiftSite, float] | None] | None = None,
    ) -> np.ndarray:
        """Final statevectors of a ``(B, num_parameters)`` batch, as
        ``(2^n, B)`` host columns."""
        xp = self.backend.xp
        return self.backend.to_host(
            xp.ascontiguousarray(self._states_batch(X, _shifts).T)
        )

    def _states_batch(
        self,
        X: np.ndarray,
        shifts: Sequence[tuple[_ShiftSite, float] | None] | None = None,
    ) -> np.ndarray:
        """Batch-major final statevectors: row ``b`` is the state at
        ``X[b]``. The batch axis leads so every per-point quantity (diag
        exponents, probabilities, cut energies) stays row-contiguous and
        the per-column matrix applies reduce to stacked gemms.

        ``X`` stays on the host (angle-expression evaluation and dedup
        are host bookkeeping) and is uploaded once as ``Xd``; the state
        and every per-basis-state quantity live on the array backend.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.num_parameters:
            raise ValueError(
                f"expected batch of {self.num_parameters}-parameter rows, "
                f"got shape {X.shape}"
            )
        batch = X.shape[0]
        by_op: dict[int, list[tuple[int, _ShiftSite, float]]] = {}
        if shifts is not None:
            for column, entry in enumerate(shifts):
                if entry is not None:
                    site, s = entry
                    by_op.setdefault(site.op_index, []).append((column, site, s))

        backend = self.backend
        xp = backend.xp
        Xd = backend.asarray(X)
        state = xp.empty((batch, 2**self.num_qubits), dtype=complex)
        state[:] = self._initial_state()
        for op_index, op in enumerate(self.ops):
            shifts_here = by_op.get(op_index, ())
            if isinstance(op, _DiagBlock):
                if op.static_phase is not None:
                    # broadcasts across rows
                    state = backend.multiply(
                        state, self._dev(op.static_phase), out=state
                    )
                    continue
                gens_u, const_u, inverse = self._diag_lookup(op_index, op)
                if inverse is not None:
                    # few distinct generator values: exponentiate unique
                    # columns, gather, and fold gradient shifts in as
                    # cached per-atom phase factors
                    exponent_u = Xd[:, self._dev(op.param_indices)] @ gens_u
                    if const_u is not None:
                        exponent_u += const_u
                    phases = backend.take(
                        backend.exp(1j * exponent_u), inverse, axis=1
                    )
                    for column, site, s in shifts_here:
                        phases[column] *= self._dev(
                            self._atom_shift_phase(op.atoms[site.atom], s)
                        )
                    state = backend.multiply(state, phases, out=state)
                    continue
                exponent = Xd[:, self._dev(op.param_indices)] @ self._dev(op.gens)
                if op.gen_const is not None:
                    exponent += self._dev(op.gen_const)
                for column, site, s in shifts_here:
                    exponent[column] += s * self._dev(
                        self._atom_vector(op.atoms[site.atom])
                    )
                state = backend.multiply(state, backend.exp(1j * exponent), out=state)
            else:
                # gradient batches tile one x across 2*sites rows, so
                # matrix columns dedup their angle rows before building
                state = self._apply_column_batch(
                    op, state, X, shifts_here, dedup=shifts is not None
                )
        return state

    def _column_matrices(
        self,
        op: _MatrixColumn,
        X: np.ndarray,
        dedup: bool,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-point chain matrices ``(B, dim, dim)`` plus the raw angle
        rows (for shift re-builds).

        ``dedup`` collapses duplicate angle rows before building — worth
        it on gradient batches (one x tiled 2*sites times carries a
        handful of distinct combinations), pure overhead on optimizer
        batches whose rows are all distinct.
        """
        batch = X.shape[0]
        angle_rows = np.stack(
            [
                _eval_expr_batch(expr, X)
                for factor in op.factors
                for expr in factor.exprs
            ],
            axis=1,
        ) if any(factor.exprs for factor in op.factors) else np.zeros((batch, 0))
        if dedup:
            unique_rows, inverse = np.unique(
                angle_rows, axis=0, return_inverse=True
            )
            inverse = inverse.reshape(-1)
        else:
            unique_rows, inverse = angle_rows, None
        dim = 2 ** len(op.targets[0])
        num_unique = unique_rows.shape[0]
        if dim == 2 and all(
            not factor.exprs
            or (len(factor.exprs) == 1 and factor.name in _BATCH_MATRIX_FNS)
            for factor in op.factors
        ):
            # mixer-chain fast path: build all unique 2x2 factors from the
            # whole angle vector at once and chain them as stacked matmuls
            built = None
            cursor = 0
            for factor in op.factors:
                if factor.exprs:
                    stack = _BATCH_MATRIX_FNS[factor.name](
                        unique_rows[:, cursor]
                    )
                    cursor += 1
                else:
                    stack = np.broadcast_to(
                        factor.matrix_fn([]), (num_unique, 2, 2)
                    )
                built = stack if built is None else stack @ built
        else:
            built = np.empty((num_unique, dim, dim), dtype=complex)
            for u_index in range(num_unique):
                built[u_index] = self._chain_matrix(op, unique_rows[u_index])
        if inverse is not None:
            built = built[inverse]
        return np.ascontiguousarray(built), angle_rows

    def _apply_column_batch(
        self,
        op: _MatrixColumn,
        state: np.ndarray,
        X: np.ndarray,
        shifts_here: Sequence[tuple[int, _ShiftSite, float]],
        dedup: bool = False,
    ) -> np.ndarray:
        """Apply one matrix column to a batch-major ``(B, 2^n)`` state.

        The chain matrices themselves are built on the host (tiny per-point
        stacks, heavy Python bookkeeping) and uploaded right before the
        device gemms — the natural host→device transfer point a real GPU
        backend pays per column.
        """
        n = self.num_qubits
        batch = state.shape[0]
        backend = self.backend
        xp = backend.xp
        if op.static_matrix is not None and not shifts_here:
            static_dev = self._dev(op.static_matrix)
            for target in op.targets:
                if len(target) == 1:
                    # the flat view's bit strides match the single-state
                    # case, so the strided 2x2 kernel applies unchanged
                    state = _apply_1q(
                        state.reshape(-1), static_dev, target[0], backend
                    ).reshape(batch, -1)
                else:
                    work = xp.ascontiguousarray(state.T)
                    work = _contract(work, static_dev, target, n, backend)
                    state = xp.ascontiguousarray(work.T)
            return state

        base_stack, angle_rows = self._column_matrices(op, X, dedup)

        if len(op.targets) == n and len(op.targets[0]) == 1:
            # The column covers every qubit with per-point 2x2 chains (the
            # weight-shared mixer case): run the scalar engine's rotating
            # trick as stacked gemms over qubit *groups*. Each round
            # exposes the next group of original qubits as the leading
            # basis bits of every row; right-multiplying the
            # (B, 2^{n-g}, 2^g) view by the per-point kron'd (B, 2^g, 2^g)
            # stack cycles the axis order left by g, so once the group
            # sizes sum to n every qubit has been hit once and the layout
            # is back where it started. Grouping (4s, then a 2, then a 1)
            # cuts gemm dispatches and fattens their inner dimension —
            # measurably faster than per-qubit or per-pair rounds.
            shifts_by_target: dict[int, list[tuple[int, _ShiftSite, float]]] = {}
            for column, site, s in shifts_here:
                shifts_by_target.setdefault(site.target, []).append(
                    (column, site, s)
                )
            qubit_to_target = {
                target[0]: t_index for t_index, target in enumerate(op.targets)
            }

            def qubit_stack(qubit: int) -> np.ndarray:
                shifted = shifts_by_target.get(qubit_to_target[qubit], ())
                if not shifted:
                    return base_stack
                stack = base_stack.copy()
                for column, site, s in shifted:
                    stack[column] = self._chain_matrix(
                        op, angle_rows[column], shift_factor=site.factor, shift=s
                    )
                return stack

            group_sizes: list[int] = []
            remaining = n
            while remaining >= 4:
                group_sizes.append(4)
                remaining -= 4
            if remaining >= 2:
                group_sizes.append(2)
                remaining -= 2
            if remaining:
                group_sizes.append(1)

            shared: dict[int, np.ndarray] = {1: base_stack}
            shared_T: dict[int, np.ndarray] = {}

            def shared_group(size: int) -> np.ndarray:
                stack = shared.get(size)
                if stack is None:
                    half = shared_group(size // 2)
                    shared[size] = stack = _kron_pairs(half, half)
                return stack

            top = n - 1
            for size in group_sizes:
                qubits = [top - j for j in range(size)]
                top -= size
                if all(
                    not shifts_by_target.get(qubit_to_target[q]) for q in qubits
                ):
                    group_T = shared_T.get(size)
                    if group_T is None:
                        group_T = backend.asarray(
                            np.ascontiguousarray(
                                shared_group(size).transpose(0, 2, 1)
                            )
                        )
                        shared_T[size] = group_T
                else:
                    group = qubit_stack(qubits[0])
                    for qubit in qubits[1:]:
                        group = _kron_pairs(group, qubit_stack(qubit))
                    group_T = backend.asarray(
                        np.ascontiguousarray(group.transpose(0, 2, 1))
                    )
                dim = 1 << size
                state = (
                    state.reshape(batch, dim, -1).transpose(0, 2, 1) @ group_T
                ).reshape(batch, -1)
            return state

        # General fallback (multi-qubit targets, partial columns): the
        # trailing-batch kernels on a transposed view. Matrix stacks are
        # assembled (and shift-patched) on the host, uploaded per target.
        work = xp.ascontiguousarray(state.T)
        base_trailing = np.ascontiguousarray(np.moveaxis(base_stack, 0, -1))
        base_trailing_dev = None
        for t_index, target in enumerate(op.targets):
            shifted = [
                (column, site, s)
                for column, site, s in shifts_here
                if site.target == t_index
            ]
            if shifted:
                patched = base_trailing.copy()
                for column, site, s in shifted:
                    patched[:, :, column] = self._chain_matrix(
                        op, angle_rows[column], shift_factor=site.factor, shift=s
                    )
                matrices = backend.asarray(patched)
            else:
                if base_trailing_dev is None:
                    base_trailing_dev = backend.asarray(base_trailing)
                matrices = base_trailing_dev
            if len(target) == 1:
                work = _apply_1q_per_column(work, matrices, target[0], backend)
            else:
                work = _contract_per_column(work, matrices, target, n, backend)
        return xp.ascontiguousarray(work.T)

    def _chain_matrix(
        self,
        op: _MatrixColumn,
        angles: np.ndarray,
        *,
        shift_factor: int = -1,
        shift: float = 0.0,
    ) -> np.ndarray:
        matrix = None
        cursor = 0
        for f_index, factor in enumerate(op.factors):
            count = len(factor.exprs)
            values = list(angles[cursor:cursor + count])
            cursor += count
            if f_index == shift_factor:
                values[0] += shift
            factor_matrix = factor.matrix_fn(values)
            matrix = factor_matrix if matrix is None else factor_matrix @ matrix
        return matrix

    def energies(self, X: np.ndarray) -> np.ndarray:
        """``<C>`` for every row of a ``(B, num_parameters)`` batch."""
        return self._cut_energies(self._states_batch(X))

    def _cut_energies(self, states) -> np.ndarray:
        """Row-wise ``sum_z |amp|^2 cut(z)`` without materializing the
        probability matrix (two single-pass contractions on the backend;
        only the ``(B,)`` energy vector crosses back to the host)."""
        cut = self._dev(self._cut_table())
        values = self.backend.einsum(
            "bz,bz,z->b", states.real, states.real, cut
        ) + self.backend.einsum(
            "bz,bz,z->b", states.imag, states.imag, cut
        )
        return self.backend.to_host(values)

    # -- gradient ----------------------------------------------------------

    def gradient(self, x: Sequence[float]) -> np.ndarray:
        """Exact parameter-shift gradient of :meth:`energy` at ``x``.

        All ``2 * num_shift_sites`` shifted evaluations run as one batched
        pass (chunked to bound memory) with the shift injected into the
        relevant op, instead of rebuilding a shifted circuit per site.
        """
        return self.gradients(self._check_x(x)[None, :])[0]

    def gradients(self, X: np.ndarray) -> np.ndarray:
        """Parameter-shift gradients for every row of a ``(B,
        num_parameters)`` batch, as ``(B, num_parameters)``.

        The ``B * 2 * num_shift_sites`` shifted evaluations of the whole
        batch share the chunked :meth:`energies_shifted` passes — the seam
        batch-native gradient optimizers (Adam over a restart population)
        ride instead of looping per-point :meth:`gradient` calls.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.num_parameters:
            raise ValueError(
                f"expected batch of {self.num_parameters}-parameter rows, "
                f"got shape {X.shape}"
            )
        batch = X.shape[0]
        grads = np.zeros((batch, self.num_parameters))
        sites = self.shift_sites
        if not sites or batch == 0:
            return grads
        for site in sites:
            if not site.shiftable:
                raise NotImplementedError(
                    f"no shift rule for gate '{site.gate_name}'"
                )
        specs: list[tuple[_ShiftSite, float]] = []
        for site in sites:
            specs.append((site, +_SHIFT))
            specs.append((site, -_SHIFT))
        per_point = len(specs)
        total = batch * per_point
        energies = np.empty(total)
        chunk = max(1, (1 << 22) >> self.num_qubits)
        for start in range(0, total, chunk):
            rows = np.arange(start, min(start + chunk, total))
            energies[rows] = self.energies_shifted(
                X[rows // per_point], [specs[r % per_point] for r in rows]
            )
        paired = energies.reshape(batch, len(sites), 2)
        for k, site in enumerate(sites):
            site_grad = (paired[:, k, 0] - paired[:, k, 1]) / 2.0
            for j, coeff in site.coeffs:
                grads[:, j] += coeff * site_grad
        return grads

    def energies_shifted(
        self, X: np.ndarray, shifts: Sequence[tuple[_ShiftSite, float] | None]
    ) -> np.ndarray:
        return self._cut_energies(self._states_batch(X, shifts))


# -- the compile pass ------------------------------------------------------


def compile_circuit(
    circuit: QuantumCircuit,
    parameters: Sequence[Parameter],
    *,
    initial_state: str = "0",
    graph: Graph | None = None,
    backend: ArrayBackend | str | None = None,
    cost_values: np.ndarray | None = None,
) -> CompiledProgram:
    """Lower ``circuit`` over the flat parameter ordering ``parameters``.

    ``initial_state`` is ``"0"`` or ``"+"``; pass ``graph`` to enable the
    ``energy``/``energies``/``gradient`` entry points, and optionally
    ``cost_values`` (a ``(2^n,)`` objective diagonal from a
    :mod:`repro.workloads` workload) to contract against something other
    than the graph's MaxCut table. ``backend`` selects the array backend
    the program evaluates under — a registered name or an
    :class:`~repro.simulators.backends.ArrayBackend` instance (default
    ``"numpy"``); the compile pass itself always runs on the host.
    """
    n = circuit.num_qubits
    index = {param: j for j, param in enumerate(parameters)}
    if len(index) != len(parameters):
        raise ValueError("duplicate parameters in the compile-time ordering")
    instructions = list(circuit.instructions)
    source_gates = len(instructions)

    # Fold a complete leading Hadamard column into the |+>^n start.
    initial_label = initial_state
    if initial_state == "0":
        seen: set = set()
        cursor = 0
        while (
            cursor < len(instructions)
            and instructions[cursor].gate.name == "h"
            and instructions[cursor].qubits[0] not in seen
        ):
            seen.add(instructions[cursor].qubits[0])
            cursor += 1
        if len(seen) == n:
            instructions = instructions[cursor:]
            initial_label = "+"

    ops: list[object] = []
    sites: list[_ShiftSite] = []
    diag_run: list = []  # pending diagonal instructions
    sq_run: list = []  # pending non-diagonal single-qubit instructions

    def flush_diag() -> None:
        if not diag_run:
            return
        gen_const: np.ndarray | None = None
        gen_by_param: dict[int, np.ndarray] = {}
        atoms: list[_DiagAtom] = []
        op_index = len(ops)

        def add_const(vector: np.ndarray) -> None:
            nonlocal gen_const
            if gen_const is None:
                gen_const = np.zeros(2**n)
            gen_const += vector

        for instr in diag_run:
            spec = instr.gate.spec
            h_small, g0_small = spec.diag_phase
            if any(g0_small):
                add_const(_expand_diag(g0_small, instr.qubits, n))
            if spec.num_params == 0:
                continue
            terms, offset = _lower_expr(instr.gate.params[0], index)
            if offset:
                add_const(offset * _expand_diag(h_small, instr.qubits, n))
            if terms:
                h_full = _expand_diag(h_small, instr.qubits, n)
                for j, coeff in terms:
                    if j not in gen_by_param:
                        gen_by_param[j] = np.zeros(2**n)
                    gen_by_param[j] += coeff * h_full
                sites.append(
                    _ShiftSite(
                        op_index=op_index,
                        atom=len(atoms),
                        factor=-1,
                        target=-1,
                        coeffs=terms,
                        gate_name=spec.name,
                        shiftable=spec.name in SHIFT_RULE_GATES,
                    )
                )
                atoms.append(_DiagAtom(tuple(h_small), instr.qubits))
        diag_run.clear()

        if not gen_by_param:
            if gen_const is None:
                return  # a run of identity gates
            ops.append(
                _DiagBlock(
                    gen_const=None,
                    param_indices=np.empty(0, dtype=np.int64),
                    gens=np.empty((0, 2**n)),
                    atoms=[],
                    static_phase=np.exp(1j * gen_const),
                )
            )
            return
        indices = sorted(gen_by_param)
        ops.append(
            _DiagBlock(
                gen_const=gen_const,
                param_indices=np.asarray(indices, dtype=np.int64),
                gens=np.stack([gen_by_param[j] for j in indices]),
                atoms=atoms,
                static_phase=None,
            )
        )

    def make_factor(gate) -> _Factor:
        exprs = tuple(_lower_expr(value, index) for value in gate.params)
        return _Factor(
            name=gate.spec.name,
            matrix_fn=gate.spec.matrix_fn,
            exprs=exprs,
            has_free=any(terms for terms, _ in exprs),
        )

    def emit_column(
        targets: tuple[tuple[int, ...], ...], factors: tuple[_Factor, ...]
    ) -> None:
        op_index = len(ops)
        static_matrix = None
        if not any(factor.has_free for factor in factors):
            matrix = None
            for factor in factors:
                values = [offset for _, offset in factor.exprs]
                factor_matrix = factor.matrix_fn(values)
                matrix = factor_matrix if matrix is None else factor_matrix @ matrix
            static_matrix = matrix
        ops.append(
            _MatrixColumn(targets=targets, factors=factors, static_matrix=static_matrix)
        )
        for t_index in range(len(targets)):
            for f_index, factor in enumerate(factors):
                if not factor.has_free:
                    continue
                sites.append(
                    _ShiftSite(
                        op_index=op_index,
                        atom=-1,
                        factor=f_index,
                        target=t_index,
                        coeffs=factor.exprs[0][0],
                        gate_name=factor.name,
                        shiftable=(
                            factor.name in SHIFT_RULE_GATES
                            and len(factor.exprs) == 1
                        ),
                    )
                )

    def flush_sq() -> None:
        if not sq_run:
            return
        # Group the run per qubit (distinct qubits commute, per-qubit order
        # is preserved), then share one op across qubits whose factor
        # chains are structurally identical — the weight-shared mixer case.
        per_qubit: dict[int, list[_Factor]] = {}
        qubit_order: list[int] = []
        for instr in sq_run:
            qubit = instr.qubits[0]
            if qubit not in per_qubit:
                per_qubit[qubit] = []
                qubit_order.append(qubit)
            per_qubit[qubit].append(make_factor(instr.gate))
        sq_run.clear()
        groups: dict[tuple, list[int]] = {}
        group_order: list[tuple] = []
        for qubit in qubit_order:
            signature = tuple(
                (factor.name, factor.exprs) for factor in per_qubit[qubit]
            )
            if signature not in groups:
                groups[signature] = []
                group_order.append(signature)
            groups[signature].append(qubit)
        for signature in group_order:
            qubits = groups[signature]
            emit_column(
                tuple((q,) for q in qubits), tuple(per_qubit[qubits[0]])
            )

    for instr in instructions:
        spec = instr.gate.spec
        if spec.is_diagonal:
            flush_sq()
            diag_run.append(instr)
        elif spec.num_qubits == 1:
            flush_diag()
            sq_run.append(instr)
        else:
            flush_diag()
            flush_sq()
            emit_column((instr.qubits,), (make_factor(instr.gate),))
    flush_diag()
    flush_sq()

    return CompiledProgram(
        num_qubits=n,
        num_parameters=len(parameters),
        ops=ops,
        shift_sites=sites,
        initial_state_label=initial_label,
        graph=graph,
        source_gates=source_gates,
        backend=backend,
        cost_values=cost_values,
    )


def compile_ansatz(
    ansatz: QAOAAnsatz, *, backend: ArrayBackend | str | None = None
) -> CompiledProgram:
    """One-time lowering of a QAOA ansatz into its compiled program.

    The parameter ordering is the ansatz's flat ``[gammas..., betas...]``
    layout — the same vectors the optimizers drive — and the ansatz's
    graph plus its workload's objective diagonal are attached so the
    energy entry points are live for whichever problem built the ansatz.
    ``backend`` picks the array backend evaluations run under (see
    :mod:`repro.simulators.backends`; default ``"numpy"``).
    """
    from repro.workloads import get_workload

    workload = getattr(ansatz, "workload", "maxcut") or "maxcut"
    cost = (
        None
        if ansatz.graph is None
        else get_workload(workload).objective_values(ansatz.graph)
    )
    return compile_circuit(
        ansatz.circuit,
        ansatz.parameters,
        initial_state=ansatz.initial_state_label,
        graph=ansatz.graph,
        backend=backend,
        cost_values=cost,
    )
