"""Observable expectation values on state vectors.

The quantities the evaluator needs every optimizer step:

* :func:`cut_values` — the max-cut objective of Eq. (1) evaluated for all
  ``2^n`` bitstrings at once (vectorized bit tricks, cached per graph);
* :func:`maxcut_expectation` — ``<psi| C |psi> = p . cut_values`` where
  ``p = |psi|^2``;
* :func:`pauli_expectation` — general Pauli-string expectations, used as a
  test oracle and by the analytic-QAOA checks.

Bit convention matches :mod:`repro.simulators.statevector`: qubit ``k`` is
bit ``k`` of the basis index.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.circuits.gates import gate_matrix
from repro.graphs.generators import Graph
from repro.simulators.statevector import apply_gate

__all__ = [
    "bit_table",
    "cut_values",
    "maxcut_expectation",
    "z_expectations",
    "zz_expectation",
    "pauli_expectation",
]


@lru_cache(maxsize=32)
def bit_table(num_qubits: int) -> np.ndarray:
    """``(2^n, n)`` array: entry ``[i, k]`` is bit ``k`` of index ``i``.

    Cached — every expectation on ``n`` qubits reuses the same table.
    """
    indices = np.arange(2**num_qubits, dtype=np.int64)
    return ((indices[:, None] >> np.arange(num_qubits)) & 1).astype(np.int8)


#: largest node count whose cut table is worth pinning in memory
#: (2^16 floats = 512 KiB per entry; beyond that, recompute on demand)
_CUT_MEMO_MAX_NODES = 16


def _compute_cut_values(graph: Graph) -> np.ndarray:
    bits = bit_table(graph.num_nodes)
    edges = graph.edge_array()
    if edges.shape[0] == 0:
        return np.zeros(2**graph.num_nodes)
    crossing = bits[:, edges[:, 0]] ^ bits[:, edges[:, 1]]  # (2^n, m)
    return crossing @ graph.weight_array()


@lru_cache(maxsize=256)
def _cut_values_table(graph: Graph) -> np.ndarray:
    """The memoized cut table of one graph (read-only; see cut_values)."""
    values = _compute_cut_values(graph)
    values.setflags(write=False)
    return values


def cut_values(graph: Graph) -> np.ndarray:
    """Cut weight of every bitstring: ``C(z)`` from Eq. (1) for all z.

    ``C(z) = sum_{(u,v) in E} w_uv * (1 - z_u z_v) / 2`` with
    ``z_i = 1 - 2 b_i``; the ``(1 - z_u z_v)/2`` factor is exactly
    ``b_u XOR b_v``, so the whole table is one XOR + one matvec.

    Memoized per graph up to 16 nodes: :class:`~repro.graphs.generators.
    Graph` hashes by edge/weight content, so the ``(2^n, m)`` XOR + matvec
    runs once per distinct graph instead of on every one of the ~200 x
    graphs x candidates energy calls of a search. The memoized array is
    shared and marked read-only — copy before mutating. Larger graphs
    (brute-force callers go to 24 nodes, 134 MB per table) are computed
    on demand so the cache cannot pin gigabytes.
    """
    if graph.num_nodes > _CUT_MEMO_MAX_NODES:
        return _compute_cut_values(graph)
    return _cut_values_table(graph)


def maxcut_expectation(state: np.ndarray, graph: Graph) -> float:
    """``<C>`` of Eq. (1) for the given state."""
    probs = np.abs(state) ** 2
    return float(probs @ cut_values(graph))


def z_expectations(state: np.ndarray, num_qubits: int) -> np.ndarray:
    """``<Z_k>`` for every qubit ``k`` as a length-``n`` vector."""
    probs = np.abs(state) ** 2
    z = 1.0 - 2.0 * bit_table(num_qubits)  # (2^n, n)
    return probs @ z


def zz_expectation(state: np.ndarray, u: int, v: int, num_qubits: int) -> float:
    """``<Z_u Z_v>``."""
    probs = np.abs(state) ** 2
    bits = bit_table(num_qubits)
    zz = (1.0 - 2.0 * bits[:, u]) * (1.0 - 2.0 * bits[:, v])
    return float(probs @ zz)


_PAULI_NAMES = {"I": "id", "X": "x", "Y": "y", "Z": "z"}


def pauli_expectation(state: np.ndarray, pauli: str) -> float:
    """Expectation of a Pauli string like ``"XIZY"``.

    Character ``j`` of the string acts on qubit ``j`` (little-endian order,
    consistent with everything else). Computed as ``<psi| P |psi>`` by
    applying the string gate-by-gate; exact, intended for tests.
    """
    n = len(pauli)
    if state.shape[0] != 2**n:
        raise ValueError(
            f"Pauli string length {n} does not match state dimension {state.shape[0]}"
        )
    transformed = state
    for qubit, label in enumerate(pauli):
        try:
            gate_name = _PAULI_NAMES[label.upper()]
        except KeyError:
            raise ValueError(f"invalid Pauli character {label!r} in {pauli!r}") from None
        if gate_name == "id":
            continue
        transformed = apply_gate(transformed, gate_matrix(gate_name), [qubit], n)
    value = np.vdot(state, transformed)
    if abs(value.imag) > 1e-9:
        raise AssertionError(
            f"Pauli expectation has imaginary part {value.imag:.3g}; "
            "state or string is inconsistent"
        )
    return float(value.real)
