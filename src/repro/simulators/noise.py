"""Noise channels and a density-matrix simulator.

The paper targets NISQ-era circuit discovery; while its evaluation is
noiseless, a search package users would adopt needs to rank candidates
under noise too (a short-depth mixer wins precisely because it accumulates
less error). This module provides standard single-qubit Kraus channels and
an exact density-matrix simulator for small registers, wired into the
evaluator through :class:`NoiseModel`.

A density matrix on ``n`` qubits is stored flat as ``(2^n, 2^n)``; gates
and Kraus operators are applied through the same tensordot machinery as the
state-vector path by treating rho's column index as a batch axis (for
``U rho U^\\dagger``, apply ``U`` to the columns of ``rho^\\dagger`` twice).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.simulators.statevector import apply_gate
from repro.utils.validation import check_probability

__all__ = [
    "KrausChannel",
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "amplitude_damping_channel",
    "NoiseModel",
    "DensityMatrixSimulator",
]


@dataclass(frozen=True)
class KrausChannel:
    """A CPTP map given by Kraus operators ``{K_i}`` with sum K^d K = I."""

    name: str
    operators: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        dim = self.operators[0].shape[0]
        total = np.zeros((dim, dim), dtype=complex)
        for op in self.operators:
            if op.shape != (dim, dim):
                raise ValueError("Kraus operators must share a square shape")
            total += op.conj().T @ op
        if not np.allclose(total, np.eye(dim), atol=1e-10):
            raise ValueError(f"channel '{self.name}' is not trace preserving")

    @property
    def num_qubits(self) -> int:
        return int(np.log2(self.operators[0].shape[0]))


def depolarizing_channel(p: float) -> KrausChannel:
    """With probability ``p`` replace the qubit state by the maximally mixed
    state (uniform X/Y/Z error decomposition)."""
    p = check_probability(p, "p")
    i = np.eye(2, dtype=complex)
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    z = np.array([[1, 0], [0, -1]], dtype=complex)
    return KrausChannel(
        f"depolarizing({p})",
        (
            np.sqrt(1 - 3 * p / 4) * i,
            np.sqrt(p / 4) * x,
            np.sqrt(p / 4) * y,
            np.sqrt(p / 4) * z,
        ),
    )


def bit_flip_channel(p: float) -> KrausChannel:
    """X error with probability ``p``."""
    p = check_probability(p, "p")
    i = np.eye(2, dtype=complex)
    x = np.array([[0, 1], [1, 0]], dtype=complex)
    return KrausChannel(f"bit_flip({p})", (np.sqrt(1 - p) * i, np.sqrt(p) * x))


def phase_flip_channel(p: float) -> KrausChannel:
    """Z error with probability ``p``."""
    p = check_probability(p, "p")
    i = np.eye(2, dtype=complex)
    z = np.array([[1, 0], [0, -1]], dtype=complex)
    return KrausChannel(f"phase_flip({p})", (np.sqrt(1 - p) * i, np.sqrt(p) * z))


def amplitude_damping_channel(gamma: float) -> KrausChannel:
    """T1 relaxation toward |0> with damping parameter ``gamma``."""
    gamma = check_probability(gamma, "gamma")
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=complex)
    return KrausChannel(f"amplitude_damping({gamma})", (k0, k1))


@dataclass
class NoiseModel:
    """Attach channels to gate names; applied to each touched qubit after
    the (noiseless) gate. ``default`` applies when a gate name has no
    specific entry."""

    per_gate: dict[str, KrausChannel] = field(default_factory=dict)
    default: KrausChannel | None = None

    def channel_for(self, gate_name: str) -> KrausChannel | None:
        return self.per_gate.get(gate_name, self.default)

    def is_trivial(self) -> bool:
        return not self.per_gate and self.default is None


def _apply_unitary_to_rho(
    rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], n: int
) -> np.ndarray:
    """``U rho U^\\dagger`` via two batched state-vector applications."""
    # Columns: treat rho as a batch of column vectors -> U rho.
    left = apply_gate(rho, matrix, qubits, n)
    # Rows: (U rho U^+) = (U (U rho)^+)^+.
    return apply_gate(left.conj().T.copy(), matrix, qubits, n).conj().T


def _apply_channel_to_rho(
    rho: np.ndarray, channel: KrausChannel, qubit: int, n: int
) -> np.ndarray:
    out = np.zeros_like(rho)
    for op in channel.operators:
        out += _apply_unitary_to_rho_raw(rho, op, [qubit], n)
    return out


def _apply_unitary_to_rho_raw(
    rho: np.ndarray, matrix: np.ndarray, qubits: Sequence[int], n: int
) -> np.ndarray:
    """Like :func:`_apply_unitary_to_rho` but without requiring unitarity
    (Kraus operators are generally non-unitary)."""
    left = apply_gate(rho, matrix, qubits, n)
    return apply_gate(left.conj().T.copy(), matrix, qubits, n).conj().T


class DensityMatrixSimulator:
    """Exact open-system simulation for small ``n`` (cost ``4^n``)."""

    name = "density_matrix"

    def __init__(self, noise_model: NoiseModel | None = None) -> None:
        self.noise_model = noise_model or NoiseModel()

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: np.ndarray | None = None,
        bindings: Mapping | None = None,
    ) -> np.ndarray:
        """Return the final density matrix.

        ``initial_state`` may be a pure state vector (promoted to a
        projector) or a density matrix.
        """
        n = circuit.num_qubits
        dim = 2**n
        if initial_state is None:
            rho = np.zeros((dim, dim), dtype=complex)
            rho[0, 0] = 1.0
        else:
            arr = np.asarray(initial_state, dtype=complex)
            rho = np.outer(arr, arr.conj()) if arr.ndim == 1 else arr.copy()
        if rho.shape != (dim, dim):
            raise ValueError(f"initial state shape {rho.shape} != {(dim, dim)}")
        bindings = bindings or {}
        for instr in circuit.instructions:
            rho = _apply_unitary_to_rho(rho, instr.gate.matrix(bindings), instr.qubits, n)
            channel = self.noise_model.channel_for(instr.gate.name)
            if channel is not None:
                for q in instr.qubits:
                    rho = _apply_channel_to_rho(rho, channel, q, n)
        return rho

    @staticmethod
    def expectation(rho: np.ndarray, observable_diagonal: np.ndarray) -> float:
        """``Tr(rho diag(d))`` for a computational-basis-diagonal observable
        (the max-cut cost is one)."""
        return float(np.real(np.diag(rho) @ observable_diagonal))
