"""Dense state-vector simulation.

The reference simulator: exact, simple, and fast enough for the paper's
10-qubit workloads (1024 amplitudes). The tensor-network engine in
:mod:`repro.qtensor` is cross-validated against this module on every
circuit family the search produces.

Implementation notes (following the NumPy-performance guidance this repo is
built under): a state on ``n`` qubits is viewed as an ``n``-dimensional
``(2, ..., 2)`` tensor and gates are applied with ``tensordot`` +
``moveaxis`` — no ``2^n x 2^n`` matrices are ever materialized, every
operation is a vectorized contraction over views.

Conventions:

* qubit ``k`` is bit ``k`` of the basis index (little-endian, Qiskit-style),
  so in the reshaped tensor qubit ``k`` lives on axis ``n - 1 - k``;
* for an ``m``-qubit gate applied to ``(q_0, ..., q_{m-1})``, bit ``j`` of
  the gate-matrix index corresponds to ``q_j`` (see
  :mod:`repro.circuits.gates`).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import Parameter
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive

__all__ = [
    "zero_state",
    "plus_state",
    "basis_state",
    "apply_gate",
    "simulate",
    "circuit_unitary",
    "sample_counts",
    "StatevectorSimulator",
]


def zero_state(num_qubits: int) -> np.ndarray:
    """|0...0> as a flat complex vector."""
    n = check_positive(num_qubits, "num_qubits")
    state = np.zeros(2**n, dtype=complex)
    state[0] = 1.0
    return state


def plus_state(num_qubits: int) -> np.ndarray:
    """|+>^{\\otimes n} — QAOA's initial state |s>."""
    n = check_positive(num_qubits, "num_qubits")
    return np.full(2**n, 2.0 ** (-n / 2), dtype=complex)


def basis_state(num_qubits: int, index: int) -> np.ndarray:
    """Computational basis state |index>."""
    n = check_positive(num_qubits, "num_qubits")
    if not 0 <= index < 2**n:
        raise ValueError(f"basis index {index} out of range for {n} qubits")
    state = np.zeros(2**n, dtype=complex)
    state[index] = 1.0
    return state


def apply_gate(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply an ``m``-qubit gate matrix to ``state`` (flat, length ``2^n``).

    Works for any ``m`` and any (distinct) target qubits. Also accepts a
    state carrying trailing batch axes (shape ``(2^n, batch...)``), which
    :func:`circuit_unitary` exploits to push all identity columns through
    the circuit at once.
    """
    m = len(qubits)
    if matrix.shape != (2**m, 2**m):
        raise ValueError(f"matrix shape {matrix.shape} does not match {m} qubits")
    if len(set(qubits)) != m:
        raise ValueError(f"duplicate target qubits {qubits}")
    batch_shape = state.shape[1:]
    tensor = state.reshape((2,) * num_qubits + batch_shape)
    # Gate matrix index bit j <-> qubits[j]; reshaped axes are
    # (out_{m-1}..out_0, in_{m-1}..in_0).
    gate_tensor = matrix.reshape((2,) * (2 * m))
    # State axis of qubit k is n-1-k; contract inputs high-bit-first.
    target_axes = [num_qubits - 1 - qubits[j] for j in reversed(range(m))]
    moved = np.tensordot(gate_tensor, tensor, axes=(list(range(m, 2 * m)), target_axes))
    # New axes sit at the front ordered (out_{m-1}..out_0); send them home.
    result = np.moveaxis(moved, list(range(m)), target_axes)
    return result.reshape((2**num_qubits,) + batch_shape)


def simulate(
    circuit: QuantumCircuit,
    initial_state: np.ndarray | None = None,
    bindings: Mapping[Parameter, float] | None = None,
) -> np.ndarray:
    """Run ``circuit`` and return the final flat state vector.

    ``bindings`` resolves any symbolic parameters; unbound parameters raise
    with the offending names.
    """
    n = circuit.num_qubits
    state = zero_state(n) if initial_state is None else np.asarray(initial_state, dtype=complex)
    if state.shape[0] != 2**n:
        raise ValueError(
            f"initial state has dimension {state.shape[0]}, expected {2**n}"
        )
    state = state.copy()
    bindings = bindings or {}
    for instr in circuit.instructions:
        state = apply_gate(state, instr.gate.matrix(bindings), instr.qubits, n)
    return state


def circuit_unitary(
    circuit: QuantumCircuit,
    bindings: Mapping[Parameter, float] | None = None,
) -> np.ndarray:
    """The full ``2^n x 2^n`` unitary of a (small) circuit.

    Columns are basis-state images, pushed through the circuit as one
    batched state; intended for testing and for n <= ~10.
    """
    n = circuit.num_qubits
    state = np.eye(2**n, dtype=complex)  # column j = |j>
    bindings = bindings or {}
    for instr in circuit.instructions:
        state = apply_gate(state, instr.gate.matrix(bindings), instr.qubits, n)
    return state


def sample_counts(
    state: np.ndarray,
    shots: int,
    *,
    seed=None,
) -> dict[int, int]:
    """Sample measurement outcomes in the computational basis.

    Returns a sparse ``{basis_index: count}`` histogram.
    """
    check_positive(shots, "shots")
    probs = np.abs(state) ** 2
    total = probs.sum()
    if not np.isclose(total, 1.0, atol=1e-8):
        raise ValueError(f"state is not normalized (|psi|^2 sums to {total:.6g})")
    rng = as_rng(seed)
    outcomes = rng.choice(len(probs), size=shots, p=probs / total)
    values, counts = np.unique(outcomes, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


class StatevectorSimulator:
    """Object façade over the functional API (mirrors the backend protocol
    used by :mod:`repro.qtensor.backends`, so the evaluator can swap
    simulation engines)."""

    name = "statevector"

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: np.ndarray | None = None,
        bindings: Mapping[Parameter, float] | None = None,
    ) -> np.ndarray:
        return simulate(circuit, initial_state, bindings)

    def unitary(self, circuit: QuantumCircuit, bindings=None) -> np.ndarray:
        return circuit_unitary(circuit, bindings)
