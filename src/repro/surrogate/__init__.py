"""Surrogate-assisted evaluation: learn from the result stream, rank
candidate pools, and spend real simulator time on the predicted-top
slice (plus a seeded exploration floor).

Public surface:

* :class:`~repro.surrogate.config.SurrogateConfig` — one frozen
  dataclass of knobs, carried on ``SearchConfig.surrogate`` and folded
  into depth-checkpoint fingerprints.
* :class:`~repro.surrogate.model.SurrogateModel` — the tiny
  Embedding→LSTM→Dense regressor (on :mod:`repro.ml` layers) trained
  online from completed evaluations.
* :class:`~repro.surrogate.cost.CostModel` — measured-seconds
  regression that replaces the static shard-placement heuristic.
* :class:`~repro.surrogate.ranking.SurrogateAssistant` — the runtime
  integration (train → rank → account).
* :class:`~repro.surrogate.ranking.SurrogateRankedPredictor` — the same
  ranking as a wrapper around any base
  :class:`~repro.core.predictor.Predictor`.
"""

from repro.surrogate.config import SurrogateConfig
from repro.surrogate.cost import CostModel
from repro.surrogate.model import SurrogateModel
from repro.surrogate.ranking import (
    SurrogateAssistant,
    SurrogateRankedPredictor,
    rank_and_select,
)

__all__ = [
    "CostModel",
    "SurrogateAssistant",
    "SurrogateConfig",
    "SurrogateModel",
    "SurrogateRankedPredictor",
    "rank_and_select",
]
