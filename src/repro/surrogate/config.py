"""Configuration of the surrogate-assisted evaluation layer.

One frozen dataclass fixes everything about how a sweep's surrogate
behaves: whether it runs at all, how aggressively it prunes
(``keep_fraction``), how much unconditional exploration survives the
pruning (``explore_floor``), when the ranker is trusted enough to start
filtering (``min_observations``), and the model hyperparameters. The
settings are part of the sweep's *checkpoint* fingerprint (see
:class:`~repro.core.runtime.SearchRuntime`) so a surrogate-assisted
sweep can never restore — or be restored by — a plain sweep's depth
checkpoints, while individual candidate evaluations (pure functions of
the :class:`~repro.core.evaluator.EvaluationConfig`) stay shared across
both.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

__all__ = ["SurrogateConfig"]


@dataclass(frozen=True)
class SurrogateConfig:
    """Knobs of surrogate-assisted candidate ranking for one sweep."""

    #: master switch; off keeps the exact pre-surrogate behaviour
    enabled: bool = False
    #: fraction of each depth's candidate pool forwarded to real
    #: evaluation once the ranker is trained (the predicted-top slice)
    keep_fraction: float = 0.5
    #: fraction of the pool evaluated *regardless* of predicted rank —
    #: a seeded uniform sample that keeps the surrogate from locking in
    #: a bad prior; 1.0 degenerates to the unfiltered search
    explore_floor: float = 0.1
    #: completed evaluations the model must have seen before it is
    #: allowed to filter anything (until then every candidate passes)
    min_observations: int = 8
    #: token-embedding width of the sequence encoder
    embedding_dim: int = 16
    #: LSTM hidden width of the sequence encoder
    hidden_dim: int = 32
    #: Adam learning rate of the online training loop
    learning_rate: float = 0.05
    #: full-batch epochs per training round (one round per finished depth)
    train_epochs: int = 60
    #: seed for model init and the exploration-floor draws
    seed: int = 0
    #: also fit the evaluation-cost model (measured ``seconds`` →
    #: shard placement) from the same result stream
    cost_model: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.keep_fraction <= 1.0:
            raise ValueError(
                f"keep_fraction must be in (0, 1], got {self.keep_fraction}"
            )
        if not 0.0 <= self.explore_floor <= 1.0:
            raise ValueError(
                f"explore_floor must be in [0, 1], got {self.explore_floor}"
            )
        if self.min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {self.min_observations}"
            )
        for name in ("embedding_dim", "hidden_dim", "train_epochs"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.learning_rate <= 0.0:
            raise ValueError(
                f"learning_rate must be > 0, got {self.learning_rate}"
            )

    def fingerprint(self) -> str:
        """Stable hash of every setting — folded into the sweep's depth
        checkpoint fingerprints so surrogate and plain runs never alias."""
        blob = json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
