"""Learned evaluation-cost model: measured seconds → shard placement.

:func:`~repro.core.runtime.predicted_cost` is the static heuristic the
sharded runtime has balanced placement on since PR 4 — ``p * (len(tokens)
+ 1)``, proportional to parameter count. It ignores everything the
optimizer actually does (engine, graph sizes, how quickly a candidate
converges). Every completed evaluation already measures the truth
(:attr:`~repro.core.results.CandidateEvaluation.seconds`), so this model
fits that signal and replaces the heuristic for *placement* once enough
observations accrue — the second consumer of the surrogate layer's
result stream (the first decides *what* to evaluate, this one decides
*where* to run it).

The fit is a tiny least-squares regression on candidate shape features
``[1, p, len(tokens), p * (len(tokens) + 1)]`` — refit after every depth
costs microseconds, predictions are clamped positive so the greedy
least-loaded partitioner always sees valid loads, and an unfitted model
falls back to the static heuristic, so placement never degrades below
the PR-4 behaviour. Placement changes where work runs, never what it
computes, so no fingerprint involves this model.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.runtime import predicted_cost

__all__ = ["CostModel"]

#: least-squares needs at least as many rows as features, with headroom
_MIN_OBSERVATIONS = 8


def _features(tokens: Sequence[str], p: int) -> np.ndarray:
    length = len(tokens)
    return np.array([1.0, float(p), float(length), float(p) * (length + 1)])


class CostModel:
    """Per-candidate evaluation-seconds predictor, fit from measurements."""

    def __init__(self, *, min_observations: int = _MIN_OBSERVATIONS) -> None:
        if min_observations < 4:  # number of features
            raise ValueError(
                f"min_observations must be >= 4, got {min_observations}"
            )
        self.min_observations = min_observations
        self._rows: list[np.ndarray] = []
        self._seconds: list[float] = []
        self._coef: np.ndarray | None = None
        self._dirty = False
        self.observations = 0

    def observe(self, tokens: Sequence[str], p: int, seconds: float) -> None:
        if seconds < 0.0:
            return
        self._rows.append(_features(tokens, p))
        self._seconds.append(float(seconds))
        self.observations += 1
        self._dirty = True

    def fit(self) -> None:
        """Refit the least-squares coefficients if new rows arrived."""
        if not self._dirty or len(self._rows) < self.min_observations:
            return
        X = np.stack(self._rows)
        y = np.array(self._seconds)
        self._coef, *_ = np.linalg.lstsq(X, y, rcond=None)
        self._dirty = False

    @property
    def fitted(self) -> bool:
        return self._coef is not None

    def predict(self, tokens: Sequence[str], p: int) -> float:
        """Predicted evaluation seconds; the static ``p * (len + 1)``
        heuristic until fitted, and never below a positive floor (the
        least-loaded partitioner divides by total load)."""
        if self._coef is None:
            return predicted_cost(tokens, p)
        return float(max(_features(tokens, p) @ self._coef, 1e-9))
