"""The learned ranker: a token-sequence regressor on :mod:`repro.ml`.

``SurrogateModel`` maps a candidate ``(tokens, p)`` to a predicted
evaluation outcome (the trained reward, by default) without touching a
simulator: tokens run through an :class:`~repro.ml.layers.Embedding` →
:class:`~repro.ml.layers.LSTMCell` encoder, the final hidden state plus
a scaled depth feature feeds a :class:`~repro.ml.layers.Dense`
regression head. Training is online: the runtime streams every
completed :class:`~repro.core.results.CandidateEvaluation` into
:meth:`observe`, and :meth:`fit` (called before the next depth ranks)
replays the buffer for a few full-batch Adam epochs against
z-normalized targets — the same hand-written backward passes the
gradient-check suite pins (``tests/ml/test_gradcheck.py``).

The model is deliberately tiny and deterministic (seeded init, seeded
nothing-else — full-batch training has no draw order), so a sweep's
ranking decisions are reproducible run to run.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.alphabet import GateAlphabet
from repro.ml.layers import Dense, Embedding, LSTMCell
from repro.ml.optim import AdamUpdater, clip_gradients

__all__ = ["SurrogateModel"]


class SurrogateModel:
    """Online ``(tokens, p) -> predicted value`` regressor for ranking.

    ``observe`` buffers training rows, ``fit`` trains on the whole buffer
    (cheap at search scale: a few hundred rows through a 32-wide LSTM),
    ``predict`` scores one candidate and ``predict_many`` a pool. Scores
    are in the target's units (denormalized), so ranking by descending
    prediction means "highest expected reward first" — the same ordering
    Algorithm 1's SELECT_BEST uses.
    """

    def __init__(
        self,
        alphabet: GateAlphabet,
        *,
        embedding_dim: int = 16,
        hidden_dim: int = 32,
        learning_rate: float = 0.05,
        train_epochs: int = 60,
        grad_clip: float = 5.0,
        max_buffer: int = 4096,
        seed: int = 0,
    ) -> None:
        self.alphabet = alphabet
        self.hidden_dim = hidden_dim
        self.train_epochs = train_epochs
        self.grad_clip = grad_clip
        self.max_buffer = max_buffer
        self.embedding = Embedding(alphabet.size, embedding_dim, seed=seed)
        self.lstm = LSTMCell(embedding_dim, hidden_dim, seed=seed + 1)
        # +1 input: the scaled depth feature rides next to the final h.
        self.head = Dense(hidden_dim + 1, 1, seed=seed + 2)
        self._layers = [self.embedding, self.lstm, self.head]
        self._updater = AdamUpdater(self._layers, lr=learning_rate)
        self._buffer: list[tuple[tuple[int, ...], int, float]] = []
        self._dirty = False
        #: z-normalization of targets, refreshed at each fit
        self._mean = 0.0
        self._std = 1.0
        self.observations = 0
        self.fits = 0

    # -- data ---------------------------------------------------------------

    def observe(self, tokens: Sequence[str], p: int, target: float) -> None:
        """Buffer one completed evaluation (its trained reward, typically)."""
        ids = tuple(self.alphabet.index(t) for t in tokens)
        if not ids:
            return
        self._buffer.append((ids, int(p), float(target)))
        if len(self._buffer) > self.max_buffer:
            del self._buffer[: len(self._buffer) - self.max_buffer]
        self.observations += 1
        self._dirty = True

    @property
    def trained(self) -> bool:
        return self.fits > 0

    # -- forward / backward -------------------------------------------------

    def _forward(self, ids: Sequence[int], p: int):
        h, c = self.lstm.initial_state()
        caches = []
        for token_id in ids:
            x, e_cache = self.embedding.forward(token_id)
            h, c, l_cache = self.lstm.forward(x, h, c)
            caches.append((e_cache, l_cache))
        features = np.concatenate([h, [0.25 * p]])
        prediction, d_cache = self.head.forward(features)
        return float(prediction[0]), (caches, d_cache)

    def _backward(self, dprediction: float, cache) -> None:
        caches, d_cache = cache
        dfeatures = self.head.backward(np.array([dprediction]), d_cache)
        dh = dfeatures[: self.hidden_dim]  # the p feature has no parameters
        dc = np.zeros(self.hidden_dim)
        for e_cache, l_cache in reversed(caches):
            dx, dh, dc = self.lstm.backward(dh, dc, l_cache)
            self.embedding.backward(dx, e_cache)

    # -- training -----------------------------------------------------------

    def fit(self) -> float | None:
        """Train on the buffer if new rows arrived; returns the final
        epoch's mean-squared error (in z-units), or None if nothing new."""
        if not self._dirty or len(self._buffer) < 2:
            return None
        targets = np.array([row[2] for row in self._buffer])
        self._mean = float(targets.mean())
        self._std = float(targets.std()) or 1.0
        z = (targets - self._mean) / self._std
        n = len(self._buffer)
        loss = 0.0
        for _ in range(self.train_epochs):
            self._updater.zero_grad()
            loss = 0.0
            for (ids, p, _), z_target in zip(self._buffer, z):
                prediction, cache = self._forward(ids, p)
                error = prediction - z_target
                loss += error * error / n
                self._backward(2.0 * error / n, cache)
            clip_gradients(self._layers, self.grad_clip)
            self._updater.step()
        self.fits += 1
        self._dirty = False
        return float(loss)

    # -- inference ----------------------------------------------------------

    def predict(self, tokens: Sequence[str], p: int) -> float:
        """Predicted target (denormalized) for one candidate."""
        ids = [self.alphabet.index(t) for t in tokens]
        z, _ = self._forward(ids, p)
        return z * self._std + self._mean

    def predict_many(
        self, candidates: Sequence[Sequence[str]], p: int
    ) -> np.ndarray:
        return np.array([self.predict(tokens, p) for tokens in candidates])
