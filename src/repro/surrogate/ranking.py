"""Surrogate-assisted candidate selection: rank the pool, evaluate a slice.

Two consumers share the selection rule in :func:`rank_and_select`:

* :class:`SurrogateAssistant` — the sweep-side integration the runtime
  owns when ``SearchConfig.surrogate.enabled``: it trains the
  :class:`~repro.surrogate.model.SurrogateModel` (and the
  :class:`~repro.surrogate.cost.CostModel`) on each finished depth's
  evaluations, then pre-ranks the next depth's candidate pool and
  forwards only the predicted-top slice — plus the seeded exploration
  floor — to real evaluation.
* :class:`SurrogateRankedPredictor` — the same idea as a standalone
  :class:`~repro.core.predictor.Predictor` wrapper: any base predictor's
  proposals are ranked by a surrogate trained on the rewards fed back
  through ``update``, for search loops that drive predictors directly.

Selection invariants, relied on by the equivalence tests: the kept
subset preserves the pool's original order (so depth fingerprints and
INTERP hand-offs see a stable list), at least one candidate always
survives, nothing is filtered until the model has both trained and seen
``min_observations`` rows, and ``explore_floor=1.0`` keeps the entire
pool — the degenerate case that makes a surrogate-on sweep bit-identical
to a surrogate-off one.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence

import numpy as np

from repro.core.alphabet import GateAlphabet
from repro.core.predictor import Predictor
from repro.core.results import CandidateEvaluation
from repro.obs.metrics import MetricsRegistry
from repro.surrogate.config import SurrogateConfig
from repro.surrogate.cost import CostModel
from repro.surrogate.model import SurrogateModel
from repro.utils.rng import as_rng, stable_seed

__all__ = ["SurrogateAssistant", "SurrogateRankedPredictor", "rank_and_select"]

#: histogram buckets for ranking latency (a pool is scored in milliseconds)
_RANKING_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


def rank_and_select(
    scores: np.ndarray,
    *,
    keep_fraction: float,
    explore_floor: float,
    rng,
) -> list[int]:
    """Indices to keep from a scored pool, in original-pool order.

    The predicted-top ``keep_fraction`` slice (ties broken by pool
    position — stable sort) is unioned with a uniform ``explore_floor``
    sample drawn from the *whole* pool, so a candidate the surrogate
    mis-ranks still has a seeded chance at real evaluation every depth.
    """
    n = len(scores)
    keep = max(1, math.ceil(keep_fraction * n))
    order = np.argsort(-np.asarray(scores, dtype=float), kind="stable")
    chosen = set(order[:keep].tolist())
    floor = math.ceil(explore_floor * n)
    if floor:
        chosen.update(
            int(i) for i in as_rng(rng).choice(n, size=floor, replace=False)
        )
    return sorted(chosen)


class SurrogateAssistant:
    """One sweep's surrogate layer: value model + cost model + accounting.

    Owned by :class:`~repro.core.runtime.SearchRuntime` when the search
    config enables the surrogate. ``select`` is called with each depth's
    candidate pool *before* evaluation; ``observe`` with each finished
    depth's evaluations (cache hits included, so the training stream is
    deterministic for a given sweep). Both models train lazily at the
    top of ``select`` — "train on everything completed so far, then
    rank" — and the accounting (candidates kept/skipped, ranking
    latency) feeds the result config and, when a registry is wired, the
    ``repro_surrogate_*`` metric families.
    """

    def __init__(
        self,
        alphabet: GateAlphabet,
        config: SurrogateConfig,
        *,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not config.enabled:
            raise ValueError("SurrogateAssistant requires an enabled config")
        self.config = config
        self.model = SurrogateModel(
            alphabet,
            embedding_dim=config.embedding_dim,
            hidden_dim=config.hidden_dim,
            learning_rate=config.learning_rate,
            train_epochs=config.train_epochs,
            seed=config.seed,
        )
        self.cost = CostModel() if config.cost_model else None
        self.kept = 0
        self.skipped = 0
        self._selections = 0
        self._m_kept = self._m_skipped = self._m_latency = None
        if metrics is not None:
            self._m_kept = metrics.counter(
                "repro_surrogate_candidates_kept_total",
                "Candidates forwarded to real evaluation after ranking",
            )
            self._m_skipped = metrics.counter(
                "repro_surrogate_candidates_skipped_total",
                "Candidates pruned by the surrogate ranker",
            )
            self._m_latency = metrics.histogram(
                "repro_surrogate_ranking_seconds",
                "Latency of ranking one depth's candidate pool",
                buckets=_RANKING_BUCKETS,
            )

    # -- the two consumers --------------------------------------------------

    def select(
        self, candidates: Sequence[tuple[str, ...]], p: int
    ) -> list[tuple[str, ...]]:
        """The slice of this depth's pool that gets real evaluation."""
        start = time.perf_counter()
        self.model.fit()
        if self.cost is not None:
            self.cost.fit()
        pool = list(candidates)
        if (
            len(pool) > 1
            and self.model.trained
            and self.model.observations >= self.config.min_observations
        ):
            scores = self.model.predict_many(pool, p)
            rng = as_rng(
                stable_seed(
                    self.config.seed, "surrogate-floor", p, self._selections
                )
            )
            indices = rank_and_select(
                scores,
                keep_fraction=self.config.keep_fraction,
                explore_floor=self.config.explore_floor,
                rng=rng,
            )
            kept = [pool[i] for i in indices]
        else:
            kept = pool
        self._selections += 1
        self.kept += len(kept)
        self.skipped += len(pool) - len(kept)
        if self._m_kept is not None:
            self._m_kept.inc(len(kept))
            self._m_skipped.inc(len(pool) - len(kept))
            self._m_latency.observe(time.perf_counter() - start)
        return kept

    def observe(self, evaluations: Sequence[CandidateEvaluation]) -> None:
        """Feed a finished depth's results into both models. The value
        model trains on ``reward`` — the same scalar SELECT_BEST
        maximizes — so ranking by descending prediction targets the
        depth winner."""
        for evaluation in evaluations:
            self.model.observe(evaluation.tokens, evaluation.p, evaluation.reward)
            if self.cost is not None and evaluation.seconds > 0.0:
                self.cost.observe(
                    evaluation.tokens, evaluation.p, evaluation.seconds
                )

    def predicted_cost(self, tokens: Sequence[str], p: int) -> float:
        """Placement cost for the sharded runtime: the fitted cost model,
        or the static heuristic until it has enough measurements."""
        if self.cost is not None:
            return self.cost.predict(tokens, p)
        from repro.core.runtime import predicted_cost

        return predicted_cost(tokens, p)


class SurrogateRankedPredictor(Predictor):
    """Wrap any base predictor; forward only its predicted-top proposals.

    ``propose`` pulls a pool from the base predictor, ranks it with a
    surrogate trained on the rewards fed back through ``update``, and
    returns the top ``keep_fraction`` slice plus the exploration floor —
    so the search loop evaluates a fraction of what the base proposed.
    The predictor protocol carries no depth, so the model's depth
    feature is pinned at 1: rewards from different depths train one
    prior, which is what ranking *within* a proposal pool needs.

    Proposals are always a subset of the base's, so alphabet/k_max
    validity is inherited; ``exhausted`` delegates to the base.
    """

    name = "surrogate_ranked"

    def __init__(
        self,
        base: Predictor,
        *,
        alphabet: GateAlphabet | None = None,
        config: SurrogateConfig | None = None,
    ) -> None:
        alphabet = alphabet or getattr(base, "alphabet", None)
        if alphabet is None:
            raise ValueError(
                "base predictor exposes no .alphabet; pass alphabet= explicitly"
            )
        self.base = base
        self.alphabet = alphabet
        self.config = config or SurrogateConfig(enabled=True)
        if not self.config.enabled:
            raise ValueError("SurrogateRankedPredictor requires an enabled config")
        self.model = SurrogateModel(
            alphabet,
            embedding_dim=self.config.embedding_dim,
            hidden_dim=self.config.hidden_dim,
            learning_rate=self.config.learning_rate,
            train_epochs=self.config.train_epochs,
            seed=self.config.seed,
        )
        self.kept = 0
        self.skipped = 0
        self._proposals = 0

    def propose(self, num: int) -> list[tuple[str, ...]]:
        pool = [tuple(tokens) for tokens in self.base.propose(num)]
        self.model.fit()
        if (
            len(pool) > 1
            and self.model.trained
            and self.model.observations >= self.config.min_observations
        ):
            scores = self.model.predict_many(pool, p=1)
            rng = as_rng(
                stable_seed(self.config.seed, "surrogate-pool", self._proposals)
            )
            indices = rank_and_select(
                scores,
                keep_fraction=self.config.keep_fraction,
                explore_floor=self.config.explore_floor,
                rng=rng,
            )
            kept = [pool[i] for i in indices]
        else:
            kept = pool
        self._proposals += 1
        self.kept += len(kept)
        self.skipped += len(pool) - len(kept)
        return kept

    def update(self, tokens: tuple[str, ...], reward: float) -> None:
        self.model.observe(tokens, 1, reward)
        self.base.update(tokens, reward)

    def exhausted(self) -> bool:
        return self.base.exhausted()
