"""Shared utilities: RNG management, logging, validation helpers."""

from repro.utils.rng import as_rng, spawn_rngs, stable_seed
from repro.utils.validation import (
    check_integer,
    check_positive,
    check_probability,
    check_qubit_index,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "stable_seed",
    "check_integer",
    "check_positive",
    "check_probability",
    "check_qubit_index",
]
