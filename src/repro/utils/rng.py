"""Deterministic random-number-generator plumbing.

Every stochastic component in the package (graph generators, random search,
SPSA, the REINFORCE controller, ...) accepts a ``seed`` argument that may be
``None``, an integer, or an already-constructed :class:`numpy.random.Generator`.
Centralising the conversion here keeps experiment scripts reproducible: a
single integer seed at the top of a driver fans out deterministically to all
workers via :func:`spawn_rngs`.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["as_rng", "spawn_rngs", "stable_seed"]

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged so callers can thread
    one generator through a pipeline without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent child generators.

    Used by the parallel search driver so every worker process receives its
    own stream regardless of scheduling order: the result only depends on the
    parent seed and the child index, never on which worker ran first.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        # Generators cannot be split retroactively; derive children from the
        # generator's own bit stream in a deterministic way.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def stable_seed(*parts: int | str | float | bytes) -> int:
    """Hash arbitrary labels into a 63-bit seed, stably across processes.

    Python's builtin ``hash`` is salted per interpreter, so worker processes
    would disagree; SHA-256 gives the same seed everywhere. Typical use::

        rng = as_rng(stable_seed("fig4", graph_index, depth))
    """
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            h.update(part)
        elif isinstance(part, float):
            h.update(part.hex().encode())
        else:
            h.update(str(part).encode())
        h.update(b"\x1f")  # separator so ("ab","c") != ("a","bc")
    return int.from_bytes(h.digest()[:8], "big") >> 1
