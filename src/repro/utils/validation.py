"""Argument validation helpers shared across the package.

These raise early with precise messages instead of letting NumPy broadcast
errors surface three stack frames deeper, which matters when candidate
circuits are being built inside worker processes where tracebacks are
harder to read.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "check_integer",
    "check_positive",
    "check_probability",
    "check_qubit_index",
]


def check_integer(value: Any, name: str) -> int:
    """Return ``value`` as ``int`` or raise ``TypeError``.

    Accepts NumPy integer scalars (common when indices come out of arrays)
    but rejects floats, including integral floats, to catch unit mistakes.
    """
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    try:
        as_int = int(value)
    except (TypeError, ValueError):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}") from None
    if as_int != value:
        raise TypeError(f"{name} must be an integer, got {value!r}")
    if isinstance(value, float):
        raise TypeError(f"{name} must be an integer, got float {value!r}")
    return as_int


def check_positive(value: Any, name: str, *, strict: bool = True) -> int:
    """Validate that ``value`` is a (strictly) positive integer."""
    as_int = check_integer(value, name)
    if strict and as_int <= 0:
        raise ValueError(f"{name} must be > 0, got {as_int}")
    if not strict and as_int < 0:
        raise ValueError(f"{name} must be >= 0, got {as_int}")
    return as_int


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        raise TypeError(f"{name} must be a float in [0, 1], got {type(value).__name__}") from None
    if not 0.0 <= as_float <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {as_float}")
    return as_float


def check_qubit_index(qubit: Any, num_qubits: int, name: str = "qubit") -> int:
    """Validate a qubit index against the register size."""
    as_int = check_integer(qubit, name)
    if not 0 <= as_int < num_qubits:
        raise ValueError(f"{name} {as_int} out of range for {num_qubits} qubit register")
    return as_int
