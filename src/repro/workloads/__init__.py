"""Problem workloads: the registry that lifts MaxCut into one of many.

Importing this package registers the built-in workloads (MaxCut, weighted
MaxCut, Max-2-SAT, spin-glass Ising). See :mod:`repro.workloads.base` for
the abstraction and docs/workloads.md for the encoding recipe.
"""

from repro.workloads.base import Workload
from repro.workloads.builtin import (
    IsingWorkload,
    MaxCutWorkload,
    MaxSatWorkload,
    WeightedMaxCutWorkload,
    clause_signs,
)
from repro.workloads.registry import (
    available_workloads,
    get_workload,
    register_workload,
    workload_summaries,
)

__all__ = [
    "Workload",
    "available_workloads",
    "get_workload",
    "register_workload",
    "workload_summaries",
    "MaxCutWorkload",
    "WeightedMaxCutWorkload",
    "MaxSatWorkload",
    "IsingWorkload",
    "clause_signs",
]
