"""The :class:`Workload` abstraction: one optimization problem per instance.

A workload interprets a :class:`~repro.graphs.generators.Graph` as a problem
instance and supplies everything the search stack needs to optimize it:

* ``objective_values(graph)`` — the full ``2^n`` diagonal of the (classical)
  objective ``C``, the weight-diagonal the compiled engine consumes. The
  search *maximizes* this quantity.
* ``append_cost_layer(circuit, graph, gamma)`` — the phase separator
  ``e^{-i gamma C}`` (up to global phase) as native gates, so the QAOA
  ansatz builder stays problem-agnostic.
* ``classical_optimum(graph)`` — the exact optimum, denominator of the
  paper's Eq. (3) approximation ratio.
* ``dataset(count, dataset_seed=...)`` — seeded paper-style instances, so
  the CLI/service ``"family[:count[:seed]]"`` spec works for every problem.

Any objective expressible as a diagonal Hamiltonian built from 1- and
2-local Z terms fits: the compiled engine fuses the cost layer into a
single phase-exponent generator regardless of which workload emitted the
gates, so new problems are pure encoding work, not engine work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import ParameterValue
from repro.graphs.generators import Graph

__all__ = ["Workload", "BRUTE_FORCE_MAX_NODES"]

#: largest instance whose 2^n objective table we will enumerate exactly
BRUTE_FORCE_MAX_NODES = 24


class Workload(ABC):
    """One problem family: objective diagonal, cost layer, oracle, dataset.

    Subclasses set ``name`` (the registry key, also stored in configs and
    cache fingerprints), ``family`` (the default dataset-spec family for
    ``"family[:count[:seed]]"`` strings), and ``summary`` (one line for
    ``--help`` and docs).
    """

    #: registry key, e.g. ``"maxcut"``
    name: str = ""
    #: default dataset family accepted by the workload-spec parser
    family: str = ""
    #: one-line description
    summary: str = ""

    @abstractmethod
    def objective_values(self, graph: Graph) -> np.ndarray:
        """The objective of every bitstring as a ``(2^n,)`` float array.

        Bit convention: qubit ``k`` is bit ``k`` of the basis index, matching
        :mod:`repro.simulators.statevector`. The array may be shared/memoized
        and read-only — copy before mutating.
        """

    @abstractmethod
    def append_cost_layer(
        self, circuit: QuantumCircuit, graph: Graph, gamma: ParameterValue
    ) -> QuantumCircuit:
        """Append ``e^{-i gamma C}`` (up to global phase) to ``circuit``."""

    @abstractmethod
    def dataset(
        self, count: int, *, num_nodes: int = 10, dataset_seed: int = 2023
    ) -> Sequence[Graph]:
        """``count`` seeded paper-style instances of this problem."""

    def classical_optimum(self, graph: Graph) -> float:
        """Exact optimum ``max_z C(z)`` by enumerating the objective table.

        Per-workload oracles may override this with something smarter; the
        default brute force matches the paper's 10-node regime.
        """
        if graph.num_nodes > BRUTE_FORCE_MAX_NODES:
            raise ValueError(
                f"brute force over {graph.num_nodes} nodes is intractable "
                f"for workload {self.name!r}"
            )
        return float(np.max(self.objective_values(graph)))

    def validate_instance(self, graph: Graph) -> None:
        """Reject graphs this workload cannot encode. Default: accept all."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Workload {self.name!r}>"
