"""The built-in workloads: MaxCut, weighted MaxCut, Max-2-SAT, spin-glass
Ising.

All four are diagonal-Hamiltonian encodings over the existing engine —
each workload's cost layer is 1- and 2-local Z rotations, which the
compiled engine fuses into a single per-layer phase diagonal, and each
objective table is a vectorized function of :func:`~repro.simulators.
expectation.bit_table`.

Encoding conventions (``RZ(t) = exp(-i t Z/2)``, ``RZZ(t) = exp(-i t ZZ/2)``,
``z_i = 1 - 2 b_i``):

* **maxcut / wmaxcut** — ``C = sum_e w_e (1 - z_u z_v)/2``; per edge
  ``rzz(-gamma * w)`` (the seed encoding, kept gate-identical).
* **maxsat** (Max-2-SAT) — each edge is one 2-literal clause with stable
  pseudo-random polarities ``s in {+1, -1}``. A clause contributes
  ``w * [3/4 - (s_u z_u + s_v z_v + s_u s_v z_u z_v)/4]``, so the phase
  separator is ``rz(-gamma * w s_u / 2)``, ``rz(-gamma * w s_v / 2)``,
  ``rzz(-gamma * w s_u s_v / 2)`` per clause (constants are global phase).
* **ising** (spin glass / portfolio) — couplings ``J_e = w_e`` (signed);
  the search maximizes ``C = -H = -sum_e J_e z_u z_v``, i.e. finds the
  ground state of ``H``; per bond ``rzz(-2 gamma * J)``.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.parameters import ParameterValue
from repro.graphs.datasets import (
    paper_er_dataset,
    paper_maxsat_dataset,
    paper_spin_glass_dataset,
    paper_weighted_dataset,
)
from repro.graphs.generators import Graph
from repro.qaoa.cost_operator import append_cost_layer as append_maxcut_layer
from repro.qaoa.maxcut import brute_force_maxcut
from repro.simulators.expectation import bit_table, cut_values
from repro.utils.rng import stable_seed
from repro.workloads.base import Workload
from repro.workloads.registry import register_workload

__all__ = [
    "MaxCutWorkload",
    "WeightedMaxCutWorkload",
    "MaxSatWorkload",
    "IsingWorkload",
    "clause_signs",
]

#: table-memo bound, matching expectation._CUT_MEMO_MAX_NODES
_TABLE_MEMO_MAX_NODES = 16


class MaxCutWorkload(Workload):
    """Unweighted MaxCut — the paper's driver application (Eq. 1).

    This is the seed behavior, bit-identical to the pre-registry code
    paths: the objective table *is* the memoized :func:`cut_values` array
    and the cost layer delegates to :mod:`repro.qaoa.cost_operator`.
    """

    name = "maxcut"
    family = "er"
    summary = "unweighted MaxCut on ER/regular graphs (the paper's Eq. 1)"

    def objective_values(self, graph: Graph) -> np.ndarray:
        return cut_values(graph)

    def append_cost_layer(
        self, circuit: QuantumCircuit, graph: Graph, gamma: ParameterValue
    ) -> QuantumCircuit:
        return append_maxcut_layer(circuit, graph, gamma)

    def classical_optimum(self, graph: Graph) -> float:
        # exact same call the seed evaluator made, so optima (and therefore
        # approximation ratios) are bit-identical
        return brute_force_maxcut(graph).value

    def dataset(
        self, count: int, *, num_nodes: int = 10, dataset_seed: int = 2023
    ) -> Sequence[Graph]:
        return paper_er_dataset(count, num_nodes, dataset_seed=dataset_seed)


class WeightedMaxCutWorkload(MaxCutWorkload):
    """Weighted MaxCut: same cut objective and phase separator (both already
    weight-aware), drawn over instances with non-unit edge weights."""

    name = "wmaxcut"
    family = "wmaxcut"
    summary = "weighted MaxCut (uniform [0.25, 1.75] edge weights)"

    def dataset(
        self, count: int, *, num_nodes: int = 10, dataset_seed: int = 2023
    ) -> Sequence[Graph]:
        return paper_weighted_dataset(count, num_nodes, dataset_seed=dataset_seed)


def clause_signs(u: int, v: int) -> tuple[int, int]:
    """Stable per-edge literal polarities for the Max-2-SAT encoding.

    A pure function of the (canonical) edge so the objective table, the
    cost layer, and the classical oracle always agree — no clause state is
    stored anywhere.
    """
    h = stable_seed("maxsat-clause", u, v)
    return (1 if h & 1 else -1, 1 if h & 2 else -1)


@lru_cache(maxsize=256)
def _maxsat_table(graph: Graph) -> np.ndarray:
    bits = bit_table(graph.num_nodes)
    values = np.zeros(2**graph.num_nodes)
    for (u, v), w in zip(graph.edges, graph.weights):
        s_u, s_v = clause_signs(u, v)
        lit_u = bits[:, u] if s_u > 0 else 1 - bits[:, u]
        lit_v = bits[:, v] if s_v > 0 else 1 - bits[:, v]
        values += w * (1.0 - (1 - lit_u) * (1 - lit_v))
    values.setflags(write=False)
    return values


class MaxSatWorkload(Workload):
    """Weighted Max-2-SAT: every edge is one 2-literal clause whose
    polarities derive stably from the edge endpoints; the objective is the
    total weight of satisfied clauses."""

    name = "maxsat"
    family = "maxsat"
    summary = "weighted Max-2-SAT (one clause per edge, stable polarities)"

    def objective_values(self, graph: Graph) -> np.ndarray:
        if graph.num_nodes > _TABLE_MEMO_MAX_NODES:
            return _maxsat_table.__wrapped__(graph)
        return _maxsat_table(graph)

    def append_cost_layer(
        self, circuit: QuantumCircuit, graph: Graph, gamma: ParameterValue
    ) -> QuantumCircuit:
        for (u, v), w in zip(graph.edges, graph.weights):
            s_u, s_v = clause_signs(u, v)
            circuit.rz(gamma * (-0.5 * w * s_u), u)
            circuit.rz(gamma * (-0.5 * w * s_v), v)
            circuit.rzz(gamma * (-0.5 * w * s_u * s_v), u, v)
        return circuit

    def validate_instance(self, graph: Graph) -> None:
        if any(w <= 0 for w in graph.weights):
            raise ValueError("maxsat clause weights must be positive")

    def dataset(
        self, count: int, *, num_nodes: int = 10, dataset_seed: int = 2023
    ) -> Sequence[Graph]:
        return paper_maxsat_dataset(count, num_nodes, dataset_seed=dataset_seed)


@lru_cache(maxsize=256)
def _ising_table(graph: Graph) -> np.ndarray:
    bits = bit_table(graph.num_nodes)
    edges = graph.edge_array()
    if edges.shape[0] == 0:
        values = np.zeros(2**graph.num_nodes)
    else:
        z = 1.0 - 2.0 * bits
        values = -(z[:, edges[:, 0]] * z[:, edges[:, 1]]) @ graph.weight_array()
    values.setflags(write=False)
    return values


class IsingWorkload(Workload):
    """Spin-glass / portfolio Ising: signed couplings ``J_e`` on the edges;
    the search maximizes ``-H = -sum_e J_e z_u z_v``, i.e. finds the ground
    state of the glass Hamiltonian."""

    name = "ising"
    family = "ising"
    summary = "spin-glass Ising ground state (signed couplings in [-1, 1])"

    def objective_values(self, graph: Graph) -> np.ndarray:
        if graph.num_nodes > _TABLE_MEMO_MAX_NODES:
            return _ising_table.__wrapped__(graph)
        return _ising_table(graph)

    def append_cost_layer(
        self, circuit: QuantumCircuit, graph: Graph, gamma: ParameterValue
    ) -> QuantumCircuit:
        for (u, v), w in zip(graph.edges, graph.weights):
            circuit.rzz(gamma * (-2.0 * w), u, v)
        return circuit

    def dataset(
        self, count: int, *, num_nodes: int = 10, dataset_seed: int = 2023
    ) -> Sequence[Graph]:
        return paper_spin_glass_dataset(count, num_nodes, dataset_seed=dataset_seed)


register_workload(MaxCutWorkload())
register_workload(WeightedMaxCutWorkload())
register_workload(MaxSatWorkload())
register_workload(IsingWorkload())
