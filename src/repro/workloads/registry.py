"""Workload registry: name -> :class:`~repro.workloads.base.Workload`.

Mirrors the :mod:`repro.simulators.array_backend` registry idiom — a flat
module-level dict, eager validation at registration, sorted listing for CLI
``choices=``. Built-in workloads register at import time via
:mod:`repro.workloads.builtin`.
"""

from __future__ import annotations

from repro.workloads.base import Workload

__all__ = [
    "register_workload",
    "get_workload",
    "available_workloads",
    "workload_summaries",
]

_REGISTRY: dict[str, Workload] = {}


def register_workload(workload: Workload, *, replace: bool = False) -> Workload:
    """Add ``workload`` under its ``name``; duplicate names are an error
    unless ``replace=True`` (tests swap in instrumented doubles)."""
    name = workload.name
    if not name:
        raise ValueError("workload must define a non-empty name")
    if not workload.family:
        raise ValueError(f"workload {name!r} must define a dataset family")
    if name in _REGISTRY and not replace:
        raise ValueError(f"workload {name!r} is already registered")
    _REGISTRY[name] = workload
    return workload


def get_workload(name: str) -> Workload:
    """Look up a registered workload by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        options = ", ".join(available_workloads())
        raise ValueError(
            f"unknown workload {name!r}; options: {options}"
        ) from None


def available_workloads() -> tuple[str, ...]:
    """Registered workload names, sorted (CLI ``choices=`` source)."""
    return tuple(sorted(_REGISTRY))


def workload_summaries() -> dict[str, str]:
    """``{name: one-line summary}`` for docs and ``--help`` epilogs."""
    return {name: _REGISTRY[name].summary for name in available_workloads()}
